PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-unit bench bench-quick perf-smoke

test:            ## tier-1 suite (unit + integration + benchmarks)
	$(PYTHON) -m pytest -x -q

test-unit:       ## fast unit tests only
	$(PYTHON) -m pytest -x -q tests/unit

bench:           ## full perf suite; appends an entry to BENCH_kernel.json
	$(PYTHON) -m repro.bench.perfsuite --label "$(or $(LABEL),local)"

bench-quick:     ## CI-sized perf suite; prints the entry, writes nothing
	$(PYTHON) -m repro.bench.perfsuite --quick --output -

perf-smoke:      ## perf benchmarks as tests (fails on errors, not timing)
	$(PYTHON) -m pytest -x -q benchmarks/test_perf_kernel.py
