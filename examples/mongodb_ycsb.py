#!/usr/bin/env python3
"""The §5.2 MongoDB case study under YCSB.

Runs the same document workload (YCSB-A: 50% reads, 50% updates)
against the two deployments the paper compares in Figure 12:

* **native** — the split store over the Naïve-RDMA (polling) backend:
  every update needs replica CPUs that are busy serving 10 tenants
  per core;
* **HyperLoop** — identical store, identical workload, replication
  offloaded to the NICs.

Also shows the isolation machinery working: a concurrent lock-free
reader (the FaRM-style mode of §5.2) never *accepts* a torn document
while the writer churns — the codec framing detects and retries.

Run:  python examples/mongodb_ycsb.py
"""

from repro.bench import LatencyRecorder, format_table, run_until
from repro.hw import Cluster
from repro.storage.docstore import DocStoreError
from repro.sim import Simulator
from repro.storage import split_mongo
from repro.workloads import WORKLOADS, YcsbWorkload

N_OPS = 300
N_DOCS = 100
VALUE = b"\x55" * 1024


def run(offloaded: bool):
    sim = Simulator(seed=23)
    cluster = Cluster(sim, n_hosts=4, n_cores=8)
    for host in cluster.hosts[1:]:
        for index in range(10 * 8):
            host.os.spawn_stress(f"tenant{index}")
    store = split_mongo(
        cluster[0], cluster.hosts[1:4], offloaded=offloaded,
        region_size=1 << 21, rounds=512, parse_ns=60_000, name="m",
    )
    workload = YcsbWorkload(WORKLOADS["A"], record_count=N_DOCS, value_size=1024, seed=5)
    recorder = LatencyRecorder()
    done = {}

    def ycsb(task):
        for key in workload.load_keys():
            yield from store.insert(task, f"user{key:06d}".encode(), {"field0": VALUE})
        for op in workload.operations(N_OPS):
            doc_id = f"user{op.key:06d}".encode()
            start = sim.now
            if op.kind == "read":
                yield from store.read(task, doc_id, replica=op.key % 3)
            else:
                yield from store.update(task, doc_id, {"field0": VALUE})
            recorder.record(sim.now - start)
        done["ycsb"] = True

    def reader(task):
        # Concurrent lock-free reads from a backup: the slot framing
        # rejects torn images, so an accepted read is never corrupt.
        torn = 0
        for _ in range(40):
            yield from task.sleep(400_000)
            try:
                document = yield from store.read(task, b"user000001", replica=1)
            except DocStoreError:
                continue  # the load phase has not inserted it yet
            if document is not None and document["field0"] != VALUE:
                torn += 1
        done["torn"] = torn

    cluster[0].os.spawn(ycsb, "ycsb", pinned_core=1)
    cluster[0].os.spawn(reader, "reader", pinned_core=2)
    run_until(sim, lambda: "ycsb" in done and "torn" in done, deadline_ms=600_000)
    assert done["torn"] == 0, "a lock-free read accepted a torn document!"
    return recorder.stats()


def main() -> None:
    rows = []
    for label, offloaded in (("native (CPU polling)", False), ("HyperLoop", True)):
        stats = run(offloaded)
        rows.append(
            (
                label,
                round(stats.mean / 1000, 2),
                round(stats.p95 / 1000, 2),
                round(stats.p99 / 1000, 2),
            )
        )
        print(f"  ran {label}")
    print()
    print(
        format_table(
            "MongoDB + YCSB-A (ms), 3 replicas at 10 tenants/core",
            ["deployment", "avg", "p95", "p99"],
            rows,
        )
    )
    native_avg, hyper_avg = rows[0][1], rows[1][1]
    print()
    print(f"average latency reduction: {1 - hyper_avg / native_avg:.0%} (paper: up to 79%)")


if __name__ == "__main__":
    main()
