#!/usr/bin/env python3
"""The paper's headline result, reproduced in one script.

Runs the same replicated-write workload against three data paths —
CPU/event, CPU/polling (both Naïve-RDMA), and HyperLoop — while the
replica machines carry increasing multi-tenant CPU load, and prints
the latency distribution of each.

The punchline matches §6.1: the CPU-driven paths' tails explode by
orders of magnitude under load; HyperLoop's average *and* tail stay
within microseconds of the unloaded case, because no replica CPU is
on the critical path.

Run:  python examples/multi_tenant_tail_latency.py
"""

from repro.baseline import NaiveGroup
from repro.bench import LatencyRecorder, format_table, run_until
from repro.core import HyperLoopGroup
from repro.hw import Cluster
from repro.sim import Simulator

N_OPS = 1200
MESSAGE = 1024
DEPTH = 8


def run(system: str, tenants_per_core: int):
    sim = Simulator(seed=7)
    cluster = Cluster(sim, n_hosts=4, n_cores=8)
    for host in cluster.hosts[1:]:
        for index in range(tenants_per_core * 8):
            host.os.spawn_stress(f"tenant{index}")
    kwargs = dict(
        region_size=1 << 16, rounds=2048, client_mode="polling",
        client_core=0, name="demo",
    )
    if system == "hyperloop":
        group = HyperLoopGroup(cluster[0], cluster.hosts[1:4], **kwargs)
    else:
        group = NaiveGroup(
            cluster[0], cluster.hosts[1:4],
            replica_mode=system.split("-")[1],
            replica_cores=[0, 0, 0],
            **kwargs,
        )
    recorder = LatencyRecorder()
    state = {"left": N_OPS, "running": DEPTH}

    def worker(task):
        group.write_local(0, b"x" * MESSAGE)
        while state["left"] > 0:
            state["left"] -= 1
            start = sim.now
            yield from group.gwrite(task, 0, MESSAGE)
            recorder.record(sim.now - start)
        state["running"] -= 1

    for index in range(DEPTH):
        cluster[0].os.spawn(worker, f"w{index}", pinned_core=1 + index % 7)
    run_until(sim, lambda: state["running"] == 0, deadline_ms=300_000)
    return recorder.stats()


def main() -> None:
    rows = []
    for tenants in (0, 4, 10):
        for system in ("naive-event", "naive-polling", "hyperloop"):
            stats = run(system, tenants)
            rows.append(
                (
                    tenants,
                    system,
                    round(stats.mean, 1),
                    round(stats.p50, 1),
                    round(stats.p99, 1),
                    round(stats.maximum, 0),
                )
            )
            print(f"  ran {system} at {tenants} tenants/core")
    print()
    print(
        format_table(
            "Replicated 1KB writes, 3 replicas: latency (us) vs tenancy",
            ["tenants/core", "system", "avg", "p50", "p99", "max"],
            rows,
        )
    )
    print()
    print("HyperLoop's rows barely move; that is the whole paper.")


if __name__ == "__main__":
    main()
