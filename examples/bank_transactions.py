#!/usr/bin/env python3
"""Multi-key ACID transactions: a tiny replicated bank ledger.

Uses the transaction manager (the §5 recipe — group lock, replicated
redo log, NIC-side execution — packaged as an API) to run transfers
between accounts, then demonstrates the recovery guarantees:

* a coordinator that crashes *after* the durable append but *before*
  execution loses nothing — the new coordinator redoes the log;
* a crash inside the critical section leaves a stale group lock,
  which recovery detects and breaks;
* invariants (total balance) hold on every replica afterwards.

Run:  python examples/bank_transactions.py
"""

import struct

from repro.bench import run_until
from repro.core import HyperLoopGroup
from repro.hw import Cluster
from repro.sim import Simulator
from repro.storage import TransactionManager

N_ACCOUNTS = 8
OPENING = 1000


def account_offset(index: int) -> int:
    return index * 64


def balance(manager, replica: int, index: int, group) -> int:
    raw = group.read_replica(
        replica, manager.layout.db_position(account_offset(index)), 8
    )
    return struct.unpack("<q", raw)[0]


def main() -> None:
    sim = Simulator(seed=17)
    cluster = Cluster(sim, n_hosts=4, n_cores=8)
    group = HyperLoopGroup(
        cluster[0], cluster.hosts[1:4], region_size=1 << 19, name="bank"
    )
    manager = TransactionManager(group)
    done = {}

    def workflow(task):
        print("== opening accounts (one atomic multi-key transaction) ==")
        opening = [
            (account_offset(index), struct.pack("<q", OPENING))
            for index in range(N_ACCOUNTS)
        ]
        yield from manager.transact(task, opening)

        print("== running 20 transfers ==")
        rng = sim.rng("transfers")
        balances = [OPENING] * N_ACCOUNTS
        for _ in range(20):
            src = rng.randrange(N_ACCOUNTS)
            dst = (src + 1 + rng.randrange(N_ACCOUNTS - 1)) % N_ACCOUNTS
            amount = rng.randrange(1, 200)
            balances[src] -= amount
            balances[dst] += amount
            yield from manager.transact(
                task,
                [
                    (account_offset(src), struct.pack("<q", balances[src])),
                    (account_offset(dst), struct.pack("<q", balances[dst])),
                ],
            )

        print("== crash drill: append durable, coordinator dies pre-execution ==")
        balances[0] -= 500
        balances[1] += 500
        yield from manager.transact(
            task,
            [
                (account_offset(0), struct.pack("<q", balances[0])),
                (account_offset(1), struct.pack("<q", balances[1])),
            ],
            execute=False,  # ...crash here, before execution
        )
        yield from manager.locks.wr_lock(task, manager.writer_id)  # and with the lock held
        print("   (simulating coordinator death; log is durable on 3 replicas)")

        print("== new coordinator recovers ==")
        redone = yield from manager.recover(task, from_replica=1)
        print(f"   redo executed {redone} pending transaction(s), stale lock broken")
        done["balances"] = balances

    cluster[0].os.spawn(workflow, "bank")
    run_until(sim, lambda: "balances" in done, deadline_ms=60_000)

    expected = done["balances"]
    print()
    print("final balances (replica 0 / 1 / 2 | expected):")
    total = 0
    for index in range(N_ACCOUNTS):
        per_replica = [balance(manager, r, index, group) for r in range(3)]
        total += per_replica[0]
        marker = "ok" if per_replica == [expected[index]] * 3 else "MISMATCH"
        print(f"  account {index}: {per_replica} | {expected[index]}  {marker}")
        assert per_replica == [expected[index]] * 3
    print(f"total across accounts: {total} (invariant: {N_ACCOUNTS * OPENING})")
    assert total == N_ACCOUNTS * OPENING
    print("errors:", group.errors or "none")


if __name__ == "__main__":
    main()
