#!/usr/bin/env python3
"""Quickstart: a HyperLoop group in ~40 lines.

Builds a simulated 4-machine cluster (1 client + 3 replicas), creates
a HyperLoop replication group, and runs the full §5 transaction
recipe — group lock, replicated log write, NIC-local execution,
unlock — printing the latency of each step and the replica CPU bill
(spoiler: ~zero).

Run:  python examples/quickstart.py
"""

from repro.core import HyperLoopGroup
from repro.hw import Cluster
from repro.sim import MS, Simulator


def main() -> None:
    sim = Simulator(seed=1)
    cluster = Cluster(sim, n_hosts=4, n_cores=16)
    client, replicas = cluster[0], cluster.hosts[1:4]
    group = HyperLoopGroup(client, replicas, region_size=1 << 20, name="quickstart")

    LOCK, LOG, DB = 0, 4096, 65536
    steps = []

    def transaction(task):
        def timed(label, generator):
            start = sim.now
            result = yield from generator
            steps.append((label, (sim.now - start) / 1000.0))
            return result

        # 1. Acquire the group lock on all replicas (gCAS).
        yield from timed("gCAS   lock", group.gcas(task, LOCK, 0, 1))
        # 2. Replicate a log record into every replica's NVM (gWRITE+gFLUSH).
        group.write_local(LOG, b"txn42: set balance=100")
        yield from timed("gWRITE log", group.gwrite(task, LOG, 22))
        # 3. Execute it: every NIC copies log -> database locally (gMEMCPY).
        yield from timed("gMEMCPY exec", group.gmemcpy(task, LOG, DB, 22))
        # 4. Release the lock.
        yield from timed("gCAS   unlock", group.gcas(task, LOCK, 1, 0))

    client.os.spawn(transaction, "txn")
    sim.run(until=50 * MS)

    print("replicated transaction, 3 replicas, NIC-offloaded:")
    for label, micros in steps:
        print(f"  {label:14s} {micros:7.1f} us")
    print()
    for index in range(3):
        data = group.read_replica(index, DB, 22)
        print(f"  replica {index} database: {data!r}")
    print()
    print(f"  replica CPU consumed: {group.replica_cpu_ns() / 1000:.1f} us total")
    print(f"  errors: {group.errors or 'none'}")


if __name__ == "__main__":
    main()
