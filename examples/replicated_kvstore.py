#!/usr/bin/env python3
"""A replicated, durable key-value store with failure recovery.

Demonstrates the §5.1 RocksDB case study end to end:

1. a KV store whose write-ahead log is replicated to 3 replicas'
   NVM by HyperLoop (every ``put`` is durable everywhere when it
   returns);
2. backup replicas syncing their in-memory snapshots off the critical
   path (eventually consistent backup reads);
3. a checkpoint + log truncation;
4. a full power failure on one replica and recovery of the complete
   dataset from another replica's durable state;
5. heartbeat failure detection and chain repair with a standby host.

Run:  python examples/replicated_kvstore.py
"""

from repro.bench import run_until
from repro.core import HyperLoopGroup
from repro.hw import Cluster
from repro.sim import MS, Simulator
from repro.storage import ChainRepair, HeartbeatMonitor, ReplicatedKVStore


def main() -> None:
    sim = Simulator(seed=11)
    cluster = Cluster(sim, n_hosts=6, n_cores=8)
    client = cluster[0]
    group = HyperLoopGroup(client, cluster.hosts[1:4], region_size=1 << 19, name="kv")
    kv = ReplicatedKVStore(group, sync_interval=2 * MS)
    monitor = HeartbeatMonitor(client, cluster.hosts[1:4], interval=3 * MS)

    groups = {"n": 0}

    def factory(members):
        groups["n"] += 1
        return HyperLoopGroup(
            client, members, region_size=1 << 19, name=f"kv{groups['n']}"
        )

    repair = ChainRepair(client, group, factory)
    done = {}

    def workflow(task):
        print("== loading 50 keys (each put is durable on 3 replicas) ==")
        for index in range(50):
            yield from kv.put(task, f"user{index:04d}".encode(), f"profile-{index}".encode())
        value = yield from kv.get(task, b"user0007")
        print(f"   get(user0007) -> {value!r}")
        result = yield from kv.scan(task, b"user0010", 3)
        print(f"   scan(user0010, 3) -> {[key.decode() for key, _ in result]}")

        print("== checkpoint + truncate ==")
        yield from kv.checkpoint(task)
        yield from kv.put(task, b"user9999", b"post-checkpoint")

        print("== power failure on replica 1 ==")
        cluster.hosts[2].power_failure()
        monitor.stop_beats(1)
        recovered = kv.recover_from_replica(0)
        print(f"   rebuilt {len(recovered)} keys from replica 0's NVM")
        assert recovered[b"user0007"] == b"profile-7"
        assert recovered[b"user9999"] == b"post-checkpoint"

        print("== waiting for the failure detector ==")
        suspect = yield from monitor.wait_for_suspicion(task)
        print(f"   replica {suspect} suspected after missed heartbeats")

        print("== chain repair: standby host joins, catch-up copy ==")
        new_group = yield from repair.repair(task, suspect, cluster.hosts[4])
        new_group.write_local(0, b"write-on-new-chain")
        yield from new_group.gwrite(task, 0, 18)
        print(
            "   new chain:",
            [host.name for host in new_group.replicas],
            "| replicated write:",
            new_group.read_replica(2, 0, 18),
        )
        done["y"] = True

    client.os.spawn(workflow, "workflow")
    run_until(sim, lambda: "y" in done, deadline_ms=30_000)
    print()
    print(f"done at t={sim.now / 1e6:.1f} ms simulated; errors: {group.errors or 'none'}")


if __name__ == "__main__":
    main()
