"""Trace exporters: Chrome-trace/Perfetto JSON and per-op text timelines.

The JSON format is the Trace Event Format consumed by
``chrome://tracing`` and https://ui.perfetto.dev — a dict with a
``traceEvents`` list where each event carries ``ph`` (phase), ``ts``
(microseconds), ``pid``/``tid`` (ints), plus ``M``-phase metadata
events naming the processes and threads. Simulated nanoseconds map to
trace microseconds, so one trace-UI microsecond is one simulated
microsecond.

:func:`validate_chrome_trace` is the schema check CI runs against an
exported file; it returns a list of problems (empty = valid) rather
than raising so the caller can report all of them at once.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .trace import Tracer

__all__ = [
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "merge_shard_records",
    "op_records",
    "op_timeline",
]

_PHASES = {"B", "E", "X", "i", "M"}


def to_chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """Render a tracer's ring buffer as a Chrome-trace document.

    String pid/tid labels become small ints (the format requires
    numbers) with ``process_name``/``thread_name`` metadata events
    carrying the labels, so Perfetto shows ``nic:r0`` rather than
    ``pid 3``. Counters and the time-attribution map ride along under
    ``otherData`` — ignored by viewers, kept for tooling.
    """
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}
    metadata: List[Dict[str, Any]] = []
    events: List[Dict[str, Any]] = []

    def pid_of(label: str) -> int:
        pid = pids.get(label)
        if pid is None:
            pid = pids[label] = len(pids) + 1
            metadata.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": label},
                }
            )
        return pid

    def tid_of(pid: int, label: str) -> int:
        key = (pid, label)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = sum(1 for k in tids if k[0] == pid) + 1
            metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": label or "main"},
                }
            )
        return tid

    for rec in tracer.iter_records():
        pid = pid_of(rec.pid)
        event: Dict[str, Any] = {
            "name": rec.name,
            "ph": rec.ph,
            "cat": rec.cat,
            "ts": rec.ts / 1000.0,
            "pid": pid,
            "tid": tid_of(pid, rec.tid),
        }
        if rec.ph == "X":
            event["dur"] = rec.dur / 1000.0
        elif rec.ph == "i":
            event["s"] = "t"  # thread-scoped instant
        if rec.args:
            event["args"] = rec.args
        events.append(event)

    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ns",
        "otherData": {
            "generator": "repro.obs",
            "clock": "simulated-ns (exported as us)",
            "records": len(tracer),
            "dropped": tracer.dropped,
            "dispatches": tracer.dispatches,
            "counters": dict(tracer.counters),
            "wall_ns_by_subsystem": dict(tracer.wall_ns),
        },
    }


def _canonical_key(rec) -> tuple:
    # A record is *emitted* when the simulator reaches its completion
    # time — for an 'X' (complete) span that is ts + dur, for every
    # other phase it is ts. Primary-sorting on emission time is what
    # lets a per-shard chronological buffer and the oracle's single
    # buffer normalize to the same sequence; the remaining fields (all
    # deterministic labels) break ties identically on both sides.
    emitted = rec.ts + (rec.dur or 0) if rec.ph == "X" else rec.ts
    return (
        emitted,
        rec.ts,
        rec.pid,
        rec.tid,
        rec.cat,
        rec.name,
        rec.ph,
        rec.dur or 0,
        repr(rec.args),
    )


def merge_shard_records(tracer: Tracer) -> None:
    """Normalize a tracer's ring buffer into canonical global order.

    After shard-worker records are folded in via
    :meth:`Tracer.absorb`, the buffer holds each shard's records as a
    contiguous chronological run; sorting by :func:`_canonical_key`
    interleaves them into one global timeline that is identical no
    matter how the world was sharded. The same normalization applied
    to a single-process oracle trace yields the same sequence — the
    record *multisets* are equal and the key is a pure function of
    record fields — so equivalence checks (and the shard-equivalence
    CI job) call this on both sides and byte-diff the exports. Drops
    nothing; resets the ring cursor so :meth:`Tracer.iter_records`
    walks the merged order directly.
    """
    records = sorted(tracer.iter_records(), key=_canonical_key)
    tracer.records = records
    tracer._cursor = 0


def validate_chrome_trace(document: Any) -> List[str]:
    """Schema-check a Chrome-trace document; returns problems found."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"top level must be an object, got {type(document).__name__}"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: bad phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing string 'name'")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{where}: missing int {field!r}")
        if ph != "M":
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"{where}: missing numeric 'ts'")
            if not isinstance(event.get("cat"), str):
                problems.append(f"{where}: missing string 'cat'")
        if ph == "X" and not isinstance(event.get("dur"), (int, float)):
            problems.append(f"{where}: 'X' event without numeric 'dur'")
    return problems


def write_chrome_trace(tracer: Tracer, path: str) -> Dict[str, Any]:
    """Export to ``path``; returns the document written."""
    document = to_chrome_trace(tracer)
    with open(path, "w") as fh:
        json.dump(document, fh, indent=1)
        fh.write("\n")
    return document


def op_records(tracer: Tracer, round_: int, primitive: Optional[str] = None):
    """Records belonging to group operation ``round_``, in time order.

    Membership is by correlation id: group-op spans carry
    ``args['round']`` and NIC WQE executions carry ``args['wr_id']``,
    and HyperLoop ties the two together (chain WQEs use the round
    number as their wr_id). ``primitive`` filters group spans to one
    chain when several primitives run rounds with the same number.
    """
    matched = []
    for rec in tracer.iter_records():
        args = rec.args
        if not args:
            continue
        if args.get("round") != round_ and args.get("wr_id") != round_:
            continue
        if primitive and rec.cat == "group" and primitive not in rec.name:
            continue
        matched.append(rec)
    matched.sort(key=lambda r: r.ts)
    return matched


def op_timeline(
    tracer: Tracer, round_: int, primitive: Optional[str] = None
) -> str:
    """One operation's replica-chain timeline as aligned text.

    This is the artifact the paper's timelines are made of: every
    traced event correlated with round ``round_`` — the client-side
    group span, the metadata post, each replica NIC's WAIT fallthrough
    and WQE executions — with timestamps relative to the first event.
    """
    records = op_records(tracer, round_, primitive)
    if not records:
        return f"no traced events for round {round_}"
    t0 = records[0].ts
    lines = [f"round {round_} timeline (t0 = {t0} ns):"]
    for rec in records:
        rel_us = (rec.ts - t0) / 1000.0
        dur = f" dur={rec.dur / 1000.0:.3f}us" if rec.ph == "X" else ""
        where = f"{rec.pid}/{rec.tid}" if rec.tid else rec.pid
        lines.append(
            f"  +{rel_us:10.3f}us  [{rec.cat:>6}] {where:<28} "
            f"{rec.ph} {rec.name}{dur}"
        )
    return "\n".join(lines)
