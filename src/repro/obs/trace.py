"""Structured trace recorder: ring buffer, counters, time attribution.

One global :data:`TRACER` gates every instrumentation point in the
tree. The design constraint is **zero cost when disabled** — the
simulator's hot loop must not even see the observability layer:

* The kernel inner loop is *swapped*, not branched. When a
  :class:`~repro.sim.kernel.Simulator` is constructed while tracing is
  enabled, :meth:`Tracer.install` attaches the tracer to the instance;
  ``Simulator.run`` then delegates to :meth:`Tracer.run_traced`, an
  instrumented copy of the loop. A simulator built with tracing off
  runs the original loop byte for byte (``sim._obs is None`` is the
  only added state, checked once per ``run()`` call, never per event).
* Every other instrumentation point (NIC doorbells, fabric
  deliveries, scheduler dispatches, group-op spans) is a single
  ``if TRACER.enabled:`` branch in code that already does orders of
  magnitude more work per call than the branch costs.
* Recording never schedules events, never consumes randomness, and
  never reads event *values* — simulated results are bit-for-bit
  identical with tracing on or off (asserted by
  ``tests/unit/test_obs_determinism.py``).

Timeout-pool ownership audit (the rule documented in
``repro/sim/events.py``): bare-yielded timeouts are kernel-owned after
resume and may be recycled at any later step. The tracer therefore
**never retains event objects**: :meth:`run_traced` classifies a
dispatch target by its *code object* (cached by code identity, which
outlives any pooled instance) and drops the bound-method reference
before the next iteration; trace records carry only plain ints and
strings. ``tests/unit/test_obs_trace.py`` trips if a record or cache
ever holds a ``Timeout``.

This module imports nothing from the rest of ``repro`` so every layer
can import it without cycles.
"""

from __future__ import annotations

import time
from heapq import heappop, heappush
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "TraceRecord",
    "Tracer",
    "TRACER",
    "tracing",
    "enable",
    "disable",
    "subsystem_of",
    "ship_records",
]

_DEFAULT_CAPACITY = 1 << 18  # records kept before the ring wraps


class TraceRecord:
    """One trace event. Plain data only — no references into the sim.

    ``ph`` follows the Chrome trace-event phases used here:
    ``"B"``/``"E"`` span begin/end, ``"X"`` complete span with
    ``dur``, ``"i"`` instant. ``ts`` and ``dur`` are simulated
    nanoseconds; the exporter converts to the microseconds Chrome
    expects.
    """

    __slots__ = ("ts", "ph", "cat", "name", "pid", "tid", "dur", "args")

    def __init__(
        self,
        ts: int,
        ph: str,
        cat: str,
        name: str,
        pid: str,
        tid: str,
        dur: int = 0,
        args: Optional[Dict[str, Any]] = None,
    ):
        self.ts = ts
        self.ph = ph
        self.cat = cat
        self.name = name
        self.pid = pid
        self.tid = tid
        self.dur = dur
        self.args = args

    def __repr__(self) -> str:
        return (
            f"<TraceRecord {self.ph} {self.cat}/{self.name} "
            f"ts={self.ts} {self.pid}:{self.tid}>"
        )


def subsystem_of(filename: str) -> str:
    """Map a source path to a short subsystem label.

    ``.../repro/hw/nic.py`` → ``hw.nic``; anything outside the package
    keeps its basename so user workload generators are still named.
    """
    normalized = filename.replace("\\", "/")
    marker = "/repro/"
    index = normalized.rfind(marker)
    if index < 0:
        base = normalized.rsplit("/", 1)[-1]
        return base[:-3] if base.endswith(".py") else base
    tail = normalized[index + len(marker) :]
    if tail.endswith(".py"):
        tail = tail[:-3]
    return tail.replace("/", ".")


class Tracer:
    """Trace recorder + counters + kernel time attribution.

    Attributes
    ----------
    enabled:
        Master gate every instrumentation point checks.
    counters:
        Flat ``name -> int`` metrics registry (``count()`` to bump).
    wall_ns:
        Host nanoseconds spent inside dispatched callables, keyed by
        subsystem (``sim.timer``, ``hw.nic``, ...). Filled only while
        the traced kernel loop runs.
    wall_ns_sites:
        The same attribution at function/generator granularity.
    """

    def __init__(self, capacity: int = _DEFAULT_CAPACITY):
        self.capacity = capacity
        self.enabled = False
        self.record_kernel = True
        self.records: List[TraceRecord] = []
        self._cursor = 0
        self.dropped = 0
        self.counters: Dict[str, int] = {}
        self.wall_ns: Dict[str, int] = {}
        self.wall_ns_sites: Dict[str, int] = {}
        self.dispatches = 0
        # Classification caches. Keyed by code object / type — never by
        # instance — so pooled events are never kept alive (see the
        # module docstring's ownership audit).
        self._code_cache: Dict[Any, Tuple[str, str]] = {}
        self._type_cache: Dict[Any, Tuple[str, str]] = {}

    # -- lifecycle ---------------------------------------------------------

    def reset(self, capacity: Optional[int] = None) -> None:
        """Drop all recorded state (records, counters, attribution)."""
        if capacity is not None:
            self.capacity = capacity
        self.records = []
        self._cursor = 0
        self.dropped = 0
        self.counters = {}
        self.wall_ns = {}
        self.wall_ns_sites = {}
        self.dispatches = 0
        self._code_cache = {}
        self._type_cache = {}

    def enable(self, capacity: Optional[int] = None) -> "Tracer":
        """Reset and start collecting. Simulators constructed from now
        on run the traced kernel loop."""
        self.reset(capacity)
        self.enabled = True
        return self

    def disable(self) -> "Tracer":
        """Stop collecting; recorded data stays readable."""
        self.enabled = False
        return self

    # -- recording ---------------------------------------------------------

    def record(
        self,
        ts: int,
        ph: str,
        cat: str,
        name: str,
        pid: str = "sim",
        tid: str = "",
        dur: int = 0,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Append one record to the ring buffer (oldest dropped on wrap)."""
        rec = TraceRecord(ts, ph, cat, name, pid, tid, dur, args)
        records = self.records
        if len(records) < self.capacity:
            records.append(rec)
        else:
            records[self._cursor] = rec
            self._cursor = (self._cursor + 1) % self.capacity
            self.dropped += 1

    def count(self, name: str, n: int = 1) -> None:
        """Bump a counter in the metrics registry."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + n

    def iter_records(self) -> Iterator[TraceRecord]:
        """Records in chronological (insertion) order, wrap-corrected."""
        cursor = self._cursor
        records = self.records
        if cursor:
            yield from records[cursor:]
            yield from records[:cursor]
        else:
            yield from records

    def __len__(self) -> int:
        return len(self.records)

    # -- simulator integration ---------------------------------------------

    def install(self, sim) -> None:
        """Attach this tracer to a simulator instance.

        Called automatically from ``Simulator.__init__`` when tracing
        is enabled; call manually to observe a simulator that was
        constructed before :meth:`enable`. The only changes to the
        instance are ``sim._obs`` and an instance-level ``timeout``
        wrapper that counts pool reuse — the class stays untouched, so
        unobserved simulators keep the original hot path.
        """
        sim._obs = self
        inner_timeout = sim.__class__.timeout.__get__(sim)
        counters = self.counters
        tracer = self

        def counted_timeout(delay, value=None):
            if tracer.enabled and sim._timeout_pool:
                counters["kernel.timeout_pool_recycled"] = (
                    counters.get("kernel.timeout_pool_recycled", 0) + 1
                )
            return inner_timeout(delay, value)

        sim.timeout = counted_timeout

    def run_traced(self, sim, until: Optional[int]) -> int:
        """Instrumented copy of ``Simulator.run``.

        Pops exactly the same heap entries in exactly the same order as
        the plain loop; around each dispatch it attributes host time to
        the target's subsystem and (optionally) records an instant
        event at the simulated timestamp. Raises and clock semantics
        match ``Simulator.run``.

        Fast-dispatch simulators run the batched variant (mirroring the
        batched ``Simulator.run`` loop); generic simulators run the
        one-pop-at-a-time copy below. Both attribute and record every
        dispatch individually — batching never merges trace records.
        """
        from ..sim.kernel import SimulationError  # local: avoid cycle at import

        if sim._fast_dispatch:
            return self._run_traced_batched(sim, until)
        if sim._running:
            raise SimulationError("run() is not reentrant")
        sim._running = True
        queue = sim._queue
        pop = heappop
        perf = time.perf_counter_ns
        classify = self._classify
        wall = self.wall_ns
        sites = self.wall_ns_sites
        record_kernel = self.record_kernel
        try:
            now = sim.now
            while queue:
                event_time = queue[0][0]
                if until is not None and event_time > until:
                    break
                _t, _seq, fn, args = pop(queue)
                if event_time != now:
                    now = sim.now = event_time
                subsystem, site, actor = classify(fn)
                self.dispatches += 1
                if record_kernel:
                    self.record(now, "i", "kernel", site, pid="kernel", tid=actor)
                started = perf()
                fn(*args)
                elapsed = perf() - started
                wall[subsystem] = wall.get(subsystem, 0) + elapsed
                sites[site] = sites.get(site, 0) + elapsed
                # Drop the dispatch reference before the next pop: a
                # claimed Timeout is pool-owned the moment fn() returns.
                del fn, args
            if until is not None and sim._advance_clock and until > sim.now:
                sim.now = until
        finally:
            sim._running = False
        return sim.now

    def _run_traced_batched(self, sim, until: Optional[int]) -> int:
        """Instrumented copy of the batched ``Simulator.run`` loop.

        Same two-phase structure — heap entries at the head timestamp
        dispatch eagerly, same-time pushes land in ``batch`` and are
        walked afterwards — with per-dispatch classification, wall-time
        attribution, and (optionally) an instant record each, exactly
        like the unbatched traced loop. Fire markers dispatch through
        ``Timeout._fire`` (whose batch-append path preserves ordering),
        so the claimed-timeout inlining in the untraced loop never
        changes what a trace looks like.
        """
        from ..sim.kernel import SimulationError  # local: avoid cycle at import

        if sim._running:
            raise SimulationError("run() is not reentrant")
        sim._running = True
        queue = sim._queue
        pop = heappop
        perf = time.perf_counter_ns
        classify = self._classify
        wall = self.wall_ns
        sites = self.wall_ns_sites
        record_kernel = self.record_kernel
        batch: list = []
        index = -1
        sim._batch = batch
        try:
            while queue:
                event_time = queue[0][0]
                if until is not None and event_time > until:
                    break
                sim.now = event_time
                del batch[:]
                index = -1
                while True:
                    entry = pop(queue)
                    fn = entry[2]
                    if entry[3] is None:
                        # Fire marker: dispatch via Timeout._fire so
                        # classification and ordering match the
                        # generic loop record for record.
                        fn = fn._fire
                        args = ()
                    else:
                        args = entry[3]
                    subsystem, site, actor = classify(fn)
                    self.dispatches += 1
                    if record_kernel:
                        self.record(
                            event_time, "i", "kernel", site, pid="kernel", tid=actor
                        )
                    started = perf()
                    fn(*args)
                    elapsed = perf() - started
                    wall[subsystem] = wall.get(subsystem, 0) + elapsed
                    sites[site] = sites.get(site, 0) + elapsed
                    # Drop the dispatch reference before the next pop:
                    # a claimed Timeout is pool-owned once fn() returns.
                    del fn, args, entry
                    if not queue or queue[0][0] != event_time:
                        break
                for index, (fn, args) in enumerate(batch):
                    if args is None:
                        fn = fn._fire
                        args = ()
                    subsystem, site, actor = classify(fn)
                    self.dispatches += 1
                    if record_kernel:
                        self.record(
                            event_time, "i", "kernel", site, pid="kernel", tid=actor
                        )
                    started = perf()
                    fn(*args)
                    elapsed = perf() - started
                    wall[subsystem] = wall.get(subsystem, 0) + elapsed
                    sites[site] = sites.get(site, 0) + elapsed
                    del fn, args
            if until is not None and sim._advance_clock and until > sim.now:
                sim.now = until
        finally:
            sim._batch = None
            if index + 1 < len(batch):
                # An exception escaped mid-batch: push the undispatched
                # tail back so the queue state stays consistent (the
                # entry that raised is consumed, like the generic loop).
                for fn, args in batch[index + 1 :]:
                    sim._sequence += 1
                    heappush(queue, (sim.now, sim._sequence, fn, args))
            del batch[:]
            sim._running = False
        return sim.now

    def _classify(self, fn) -> Tuple[str, str, str]:
        """(subsystem, site, actor) for a dispatched callable.

        Process resumes are attributed to the module that *defines the
        generator* — a NIC engine resume bills ``hw.nic``, a scheduler
        task bills whatever body it runs — which is what makes the
        attribution report name real cost centers instead of
        ``Process._resume`` for everything. Caches hold code objects
        and types only, never instances.
        """
        obj = getattr(fn, "__self__", None)
        if obj is None:
            code = getattr(fn, "__code__", None)
            if code is not None:
                cached = self._code_cache.get(code)
                if cached is None:
                    cached = (
                        subsystem_of(code.co_filename),
                        getattr(code, "co_qualname", code.co_name),
                    )
                    self._code_cache[code] = cached
                return cached[0], cached[1], ""
            return ("builtin", repr(fn), "")
        generator = getattr(obj, "generator", None)
        if generator is not None:
            code = generator.gi_code
            cached = self._code_cache.get(code)
            if cached is None:
                cached = (
                    subsystem_of(code.co_filename),
                    getattr(code, "co_qualname", code.co_name),
                )
                self._code_cache[code] = cached
            return cached[0], cached[1], getattr(obj, "name", "")
        cls = type(obj)
        cached = self._type_cache.get(cls)
        if cached is None:
            module = cls.__module__
            if module.startswith("repro."):
                subsystem = module[len("repro.") :]
            else:
                subsystem = module
            if cls.__name__ == "Timeout":
                subsystem = "sim.timer"
            elif cls.__name__ == "Event":
                subsystem = "sim.event"
            cached = (subsystem, cls.__name__)
            self._type_cache[cls] = cached
        name = getattr(obj, "name", "")
        return cached[0], f"{cached[1]}.{fn.__name__}", name

    # -- shard merge -------------------------------------------------------

    def absorb(
        self,
        records: List[Tuple[int, str, str, str, str, str, int, Optional[Dict[str, Any]]]],
        counters: Dict[str, int],
        dispatches: int = 0,
    ) -> None:
        """Fold trace state shipped from a shard worker into this tracer.

        ``records`` is the plain-tuple form produced by
        :func:`ship_records` — workers never pickle
        :class:`TraceRecord` instances, only their field tuples.
        Counters merge additively; records append in the order given
        (callers sort globally via
        :func:`repro.obs.export.merge_shard_records` afterwards).
        """
        for fields in records:
            self.record(*fields)
        own = self.counters
        for name, value in counters.items():
            own[name] = own.get(name, 0) + value
        self.dispatches += dispatches

    # -- summaries ---------------------------------------------------------

    def top_cost_center(self) -> Optional[str]:
        """The subsystem with the largest attributed host time."""
        if not self.wall_ns:
            return None
        return max(self.wall_ns.items(), key=lambda item: item[1])[0]

    def total_wall_ns(self) -> int:
        """Host time attributed across all subsystems."""
        return sum(self.wall_ns.values())

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"<Tracer {state} records={len(self.records)} "
            f"dropped={self.dropped} counters={len(self.counters)}>"
        )


def ship_records(
    tracer: Tracer,
) -> List[Tuple[int, str, str, str, str, str, int, Optional[Dict[str, Any]]]]:
    """Trace records as plain field tuples, safe to pickle to a peer
    process and replay through :meth:`Tracer.absorb`."""
    return [
        (rec.ts, rec.ph, rec.cat, rec.name, rec.pid, rec.tid, rec.dur, rec.args)
        for rec in tracer.iter_records()
    ]


TRACER = Tracer()
"""The process-global tracer every instrumentation point checks."""


def enable(capacity: Optional[int] = None) -> Tracer:
    """Enable the global tracer (resets previously recorded data)."""
    return TRACER.enable(capacity)


def disable() -> Tracer:
    """Disable the global tracer; recorded data stays readable."""
    return TRACER.disable()


class tracing:
    """Context manager: trace everything simulated inside the block.

    >>> from repro.obs import tracing
    >>> with tracing() as tracer:
    ...     result = microbench_latency("hyperloop", n_ops=20)  # doctest: +SKIP
    >>> tracer.top_cost_center()  # doctest: +SKIP
    'sim.timer'
    """

    def __init__(self, capacity: Optional[int] = None, record_kernel: bool = True):
        self.capacity = capacity
        self.record_kernel = record_kernel
        self.tracer = TRACER
        self._saved: Tuple[int, bool] = (0, True)

    def __enter__(self) -> Tracer:
        # Scoped configuration: capacity/record_kernel overrides die
        # with the block, so one capped trace can't silently shrink
        # every later ``tracing()`` user's ring.
        self._saved = (self.tracer.capacity, self.tracer.record_kernel)
        tracer = self.tracer.enable(self.capacity)
        tracer.record_kernel = self.record_kernel
        return tracer

    def __exit__(self, *exc_info) -> None:
        tracer = self.tracer.disable()
        tracer.capacity, tracer.record_kernel = self._saved
