"""Attribution and counter reports over a :class:`~repro.obs.trace.Tracer`.

The attribution answers ROADMAP's standing question — *where does
kernel wall-clock time actually go?* — by billing the host time spent
inside each dispatched callable to the subsystem that defines it
(``hw.nic``, ``sim.timer``, ``hw.cpu``, ...). The counters section is
the metrics registry instrumentation points feed.
"""

from __future__ import annotations

from typing import Any, Dict

from .trace import Tracer

__all__ = ["summary", "render_attribution", "render_counters", "render_report"]


def summary(tracer: Tracer) -> Dict[str, Any]:
    """Machine-readable digest (what perfsuite embeds in its entry)."""
    total = tracer.total_wall_ns()
    return {
        "dispatches": tracer.dispatches,
        "records": len(tracer),
        "dropped": tracer.dropped,
        "top_cost_center": tracer.top_cost_center(),
        "wall_ms_total": round(total / 1e6, 3),
        "wall_ns_by_subsystem": dict(
            sorted(tracer.wall_ns.items(), key=lambda kv: -kv[1])
        ),
        "counters": dict(sorted(tracer.counters.items())),
    }


def render_attribution(tracer: Tracer, top_sites: int = 8) -> str:
    """Kernel time by subsystem (and the hottest dispatch sites)."""
    total = tracer.total_wall_ns()
    if not total:
        return "attribution: no dispatches traced"
    lines = [
        f"kernel time attribution ({tracer.dispatches} dispatches, "
        f"{total / 1e6:.1f} ms inside handlers):"
    ]
    for subsystem, ns in sorted(tracer.wall_ns.items(), key=lambda kv: -kv[1]):
        lines.append(
            f"  {subsystem:<24} {ns / 1e6:9.2f} ms  {100.0 * ns / total:5.1f}%"
        )
    lines.append(f"top cost center: {tracer.top_cost_center()}")
    sites = sorted(tracer.wall_ns_sites.items(), key=lambda kv: -kv[1])[:top_sites]
    if sites:
        lines.append("hottest sites:")
        for site, ns in sites:
            lines.append(
                f"  {site:<44} {ns / 1e6:9.2f} ms  {100.0 * ns / total:5.1f}%"
            )
    return "\n".join(lines)


def render_counters(tracer: Tracer) -> str:
    """The counter registry as aligned text."""
    if not tracer.counters:
        return "counters: none recorded"
    lines = ["counters:"]
    for name, value in sorted(tracer.counters.items()):
        lines.append(f"  {name:<32} {value:>12,}")
    return "\n".join(lines)


def render_report(tracer: Tracer) -> str:
    """The full plain-text report: attribution + counters + buffer state."""
    parts = [render_attribution(tracer), render_counters(tracer)]
    if tracer.dropped:
        parts.append(
            f"ring buffer wrapped: {tracer.dropped} oldest records dropped "
            f"(kept {len(tracer)})"
        )
    return "\n\n".join(parts)
