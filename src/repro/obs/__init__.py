"""repro.obs — tracing, counters, and time-attribution observability.

Usage::

    from repro.obs import tracing, write_chrome_trace, render_report

    with tracing() as tracer:
        result = microbench_latency("hyperloop", n_ops=100)
    write_chrome_trace(tracer, "trace.json")   # chrome://tracing / Perfetto
    print(render_report(tracer))               # attribution + counters
    print(op_timeline(tracer, round_=3))       # one gWRITE's chain timeline

Or from the command line: ``python -m repro trace``.

Guarantees (enforced by ``tests/unit/test_obs_*.py``):

* **Zero cost disabled** — simulators built with tracing off run the
  original kernel loop; no per-event branch is added anywhere.
* **No behavioural change enabled** — tracing reads, never schedules;
  simulated results are identical with tracing on or off.
* **No event retention** — the tracer holds plain data only, never
  kernel-owned (poolable) ``Timeout``/``Event`` instances.
"""

from .trace import (
    TRACER,
    Tracer,
    TraceRecord,
    disable,
    enable,
    ship_records,
    subsystem_of,
    tracing,
)
from .export import (
    merge_shard_records,
    op_records,
    op_timeline,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from .report import render_attribution, render_counters, render_report, summary

__all__ = [
    "TRACER",
    "Tracer",
    "TraceRecord",
    "tracing",
    "enable",
    "disable",
    "ship_records",
    "subsystem_of",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "merge_shard_records",
    "op_records",
    "op_timeline",
    "render_attribution",
    "render_counters",
    "render_report",
    "summary",
]
