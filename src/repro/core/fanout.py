"""NIC-offloaded fan-out replication — the §7 extension.

The paper sketches how HyperLoop's techniques generalize beyond chain
replication: "if a storage application has to rely on a fan-out
replication (a single primary coordinates with multiple backups) such
as in FaRM, HyperLoop can be used to help the client offload the
coordination between the primary and backups from the primary's CPU
to the primary's NIC." This module implements that sketch for gWRITE.

Per pre-posted round, the primary's NIC runs (no primary CPU):

1. ``RECV`` on the client QP — scatters the client's per-backup WQE
   patches directly onto the pre-posted fan-out WRITE slots;
2. a loopback *trigger* queue — ``WAIT(recv, 1)`` then ``g-1``
   signaled NOPs, turning one receive completion into one completion
   per backup queue (a completion fan-out, needed because consuming
   WAITs absorb their trigger);
3. per-backup QPs (sharing one send CQ) — ``WAIT(trigger, 1)`` then
   the patched WRITE (+ 0-byte flush READ when durable);
4. an ack queue — ``WAIT(shared backup CQ, g-1)`` then WRITE_WITH_IMM
   to the client.

Everything is lap-invariant, so primary maintenance is doorbell laps,
exactly like the chain. The ablation benchmark compares this topology
against the chain: latency is comparable, but the primary's NIC
carries (g-1)× the egress — the §7 load-balancing argument for
chains, reproduced among NIC-offloaded designs.
"""

from __future__ import annotations

import struct
from typing import Dict, Generator, List, Optional, Sequence

from ..hw.cpu import Task
from ..hw.host import Host
from ..hw.nic import AccessFlags
from ..hw.wqe import FLAG_SGL, FLAG_SIGNALED, FLAG_VALID, Opcode, Wqe, WQE_SIZE
from ..rdma.reader import RemoteReader
from ..rdma.verbs import Mr, QueuePair
from ..sim import Event, Resource, US

__all__ = ["HyperFanoutGroup"]

_SGE_ENTRY = 12


class HyperFanoutGroup:
    """Fan-out gWRITE offloaded to the primary's NIC (§7).

    API mirrors the gwrite surface of
    :class:`~repro.core.group.HyperLoopGroup`; replica 0 is the
    primary, the rest are backups it coordinates.
    """

    def __init__(
        self,
        client: Host,
        replicas: Sequence[Host],
        region_size: int = 1 << 20,
        rounds: int = 256,
        durable: bool = True,
        nvm: bool = True,
        client_mode: str = "event",
        maintenance_interval: int = 200 * US,
        client_core: Optional[int] = None,
        name: str = "hfan",
        autostart: bool = True,
    ):
        if len(replicas) < 2:
            raise ValueError("fan-out needs a primary and at least one backup")
        self.client = client
        self.replicas = list(replicas)
        self.region_size = region_size
        self.rounds = rounds
        self.durable = durable
        self.name = name
        self.client_mode = client_mode
        self.maintenance_interval = maintenance_interval
        self.client_core = client_core
        self.g = len(self.replicas)
        self.n_backups = self.g - 1
        self.payload_size = self.n_backups * WQE_SIZE
        self.next_round = 0
        self.errors: List[str] = []
        self.client_region = client.memory.alloc(region_size, label=f"{name}.client")
        self.replica_mrs: List[Mr] = []
        for index, host in enumerate(self.replicas):
            region = host.memory.alloc(region_size, nvm=nvm, label=f"{name}.r{index}")
            self.replica_mrs.append(host.dev.reg_mr(region, AccessFlags.ALL_REMOTE))
        self._reader = RemoteReader(client, self.replicas, self.replica_mrs, name)
        self._setup()
        self._flow = Resource(client.sim, capacity=max(rounds // 2, 1))
        self._waiters: Dict[int, Event] = {}
        self._tasks: List[Task] = []
        self._started = False
        if autostart:
            self.start()

    @property
    def sim(self):
        return self.client.sim

    @property
    def group_size(self) -> int:
        return self.g

    # -- layout -------------------------------------------------------------------

    @property
    def spr_backup(self) -> int:
        # WAIT, WRITE, [flush READ]
        return 3 if self.durable else 2

    @property
    def spr_trigger(self) -> int:
        # WAIT + one NOP per backup
        return 1 + self.n_backups

    def _write_slot_addr(self, backup: int, position: int) -> int:
        qp = self.backup_qps[backup]
        return qp.send_slot_addr(position * self.spr_backup + 1)

    # -- setup --------------------------------------------------------------------

    def _setup(self) -> None:
        primary = self.replicas[0]
        rounds = self.rounds
        # Client -> primary data/metadata path.
        self.client_qp = self.client.dev.create_qp(
            send_slots=rounds * 4, recv_slots=8, name=f"{self.name}.c"
        )
        self.primary_qp = primary.dev.create_qp(
            send_slots=8, recv_slots=rounds, name=f"{self.name}.p"
        )
        self.client_qp.connect(self.primary_qp)
        # Completion fan-out trigger (loopback NOP queue).
        self.trigger_qp = primary.dev.create_qp(
            send_slots=rounds * self.spr_trigger, recv_slots=8, name=f"{self.name}.trig"
        )
        self.trigger_qp.connect_loopback()
        # Per-backup QPs, all completing into one shared CQ.
        shared_cq = primary.dev.create_cq(name=f"{self.name}.shared")
        self.backup_qps: List[QueuePair] = []
        for index in range(1, self.g):
            qp = primary.dev.create_qp(
                send_cq=shared_cq,
                send_slots=rounds * self.spr_backup,
                recv_slots=8,
                name=f"{self.name}.b{index}",
            )
            primary.dev.expose_send_ring(qp)
            remote = self.replicas[index].dev.create_qp(
                send_slots=8, recv_slots=8, name=f"{self.name}.b{index}r"
            )
            qp.connect(remote)
            self.backup_qps.append(qp)
        self.shared_cq = shared_cq
        # Ack path primary -> client.
        self.ack_qp = self.client.dev.create_qp(
            send_slots=8, recv_slots=rounds, name=f"{self.name}.ack"
        )
        self.primary_ack_qp = primary.dev.create_qp(
            send_slots=rounds * 2, recv_slots=8, name=f"{self.name}.pack"
        )
        self.primary_ack_qp.connect(self.ack_qp)
        ack_region = self.client.memory.alloc(rounds * 8, label=f"{self.name}.acks")
        self.ack_region = self.client.dev.reg_mr(ack_region, AccessFlags.REMOTE_WRITE)
        # Client staging + primary scatter tables.
        self.client_staging = self.client.memory.alloc(
            rounds * self.payload_size, label=f"{self.name}.cstage"
        )
        tables = primary.memory.alloc(
            rounds * self.n_backups * _SGE_ENTRY, label=f"{self.name}.tables"
        )
        self._scatter_tables = tables.addr
        for position in range(rounds):
            entries = b"".join(
                struct.pack("<QI", self._write_slot_addr(backup, position), WQE_SIZE)
                for backup in range(self.n_backups)
            )
            primary.nic.host_write(
                tables.addr + position * self.n_backups * _SGE_ENTRY, entries
            )
        scratch = primary.memory.alloc(64, label=f"{self.name}.scratch")
        self._scratch_addr = scratch.addr
        # Pre-post all rounds.
        for position in range(rounds):
            self._post_round(position)
        self.posted_rounds = rounds
        for _ in range(rounds):
            self.ack_qp.post_recv(Wqe(local_addr=0, length=0))

    def _post_round(self, round_: int) -> None:
        position = round_ % self.rounds
        # 1. RECV scattering the patches onto the fan-out WRITE slots.
        self.primary_qp.post_recv(
            Wqe(
                flags=FLAG_SGL,
                local_addr=self._scatter_tables + position * self.n_backups * _SGE_ENTRY,
                length=self.n_backups,
                wr_id=round_,
            )
        )
        # 2. Trigger queue: one recv completion -> n_backups CQEs.
        trigger_wqes = [
            Wqe(
                opcode=Opcode.WAIT,
                flags=FLAG_VALID,
                compare=1,
                swap=self.primary_qp.recv_cq.cqn,
            )
        ]
        trigger_wqes.extend(
            Wqe(opcode=Opcode.NOP, flags=FLAG_VALID | FLAG_SIGNALED, wr_id=round_)
            for _ in range(self.n_backups)
        )
        self.trigger_qp.post_send_batch(trigger_wqes, defer_ownership=True)
        # 3. Per-backup: WAIT on the trigger, patched WRITE, flush.
        for backup, qp in enumerate(self.backup_qps):
            wqes = [
                Wqe(
                    opcode=Opcode.WAIT,
                    flags=FLAG_VALID,
                    compare=1,
                    swap=self.trigger_qp.send_cq.cqn,
                ),
                Wqe(opcode=Opcode.NOP, flags=0, wr_id=round_),  # patched
            ]
            if self.durable:
                mr = self.replica_mrs[backup + 1]
                wqes.append(
                    Wqe(
                        opcode=Opcode.READ,
                        flags=FLAG_VALID | FLAG_SIGNALED,
                        length=0,
                        local_addr=self._scratch_addr,
                        remote_addr=mr.addr,
                        rkey=mr.rkey,
                        wr_id=round_,
                    )
                )
            qp.post_send_batch(wqes, defer_ownership=True)
        # 4. Ack once every backup's (flushed) WRITE completed.
        self.primary_ack_qp.post_send_batch(
            [
                Wqe(
                    opcode=Opcode.WAIT,
                    flags=FLAG_VALID,
                    compare=self.n_backups,
                    swap=self.shared_cq.cqn,
                ),
                Wqe(
                    opcode=Opcode.WRITE_IMM,
                    flags=FLAG_VALID,
                    length=0,
                    local_addr=self._scratch_addr,
                    remote_addr=self.ack_region.addr + position * 8,
                    rkey=self.ack_region.rkey,
                    compare=position,  # imm
                    wr_id=round_,
                ),
            ],
            defer_ownership=True,
        )

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._tasks.append(
            self.client.os.spawn(
                self._ack_body(), name=f"{self.name}.acks", pinned_core=self.client_core
            )
        )
        self._tasks.append(
            self.replicas[0].os.spawn(self._maintenance_body(), name=f"{self.name}.maint")
        )

    # -- operations -------------------------------------------------------------------

    def write_local(self, offset: int, data: bytes) -> None:
        self.client_region.write(offset, data)

    def read_replica(self, replica: int, offset: int, size: int) -> bytes:
        mr = self.replica_mrs[replica]
        return self.replicas[replica].nic.cache.read(mr.addr + offset, size)

    def pread(self, task: Task, replica: int, offset: int, size: int) -> Generator:
        data = yield from self._reader.pread(task, replica, offset, size)
        return data

    def gwrite(self, task: Task, offset: int, size: int) -> Generator:
        """Replicate via the primary NIC's fan-out; returns the round."""
        if offset < 0 or size < 0 or offset + size > self.region_size:
            raise ValueError(f"[{offset}, {offset + size}) outside region")
        yield from task.wait(self._flow.acquire())
        try:
            yield from task.compute(700 + self.payload_size // 8)
            round_ = self.next_round
            self.next_round += 1
            position = round_ % self.rounds
            payload = b"".join(
                self._build_patch(backup, round_, offset, size)
                for backup in range(self.n_backups)
            )
            staging = self.client_staging.addr + position * self.payload_size
            self.client.nic.host_write(staging, payload)
            primary_mr = self.replica_mrs[0]
            wqes = []
            if size > 0:
                wqes.append(
                    Wqe(
                        opcode=Opcode.WRITE,
                        flags=FLAG_VALID,
                        length=size,
                        local_addr=self.client_region.addr + offset,
                        remote_addr=primary_mr.addr + offset,
                        rkey=primary_mr.rkey,
                        wr_id=round_,
                    )
                )
            if self.durable:
                wqes.append(
                    Wqe(
                        opcode=Opcode.READ,
                        flags=FLAG_VALID,
                        length=0,
                        local_addr=staging,
                        remote_addr=primary_mr.addr,
                        rkey=primary_mr.rkey,
                        wr_id=round_,
                    )
                )
            wqes.append(
                Wqe(
                    opcode=Opcode.SEND,
                    flags=FLAG_VALID,
                    length=self.payload_size,
                    local_addr=staging,
                    wr_id=round_,
                )
            )
            self.client_qp.post_send_batch(wqes)
            ack = self.sim.event(name=f"{self.name}.op{round_}")
            self._waiters[round_] = ack
            result = yield from task.wait(ack)
        finally:
            self._flow.release()
        return result

    def _build_patch(self, backup: int, round_: int, offset: int, size: int) -> bytes:
        primary_mr = self.replica_mrs[0]
        backup_mr = self.replica_mrs[backup + 1]
        flags = FLAG_VALID | (0 if self.durable else FLAG_SIGNALED)
        return Wqe(
            opcode=Opcode.WRITE,
            flags=flags,
            length=size,
            local_addr=primary_mr.addr + offset,
            remote_addr=backup_mr.addr + offset,
            rkey=backup_mr.rkey,
            wr_id=round_,
        ).pack()

    # -- client ack handling + primary maintenance ----------------------------------------

    def _ack_body(self):
        def body(task: Task) -> Generator:
            expected = 0
            cq = self.ack_qp.recv_cq
            while True:
                if self.client_mode == "polling":
                    yield from task.poll_wait(cq.next_event())
                else:
                    yield from task.wait(cq.next_event())
                cqes = cq.poll(64)
                if cqes:
                    yield from task.compute(300 * len(cqes))
                for cqe in cqes:
                    if not cqe.ok:
                        self.errors.append(f"ack error: {cqe!r}")
                        continue
                    round_ = expected
                    expected += 1
                    if cqe.imm != round_ % self.rounds:
                        self.errors.append(
                            f"imm {cqe.imm} != position {round_ % self.rounds}"
                        )
                    self.ack_qp.post_recv(Wqe(local_addr=0, length=0))
                    waiter = self._waiters.pop(round_, None)
                    if waiter is not None:
                        waiter.succeed(round_)

        return body

    def _retired_rounds(self) -> int:
        retired = self.primary_qp.hw.recv_consumer
        retired = min(retired, self.trigger_qp.hw.send_consumer // self.spr_trigger)
        for qp in self.backup_qps:
            retired = min(retired, qp.hw.send_consumer // self.spr_backup)
        retired = min(retired, self.primary_ack_qp.hw.send_consumer // 2)
        return retired

    def _maintenance_body(self):
        def body(task: Task) -> Generator:
            while True:
                yield from task.sleep(self.maintenance_interval)
                yield from task.compute(500)
                half_lap = max(self.rounds // 2, 1)
                while self._retired_rounds() >= self.posted_rounds - self.rounds + half_lap:
                    self.primary_qp.advance_recv_producer(half_lap)
                    self.trigger_qp.advance_send_producer(half_lap * self.spr_trigger)
                    for qp in self.backup_qps:
                        qp.advance_send_producer(half_lap * self.spr_backup)
                    self.primary_ack_qp.advance_send_producer(half_lap * 2)
                    self.posted_rounds += half_lap
                    yield from task.compute(300)
                for cq in self._primary_cqs():
                    for cqe in cq.poll(1 << 16):
                        if not cqe.ok:
                            self.errors.append(f"primary: {cqe!r}")

        return body

    def _primary_cqs(self):
        cqs = [
            self.primary_qp.recv_cq,
            self.primary_qp.send_cq,
            self.trigger_qp.send_cq,
            self.shared_cq,
            self.primary_ack_qp.send_cq,
        ]
        return cqs

    def replica_cpu_ns(self) -> int:
        """CPU consumed on replica hosts (primary maintenance only)."""
        return sum(
            task.cpu_ns for task in self._tasks if task.os is not self.client.os
        )

    def __repr__(self) -> str:
        return f"<HyperFanoutGroup {self.name} g={self.g} durable={self.durable}>"
