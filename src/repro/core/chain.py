"""One HyperLoop chain: the pre-posted WQE program for a primitive.

A :class:`Chain` owns, for one primitive (gWRITE, gMEMCPY or gCAS) over
one replication group, everything §4 describes:

* per-replica QPs — to the previous node, to the next node, and (for
  gMEMCPY/gCAS) a loopback QP for local RDMA;
* per-round pre-posted programs: a RECV on the previous-node QP whose
  SGL scatter lands the incoming metadata blob in a staging area *and
  on the pre-posted op WQE itself* (remote work-request manipulation,
  Figure 5); a WAIT + op (+ 0-byte READ for durability) + forwarding
  SEND on the downstream QPs (Figure 4);
* the metadata blob format the client builds per operation.

Blob layout for group size ``g`` (one blob per round)::

    [ result map: g * 8 bytes ][ patches: g * 64-byte WQE images ]

The wire payload to replica ``r`` is ``blob ++ patches[r]`` — the
duplicated trailing patch is what the RECV scatters onto ``r``'s own
op slot; the blob body is staged and forwarded down the chain by a
*static* gather SEND (its SGE table points at the staging slot plus
the next replica's patch inside it, so nothing about forwarding needs
patching). The tail replica acks the client with a WRITE_WITH_IMM
carrying the result map.

Everything a replica executes per operation is done by its NIC; the
replica CPU only refills consumed rounds, off the critical path (see
:class:`repro.core.group.HyperLoopGroup`).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..hw.host import Host
from ..hw.nic import AccessFlags
from ..obs.trace import TRACER
from ..hw.wqe import (
    FLAG_SGL,
    FLAG_SIGNALED,
    FLAG_VALID,
    Opcode,
    Wqe,
    WQE_SIZE,
)
from ..rdma.verbs import Mr, QueuePair

__all__ = ["Chain", "OpSpec", "GWRITE", "GMEMCPY", "GCAS", "SKIP_SENTINEL"]

GWRITE = "gwrite"
GMEMCPY = "gmemcpy"
GCAS = "gcas"

SKIP_SENTINEL = 0xFFFF_FFFF_FFFF_FFFF
"""Result-map value meaning "this replica did not execute" (gCAS
execute-map skip)."""

_SGE_ENTRY = 12  # packed (u64 addr, u32 len)


@dataclass
class OpSpec:
    """Client-side description of one group operation."""

    kind: str
    offset: int = 0
    size: int = 0
    src_offset: int = 0
    dst_offset: int = 0
    compare: int = 0
    swap: int = 0
    execute_map: Optional[Sequence[bool]] = None


@dataclass
class _ReplicaState:
    """Everything one replica contributes to a chain."""

    host: Host
    index: int
    qp_prev: QueuePair = None
    qp_next: QueuePair = None
    qp_loop: Optional[QueuePair] = None
    staging_mr: Mr = None
    scatter_tables: int = 0  # base address of R recv-scatter SGE tables
    gather_tables: int = 0  # base address of R send-gather SGE tables
    scratch_addr: int = 0  # 64B sink for patches no WQE needs
    posted_rounds: int = 0


class Chain:
    """The pre-posted NIC program for one primitive on one group."""

    def __init__(
        self,
        group,
        primitive: str,
        durable: bool,
        rounds: int,
    ):
        if primitive not in (GWRITE, GMEMCPY, GCAS):
            raise ValueError(f"unknown primitive {primitive!r}")
        self.group = group
        self.primitive = primitive
        self.durable = durable
        self.rounds = rounds
        self.g = len(group.replicas)
        self.result_size = self.g * 8
        self.blob_size = self.result_size + self.g * WQE_SIZE
        self.payload_size = self.blob_size + WQE_SIZE
        self.next_round = 0  # next round index the client will use
        # Validation state for Available-Copies reads: when this chain
        # was built (virtual time) and when its newest round was acked.
        # A chain with ``last_ack_ns`` set has completed a full
        # replica-spanning round since construction — every member has
        # been written since the chain (re)formed.
        self.born_ns = group.client.sim.now
        self.last_ack_ns: Optional[int] = None
        self.replicas: List[_ReplicaState] = []
        # Client-side resources (filled by _setup_client).
        self.client_qp: QueuePair = None
        self.ack_qp: QueuePair = None
        self.client_staging: Mr = None
        self.ack_region: Mr = None
        self._ack_recv_template: Optional[Wqe] = None
        self._setup()

    # -- layout ----------------------------------------------------------------

    @property
    def uses_loopback(self) -> bool:
        return self.primitive in (GMEMCPY, GCAS)

    @property
    def spr_next(self) -> int:
        """Send-ring slots per round on the next-node QP."""
        if self.primitive == GWRITE:
            # WAIT, forward-WRITE, [flush READ], SEND
            return 4 if self.durable else 3
        # WAIT, SEND
        return 2

    @property
    def spr_tail(self) -> int:
        """Send-ring slots per round on the tail's ack QP."""
        return 2  # WAIT, WRITE_IMM

    @property
    def spr_loop(self) -> int:
        """Send-ring slots per round on the loopback QP."""
        if not self.uses_loopback:
            return 0
        # WAIT, local op, [flush READ]
        return 3 if (self.primitive == GMEMCPY and self.durable) else 2

    def patch_offset(self, replica: int) -> int:
        """Offset of ``replica``'s patch inside a blob."""
        return self.result_size + replica * WQE_SIZE

    def staging_slot_addr(self, state: _ReplicaState, round_: int) -> int:
        return state.staging_mr.addr + (round_ % self.rounds) * self.payload_size

    def op_slot_index(self, replica: int, round_: int) -> int:
        """Absolute send-ring index of the patchable op WQE."""
        spr = self.spr_loop if self.uses_loopback else self._next_spr(replica)
        return round_ * spr + 1  # slot 0 of each round is the WAIT

    def op_slot_addr(self, replica: int, round_: int) -> int:
        state = self.replicas[replica]
        qp = state.qp_loop if self.uses_loopback else state.qp_next
        return qp.send_slot_addr(self.op_slot_index(replica, round_))

    def _next_spr(self, replica: int) -> int:
        return self.spr_tail if replica == self.g - 1 else self.spr_next

    def _is_tail(self, replica: int) -> bool:
        return replica == self.g - 1

    # -- setup -----------------------------------------------------------------

    def _setup(self) -> None:
        name = f"{self.group.name}.{self.primitive}"
        for index, host in enumerate(self.group.replicas):
            self.replicas.append(self._setup_replica(host, index, name))
        for state in self.replicas:
            self._write_static_tables(state)
        self._setup_client(name)
        self._connect(name)
        for index in range(self.g):
            for round_ in range(self.rounds):
                self.post_replica_round(index, round_)
            self.replicas[index].posted_rounds = self.rounds
        for round_ in range(self.rounds):
            self.post_ack_recv()

    def _setup_replica(self, host: Host, index: int, name: str) -> _ReplicaState:
        state = _ReplicaState(host=host, index=index)
        dev = host.dev
        label = f"{name}.r{index}"
        state.qp_prev = dev.create_qp(
            send_slots=8, recv_slots=self.rounds, name=f"{label}.prev"
        )
        next_spr = self._next_spr(index)
        state.qp_next = dev.create_qp(
            send_slots=self.rounds * next_spr, recv_slots=8, name=f"{label}.next"
        )
        dev.expose_send_ring(state.qp_next)
        if self.uses_loopback:
            state.qp_loop = dev.create_qp(
                send_slots=self.rounds * self.spr_loop,
                recv_slots=8,
                name=f"{label}.loop",
            )
            dev.expose_send_ring(state.qp_loop)
            state.qp_loop.connect_loopback()
        staging = host.memory.alloc(
            self.rounds * self.payload_size, label=f"{label}.staging"
        )
        state.staging_mr = dev.reg_mr(staging, AccessFlags.REMOTE_WRITE)
        tables = host.memory.alloc(
            self.rounds * 2 * 2 * _SGE_ENTRY + 64, label=f"{label}.tables"
        )
        state.scatter_tables = tables.addr
        state.gather_tables = tables.addr + self.rounds * 2 * _SGE_ENTRY
        state.scratch_addr = tables.end - 64
        return state

    def _write_static_tables(self, state: _ReplicaState) -> None:
        """Fill the per-ring-position SGE tables (all static)."""
        nic = state.host.nic
        for position in range(self.rounds):
            staging = self.staging_slot_addr(state, position)
            # RECV scatter: blob into staging, trailing patch onto the
            # op WQE slot (or scratch where no op exists).
            if self.primitive == GWRITE and self._is_tail(state.index):
                patch_target = state.scratch_addr
            else:
                patch_target = self.op_slot_addr(state.index, position)
            scatter = struct.pack(
                "<QIQI", staging, self.blob_size, patch_target, WQE_SIZE
            )
            nic.host_write(
                state.scatter_tables + position * 2 * _SGE_ENTRY, scatter
            )
            # SEND gather: forward the blob plus the *next* replica's
            # patch (both inside the staging slot). The tail instead
            # gathers only the result map for the client ack.
            if self._is_tail(state.index):
                gather = struct.pack("<QI", staging, self.result_size)
                gather += bytes(_SGE_ENTRY)
            else:
                next_patch = staging + self.patch_offset(state.index + 1)
                gather = struct.pack(
                    "<QIQI", staging, self.blob_size, next_patch, WQE_SIZE
                )
            nic.host_write(state.gather_tables + position * 2 * _SGE_ENTRY, gather)

    def _setup_client(self, name: str) -> None:
        client = self.group.client
        self.client_qp = client.dev.create_qp(
            send_slots=self.rounds * 4, recv_slots=8, name=f"{name}.client"
        )
        self.ack_qp = client.dev.create_qp(
            send_slots=8, recv_slots=self.rounds, name=f"{name}.ack"
        )
        staging = client.memory.alloc(
            self.rounds * self.payload_size, label=f"{name}.cstaging"
        )
        self.client_staging = client.dev.reg_mr(staging)
        acks = client.memory.alloc(
            self.rounds * self.result_size, label=f"{name}.acks"
        )
        self.ack_region = client.dev.reg_mr(acks, AccessFlags.REMOTE_WRITE)

    def _connect(self, name: str) -> None:
        self.client_qp.connect(self.replicas[0].qp_prev)
        for index in range(self.g - 1):
            self.replicas[index].qp_next.connect(self.replicas[index + 1].qp_prev)
        self.replicas[-1].qp_next.connect(self.ack_qp)

    # -- replica-side round posting (driver level; caller charges CPU) -----------

    def post_replica_round(self, replica: int, round_: int) -> int:
        """(Re-)post the full per-round program on one replica.

        Returns the number of WQEs posted, so CPU-cost accounting can
        charge the maintenance task accurately.
        """
        state = self.replicas[replica]
        position = round_ % self.rounds
        posted = 0
        # 1. RECV on the previous-node QP with the SGL scatter.
        state.qp_prev.post_recv(
            Wqe(
                flags=FLAG_SGL,
                local_addr=state.scatter_tables + position * 2 * _SGE_ENTRY,
                length=2,
                wr_id=round_,
            )
        )
        posted += 1
        # 2. Loopback program (gMEMCPY / gCAS).
        if self.uses_loopback:
            loop_wqes = [
                Wqe(
                    opcode=Opcode.WAIT,
                    flags=FLAG_VALID,
                    compare=1,  # consume one recv completion
                    swap=state.qp_prev.recv_cq.cqn,
                ),
                Wqe(opcode=Opcode.NOP, flags=0, wr_id=round_),  # patched later
            ]
            if self.primitive == GMEMCPY and self.durable:
                region = self.group.replica_mrs[replica]
                loop_wqes.append(
                    Wqe(
                        opcode=Opcode.READ,
                        flags=FLAG_VALID | FLAG_SIGNALED,
                        length=0,
                        local_addr=state.scratch_addr,
                        remote_addr=region.addr,
                        rkey=region.rkey,
                        wr_id=round_,
                    )
                )
            state.qp_loop.post_send_batch(loop_wqes, defer_ownership=True)
            posted += len(loop_wqes)
        # 3. Downstream program on the next-node QP.
        watched_cq = (
            state.qp_loop.send_cq if self.uses_loopback else state.qp_prev.recv_cq
        )
        next_wqes: List[Wqe] = [
            Wqe(
                opcode=Opcode.WAIT,
                flags=FLAG_VALID,
                compare=1,  # consume one completion
                swap=watched_cq.cqn,
            )
        ]
        if self._is_tail(replica):
            next_wqes.append(
                Wqe(
                    opcode=Opcode.WRITE_IMM,
                    flags=FLAG_VALID | FLAG_SGL,
                    length=1,
                    local_addr=state.gather_tables + position * 2 * _SGE_ENTRY,
                    remote_addr=self.ack_region.addr + position * self.result_size,
                    rkey=self.ack_region.rkey,
                    compare=position,  # imm: ring position (lap-invariant)
                    wr_id=round_,
                )
            )
        else:
            if self.primitive == GWRITE:
                next_wqes.append(Wqe(opcode=Opcode.NOP, flags=0, wr_id=round_))
                if self.durable:
                    next_region = self.group.replica_mrs[replica + 1]
                    next_wqes.append(
                        Wqe(
                            opcode=Opcode.READ,
                            flags=FLAG_VALID,
                            length=0,
                            local_addr=state.scratch_addr,
                            remote_addr=next_region.addr,
                            rkey=next_region.rkey,
                            wr_id=round_,
                        )
                    )
            next_wqes.append(
                Wqe(
                    opcode=Opcode.SEND,
                    flags=FLAG_VALID | FLAG_SGL,
                    length=2,
                    local_addr=state.gather_tables + position * 2 * _SGE_ENTRY,
                    wr_id=round_,
                )
            )
        state.qp_next.post_send_batch(next_wqes, defer_ownership=True)
        posted += len(next_wqes)
        return posted

    def retired_rounds(self, replica: int) -> int:
        """Rounds whose ring slots the NIC has fully consumed on every
        ring this replica posts to — the safe refill horizon."""
        state = self.replicas[replica]
        retired = state.qp_prev.hw.recv_consumer
        retired = min(retired, state.qp_next.hw.send_consumer // self._next_spr(replica))
        if state.qp_loop is not None:
            retired = min(retired, state.qp_loop.hw.send_consumer // self.spr_loop)
        return retired

    def advance_lap(self, replica: int, rounds: int) -> None:
        """Re-arm ``rounds`` consumed rounds on a replica's rings.

        The per-round WQE programs are lap-invariant (consuming WAITs,
        per-position addresses, client-patched descriptors), so this
        is doorbell writes only — the near-zero replica CPU cost the
        paper claims for sustained operation.
        """
        state = self.replicas[replica]
        state.qp_prev.advance_recv_producer(rounds)
        state.qp_next.advance_send_producer(rounds * self._next_spr(replica))
        if state.qp_loop is not None:
            state.qp_loop.advance_send_producer(rounds * self.spr_loop)
        state.posted_rounds += rounds

    def post_ack_recv(self) -> None:
        """Post one client-side RECV for a tail WRITE_IMM ack."""
        self.ack_qp.post_recv(Wqe(local_addr=0, length=0))

    # -- client-side per-operation construction ------------------------------------

    def build_patch(self, replica: int, round_: int, op: OpSpec) -> bytes:
        """The 64-byte WQE image the client writes onto a replica's op
        slot for this operation."""
        state = self.replicas[replica]
        region = self.group.replica_mrs[replica]
        if op.kind == GWRITE:
            if self._is_tail(replica):
                return bytes(WQE_SIZE)  # tail has no forward op
            next_region = self.group.replica_mrs[replica + 1]
            return Wqe(
                opcode=Opcode.WRITE,
                flags=FLAG_VALID,
                length=op.size,
                local_addr=region.addr + op.offset,
                remote_addr=next_region.addr + op.offset,
                rkey=next_region.rkey,
                wr_id=round_,
            ).pack()
        if op.kind == GMEMCPY:
            flags = FLAG_VALID | (0 if self.durable else FLAG_SIGNALED)
            return Wqe(
                opcode=Opcode.WRITE,
                flags=flags,
                length=op.size,
                local_addr=region.addr + op.src_offset,
                remote_addr=region.addr + op.dst_offset,
                rkey=region.rkey,
                wr_id=round_,
            ).pack()
        if op.kind == GCAS:
            execute = op.execute_map[replica] if op.execute_map else True
            result_slot = self.staging_slot_addr(state, round_) + replica * 8
            return Wqe(
                opcode=Opcode.CAS if execute else Opcode.NOP,
                flags=FLAG_VALID | FLAG_SIGNALED,
                length=8,
                local_addr=result_slot,
                remote_addr=region.addr + op.offset,
                rkey=region.rkey,
                compare=op.compare,
                swap=op.swap,
                wr_id=round_,
            ).pack()
        raise ValueError(f"bad op kind {op.kind!r}")

    def build_payload(self, round_: int, op: OpSpec) -> bytes:
        """The full wire payload for the head replica:
        ``result map ++ all patches ++ head patch`` (Figure 5)."""
        result_map = struct.pack("<Q", SKIP_SENTINEL) * self.g
        patches = b"".join(
            self.build_patch(replica, round_, op) for replica in range(self.g)
        )
        blob = result_map + patches
        return blob + blob[self.patch_offset(0) : self.patch_offset(0) + WQE_SIZE]

    def client_post(self, op: OpSpec) -> int:
        """Build and post one operation. Returns its round number.

        Pure driver work — the calling task is responsible for
        charging CPU (see :meth:`client_post_cost`).
        """
        round_ = self.next_round
        self.next_round += 1
        position = round_ % self.rounds
        payload = self.build_payload(round_, op)
        staging_addr = self.client_staging.addr + position * self.payload_size
        self.group.client.nic.host_write(staging_addr, payload)
        wqes: List[Wqe] = []
        head = self.group.replica_mrs[0]
        if op.kind == GWRITE and op.size > 0:
            wqes.append(
                Wqe(
                    opcode=Opcode.WRITE,
                    flags=FLAG_VALID,
                    length=op.size,
                    local_addr=self.group.client_region.addr + op.offset,
                    remote_addr=head.addr + op.offset,
                    rkey=head.rkey,
                    wr_id=round_,
                )
            )
        if op.kind == GWRITE and self.durable:
            wqes.append(
                Wqe(
                    opcode=Opcode.READ,
                    flags=FLAG_VALID,
                    length=0,
                    local_addr=staging_addr,
                    remote_addr=head.addr,
                    rkey=head.rkey,
                    wr_id=round_,
                )
            )
        wqes.append(
            Wqe(
                opcode=Opcode.SEND,
                flags=FLAG_VALID,
                length=len(payload),
                local_addr=staging_addr,
                wr_id=round_,
            )
        )
        self.client_qp.post_send_batch(wqes)
        if TRACER.enabled:
            TRACER.record(
                self.group.sim.now,
                "i",
                "group",
                f"chain.post.{self.primitive}",
                pid=f"group:{self.group.name}",
                tid=f"chain/{self.primitive}",
                args={"round": round_, "wqes": len(wqes)},
            )
        return round_

    def client_post_cost(self, op: OpSpec) -> int:
        """CPU ns the client should charge for one :meth:`client_post`."""
        wqes = 1 + (2 if op.kind == GWRITE and self.durable else 1)
        build = 300 + self.payload_size // 8
        return wqes * 200 + build

    def parse_result_map(self, round_: int) -> List[Optional[int]]:
        """Read a completed round's result map from the ack region."""
        self.last_ack_ns = self.group.client.sim.now
        position = round_ % self.rounds
        raw = self.group.client.nic.cache.read(
            self.ack_region.addr + position * self.result_size, self.result_size
        )
        out: List[Optional[int]] = []
        for replica in range(self.g):
            (value,) = struct.unpack_from("<Q", raw, replica * 8)
            out.append(None if value == SKIP_SENTINEL else value)
        return out

    def __repr__(self) -> str:
        return (
            f"<Chain {self.primitive} g={self.g} durable={self.durable} "
            f"round={self.next_round}>"
        )
