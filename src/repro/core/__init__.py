"""HyperLoop core: group-based NIC-offloading primitives.

The paper's primary contribution: gWRITE, gMEMCPY, gCAS and gFLUSH
executed by chains of RNICs with zero replica-CPU involvement on the
critical path.
"""

from .chain import Chain, GCAS, GMEMCPY, GWRITE, OpSpec, SKIP_SENTINEL
from .fanout import HyperFanoutGroup
from .group import HyperLoopGroup

__all__ = [
    "HyperLoopGroup",
    "HyperFanoutGroup",
    "Chain",
    "OpSpec",
    "GWRITE",
    "GMEMCPY",
    "GCAS",
    "SKIP_SENTINEL",
]
