"""HyperLoopGroup: the public API of the primitive library.

One group = one client (transaction coordinator) plus ``g`` replicas
in a chain, with a shared replicated data region. Matches the paper's
architecture (Figure 3):

* :meth:`gwrite` — replicate client bytes at ``offset`` to every
  replica's region (log replication; Table 1 gWRITE).
* :meth:`gmemcpy` — every replica's NIC copies ``size`` bytes from
  ``src_offset`` to ``dst_offset`` locally (log processing /
  transaction execution; Table 1 gMEMCPY).
* :meth:`gcas` — compare-and-swap at ``offset`` on the replicas
  selected by the execute map; returns the result map (group locking;
  Table 1 gCAS).
* :meth:`gflush` — force all previously replicated data into the
  durable domain on every replica (Table 1 gFLUSH). Durability can
  also be interleaved per-operation (``durable=True``, the default),
  in which case every gwrite/gmemcpy is flushed in-line exactly as
  §4.2 describes.

All operations are generator methods to be driven from an OS
:class:`~repro.hw.cpu.Task` on the client — the client CPU is on the
critical path (it builds metadata and posts work), replica CPUs are
not. Replica-side CPU involvement is limited to a maintenance task
that refills consumed pre-posted rounds off the critical path.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence

from ..hw.cpu import Task
from ..hw.host import Host
from ..hw.nic import AccessFlags
from ..obs.trace import TRACER
from ..rdma.reader import RemoteReader
from ..sim import Event, Resource, US
from .chain import Chain, GCAS, GMEMCPY, GWRITE, OpSpec

__all__ = ["HyperLoopGroup"]


class HyperLoopGroup:
    """A replication group offloaded to NICs.

    Parameters
    ----------
    client:
        The coordinator host (storage front-end).
    replicas:
        Ordered chain of replica hosts (head first).
    region_size:
        Size in bytes of the replicated data region on every node.
    rounds:
        Pre-posted rounds per chain; at most ``rounds // 2``
        operations may be in flight per primitive.
    durable:
        Interleave gFLUSH with every gwrite/gmemcpy (§4.2).
    nvm:
        Place replica regions in NVM (battery-backed DRAM).
    client_mode:
        ``"event"`` — the client completion handler blocks on the CQ
        channel (normal tenants); ``"polling"`` — it busy-polls
        (dedicated-core clients, e.g. the microbenchmark driver).
    maintenance_interval:
        How often replica CPUs wake to refill rounds (off the
        critical path).
    """

    def __init__(
        self,
        client: Host,
        replicas: Sequence[Host],
        region_size: int = 1 << 20,
        rounds: int = 256,
        durable: bool = True,
        nvm: bool = True,
        primitives: Sequence[str] = (GWRITE, GMEMCPY, GCAS),
        client_mode: str = "event",
        maintenance_interval: int = 200 * US,
        client_core: Optional[int] = None,
        name: str = "group",
        autostart: bool = True,
    ):
        if not replicas:
            raise ValueError("a group needs at least one replica")
        if client_mode not in ("event", "polling"):
            raise ValueError(f"bad client_mode {client_mode!r}")
        self.client = client
        self.replicas = list(replicas)
        self.region_size = region_size
        self.rounds = rounds
        self.durable = durable
        self.name = name
        self.client_mode = client_mode
        self.maintenance_interval = maintenance_interval
        self.client_core = client_core
        self.errors: List[str] = []
        # Replicated data regions: one local copy on the client, one
        # remotely accessible region per replica.
        self.client_region = client.memory.alloc(
            region_size, label=f"{name}.client_region"
        )
        self.client_region_mr = client.dev.reg_mr(self.client_region)
        self.replica_mrs = []
        for index, host in enumerate(self.replicas):
            region = host.memory.alloc(
                region_size, nvm=nvm, label=f"{name}.r{index}.region"
            )
            self.replica_mrs.append(host.dev.reg_mr(region, AccessFlags.ALL_REMOTE))
        self._reader = RemoteReader(client, self.replicas, self.replica_mrs, name)
        self.chains: Dict[str, Chain] = {
            primitive: Chain(self, primitive, durable, rounds)
            for primitive in primitives
        }
        self._flow: Dict[str, Resource] = {
            primitive: Resource(client.sim, capacity=max(rounds // 2, 1))
            for primitive in self.chains
        }
        self._waiters: Dict[str, Dict[int, Event]] = {
            primitive: {} for primitive in self.chains
        }
        self._tasks: List[Task] = []
        self._started = False
        self._stopping = False
        if autostart:
            self.start()

    @property
    def sim(self):
        return self.client.sim

    @property
    def group_size(self) -> int:
        return len(self.replicas)

    @property
    def validated_since_birth(self) -> bool:
        """Whether an acked write round completed on this group's chain.

        The Available-Copies read rule: a chain freshly built (e.g. by
        ``ChainRepair`` after a membership change) must be *written
        since recovery* before its copies may serve snapshot reads.
        An acked gWRITE round traverses every member, so one ack since
        construction re-validates the whole chain.
        """
        chain = self.chains.get(GWRITE)
        return chain is not None and chain.last_ack_ns is not None

    def readable_replicas(self) -> List[int]:
        """Replica indices currently eligible to serve one-sided reads.

        Excludes crashed hosts, halted NICs, and replicas restarted
        after the chain's newest acked write — a restarted site holds
        whatever survived in NVM and must see a committed write land
        before its copy is trusted again (Available-Copies).
        """
        chain = self.chains.get(GWRITE)
        last_ack = chain.last_ack_ns if chain is not None else None
        out: List[int] = []
        for index, host in enumerate(self.replicas):
            if host.down or host.nic.halted:
                continue
            if host.last_restart_ns is not None and (
                last_ack is None or last_ack <= host.last_restart_ns
            ):
                continue
            out.append(index)
        return out

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        """Spawn the client completion handlers and replica
        maintenance tasks."""
        if self._started:
            return
        self._started = True
        task = self.client.os.spawn(
            self._ack_handler_body(),
            name=f"{self.name}.acks",
            pinned_core=self.client_core,
        )
        self._tasks.append(task)
        for index, host in enumerate(self.replicas):
            task = host.os.spawn(
                self._maintenance_body(index),
                name=f"{self.name}.r{index}.maint",
            )
            self._tasks.append(task)

    def stop(self) -> None:
        """Retire the group: background tasks exit at their next wakeup.

        Used on membership change — :class:`~repro.storage.recovery.
        ChainRepair` abandons the old group wholesale, and without this
        its replica maintenance tasks would keep waking forever. Tasks
        blocked on events that will never fire (e.g. the ack handler of
        a group whose chain is dead) simply stay dormant; no new timer
        events are scheduled once they observe the flag.
        """
        self._stopping = True

    def reattach_client(self) -> None:
        """Rebuild the client's read path after a client crash/restart.

        A crashed client NIC loses its volatile QP/ring state, so the
        old :class:`~repro.rdma.reader.RemoteReader` QPs are dead on
        the client side. The replica regions themselves are retained
        NIC/memory state, so a fresh reader — new QP pairs on both
        ends, same replica MRs — restores one-sided pread access for
        catch-up. Chain QPs are *not* rebuilt here; recovery replaces
        the group (fresh chains) once the client has caught up, exactly
        as :class:`~repro.storage.recovery.ChainRepair` does for
        replica failures.
        """
        self._reader = RemoteReader(
            self.client,
            self.replicas,
            self.replica_mrs,
            f"{self.name}.reattach",
        )

    # -- public operations (drive from a client Task) ---------------------------------

    def write_local(self, offset: int, data: bytes) -> None:
        """Stage ``data`` in the client's local copy of the region.

        gwrite replicates *from this region*; storage layers call this
        while building log records.
        """
        self.client_region.write(offset, data)

    def read_replica(self, replica: int, offset: int, size: int) -> bytes:
        """Read a replica's region directly (test/verification hook)."""
        mr = self.replica_mrs[replica]
        return self.replicas[replica].nic.cache.read(mr.addr + offset, size)

    def pread(self, task: Task, replica: int, offset: int, size: int) -> Generator:
        """One-sided RDMA READ from a replica (no replica CPU)."""
        data = yield from self._reader.pread(task, replica, offset, size)
        return data

    def gwrite(self, task: Task, offset: int, size: int) -> Generator:
        """Replicate ``size`` bytes at ``offset`` to all replicas.

        Yields until the group ACK (tail WRITE_WITH_IMM) arrives;
        returns the operation's round number.
        """
        self._check_range(offset, size)
        result = yield from self._run(task, GWRITE, OpSpec(GWRITE, offset=offset, size=size))
        return result

    def gflush(self, task: Task) -> Generator:
        """Explicitly flush the chain (a zero-byte durable gwrite)."""
        chain = self.chains[GWRITE]
        if not chain.durable:
            raise RuntimeError(
                "gflush needs the gwrite chain built with durable=True"
            )
        result = yield from self._run(task, GWRITE, OpSpec(GWRITE, offset=0, size=0))
        return result

    def gmemcpy(self, task: Task, src_offset: int, dst_offset: int, size: int) -> Generator:
        """NIC-local copy of ``size`` bytes on every replica."""
        self._check_range(src_offset, size)
        self._check_range(dst_offset, size)
        result = yield from self._run(
            task,
            GMEMCPY,
            OpSpec(GMEMCPY, src_offset=src_offset, dst_offset=dst_offset, size=size),
        )
        return result

    def gcas(
        self,
        task: Task,
        offset: int,
        compare: int,
        swap: int,
        execute_map: Optional[Sequence[bool]] = None,
    ) -> Generator:
        """Group compare-and-swap; returns the result map.

        The result map is a list with one entry per replica: the
        original 8-byte value at ``offset`` where the CAS executed, or
        ``None`` where the execute map skipped the replica.
        """
        self._check_range(offset, 8)
        if execute_map is not None and len(execute_map) != self.group_size:
            raise ValueError("execute map must have one entry per replica")
        result = yield from self._run(
            task,
            GCAS,
            OpSpec(GCAS, offset=offset, compare=compare, swap=swap, execute_map=execute_map),
        )
        return result

    def _check_range(self, offset: int, size: int) -> None:
        if offset < 0 or size < 0 or offset + size > self.region_size:
            raise ValueError(
                f"[{offset}, {offset + size}) outside region of {self.region_size}"
            )

    def _run(self, task: Task, primitive: str, op: OpSpec) -> Generator:
        chain = self.chains.get(primitive)
        if chain is None:
            raise RuntimeError(f"group built without the {primitive} chain")
        flow = self._flow[primitive]
        traced = TRACER.enabled
        if traced:
            # One span per op, on the issuing task's lane: a worker has
            # at most one group op in flight, so spans never overlap
            # within a tid. The round is attached at the "posted"
            # instant and on the end event (it is unknown at begin).
            TRACER.record(
                self.sim.now,
                "B",
                "group",
                f"{self.name}.{primitive}",
                pid=f"group:{self.name}",
                tid=task.name,
                args={"size": op.size},
            )
            TRACER.count("group.ops")
        round_ = None
        try:
            yield from task.wait(flow.acquire())
            try:
                yield from task.compute(chain.client_post_cost(op))
                round_ = chain.client_post(op)
                if traced:
                    TRACER.record(
                        self.sim.now,
                        "i",
                        "group",
                        "posted",
                        pid=f"group:{self.name}",
                        tid=task.name,
                        args={"round": round_},
                    )
                ack = self.sim.event(name=f"{self.name}.{primitive}.{round_}")
                self._waiters[primitive][round_] = ack
                result = yield from task.wait(ack)
            finally:
                flow.release()
        finally:
            if traced:
                TRACER.record(
                    self.sim.now,
                    "E",
                    "group",
                    f"{self.name}.{primitive}",
                    pid=f"group:{self.name}",
                    tid=task.name,
                    args=None if round_ is None else {"round": round_},
                )
        return result

    # -- client completion handling ------------------------------------------------------

    def _ack_handler_body(self) -> Generator:
        """One client completion thread serving every chain's ack CQ
        (one poller / one epoll loop, as a real client would run)."""
        poll_slice = 200  # ns of CPU per poll check in polling mode
        chains = list(self.chains.values())
        expected = {chain.primitive: 0 for chain in chains}

        def handle(task: Task, chain: Chain) -> Generator:
            cqes = chain.ack_qp.recv_cq.poll(64)
            if cqes:
                yield from task.compute(300 * len(cqes))
            for cqe in cqes:
                if not cqe.ok:
                    self.errors.append(f"{chain.primitive} ack error: {cqe!r}")
                    continue
                round_ = expected[chain.primitive]
                expected[chain.primitive] += 1
                if cqe.imm != round_ % chain.rounds:
                    self.errors.append(
                        f"{chain.primitive}: imm {cqe.imm} != position "
                        f"{round_ % chain.rounds}"
                    )
                result = chain.parse_result_map(round_)
                chain.post_ack_recv()
                waiter = self._waiters[chain.primitive].pop(round_, None)
                if waiter is not None:
                    waiter.succeed(result)

        def drain_send_errors(task: Task) -> Generator:
            # Lossy fabrics only: the client chain WQEs are posted
            # non-signaled, so the only CQEs that ever land on the
            # client send CQ are errors — the NIC's RC retransmission
            # path reporting WC_RETRY_EXCEEDED after its budget. Surface
            # them to the op layer; on a clean fabric this queue stays
            # empty forever and is never polled.
            for chain in chains:
                cqes = chain.client_qp.send_cq.poll(64)
                if cqes:
                    yield from task.compute(300 * len(cqes))
                for cqe in cqes:
                    if not cqe.ok:
                        self.errors.append(
                            f"{chain.primitive} send error: {cqe!r}"
                        )

        def body(task: Task) -> Generator:
            while True:
                if self._stopping:
                    return
                lossy = self.client.nic.fabric.lossy
                if lossy:
                    yield from drain_send_errors(task)
                pending = [c for c in chains if c.ack_qp.recv_cq.entries]
                if not pending:
                    waits = [c.ack_qp.recv_cq.next_event() for c in chains]
                    if lossy:
                        waits.extend(
                            c.client_qp.send_cq.next_event() for c in chains
                        )
                    any_ack = self.sim.any_of(waits)
                    if self.client_mode == "polling":
                        yield from task.poll_wait(any_ack, check_ns=poll_slice)
                    else:
                        yield from task.wait(any_ack)
                    if lossy:
                        yield from drain_send_errors(task)
                    pending = [c for c in chains if c.ack_qp.recv_cq.entries]
                for chain in pending:
                    yield from handle(task, chain)

        return body

    def _maintenance_body(self, index: int) -> Generator:
        """Replica-side task: refill consumed rounds, drain CQs.

        This is the only CPU work replicas ever do for the group, and
        it is batched and off the critical path (§5.1: "Replicas need
        to wake up periodically off the critical path").
        """

        def body(task: Task) -> Generator:
            while True:
                yield from task.sleep(self.maintenance_interval)
                if self._stopping:
                    return
                # Timer wakeup + ring/CQ state checks.
                yield from task.compute(500)
                for chain in self.chains.values():
                    state = chain.replicas[index]
                    # Re-arm consumed rounds in half-lap batches: the
                    # programs are lap-invariant, so this is a doorbell
                    # write per ring, not WQE re-serialization.
                    half_lap = max(chain.rounds // 2, 1)
                    while (
                        chain.retired_rounds(index)
                        >= state.posted_rounds - chain.rounds + half_lap
                    ):
                        chain.advance_lap(index, half_lap)
                        yield from task.compute(300)
                    # Drain CQs so hardware queues stay bounded; check
                    # for errors the NIC surfaced.
                    for cq in self._replica_cqs(chain, index):
                        cqes = cq.poll(1 << 16)
                        for cqe in cqes:
                            if not cqe.ok:
                                self.errors.append(
                                    f"r{index} {chain.primitive}: {cqe!r}"
                                )

        return body

    def _replica_cqs(self, chain: Chain, index: int):
        state = chain.replicas[index]
        cqs = [
            state.qp_prev.recv_cq,
            state.qp_prev.send_cq,
            state.qp_next.send_cq,
            state.qp_next.recv_cq,
        ]
        if state.qp_loop is not None:
            cqs.extend([state.qp_loop.send_cq, state.qp_loop.recv_cq])
        return cqs

    # -- metrics -------------------------------------------------------------------------

    def replica_cpu_ns(self) -> int:
        """Total CPU time consumed on replica hosts by group tasks."""
        return sum(
            task.cpu_ns
            for task in self._tasks
            if task.os is not self.client.os
        )

    def stats(self) -> Dict[str, int]:
        """Operational counters (observability surface)."""
        return {
            "ops_issued": sum(c.next_round for c in self.chains.values()),
            "rounds_posted": sum(
                state.posted_rounds
                for chain in self.chains.values()
                for state in chain.replicas
            ),
            "replica_cpu_ns": self.replica_cpu_ns(),
            "errors": len(self.errors),
        }

    def __repr__(self) -> str:
        return f"<HyperLoopGroup {self.name} g={self.group_size} durable={self.durable}>"
