"""Hardware substrate models: CPU/OS, memory/NVM, network, RNIC."""

from .cpu import Core, OperatingSystem, SchedParams, Task
from .memory import MemoryRegion, MemorySystem, WriteCache
from .network import Fabric, Port
from .wqe import Cqe, Opcode, Wqe, WQE_SIZE
from .nic import AccessFlags, HwCq, NicParams, NicQp, Rnic
from .host import Cluster, Host

__all__ = [
    "OperatingSystem",
    "SchedParams",
    "Task",
    "Core",
    "MemorySystem",
    "MemoryRegion",
    "WriteCache",
    "Fabric",
    "Port",
    "Rnic",
    "NicQp",
    "NicParams",
    "HwCq",
    "AccessFlags",
    "Wqe",
    "Cqe",
    "Opcode",
    "WQE_SIZE",
    "Host",
    "Cluster",
]
