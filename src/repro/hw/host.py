"""Host and cluster containers wiring CPU, memory, NIC and fabric."""

from __future__ import annotations

from typing import List, Optional

from ..sim import Simulator
from .cpu import OperatingSystem, SchedParams
from .memory import MemorySystem
from .network import Fabric
from .nic import NicParams, Rnic

__all__ = ["Host", "Cluster"]


class Host:
    """One server: cores + memory/NVM + one RNIC on the fabric."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        fabric: Fabric,
        n_cores: int = 16,
        dram_size: int = 1 << 26,
        nvm_size: int = 1 << 26,
        sched_params: Optional[SchedParams] = None,
        nic_params: Optional[NicParams] = None,
        hyperloop_driver: bool = True,
    ):
        self.sim = sim
        self.name = name
        self.memory = MemorySystem(dram_size=dram_size, nvm_size=nvm_size)
        self.os = OperatingSystem(sim, n_cores=n_cores, params=sched_params, name=name)
        self.nic = Rnic(sim, name, self.memory, fabric, params=nic_params)
        # Imported here to keep repro.hw importable without pulling the
        # verbs layer in at module-import time (verbs imports repro.hw).
        from ..rdma.verbs import RdmaDevice

        self.dev = RdmaDevice(self.nic, hyperloop=hyperloop_driver)
        self.down = False
        # Virtual time of the last restart (None = never restarted).
        # Read-side failure rules use this to tell a fresh copy from a
        # recovered one that has not been written since recovery.
        self.last_restart_ns: Optional[int] = None

    def power_failure(self) -> None:
        """Lose power: NIC cache dropped, DRAM zeroed, NVM survives.

        Order matters: the NIC's volatile write cache must revert its
        un-flushed windows *before* DRAM is zeroed, so NVM bytes whose
        durability window was still open land back on their last
        durable contents — exactly the loss gFLUSH exists to prevent
        (DESIGN.md, durability model).
        """
        self.nic.power_failure()
        self.memory.power_failure()

    def crash(self) -> None:
        """Whole-host failure: power loss plus a dark NIC.

        Composes :meth:`Rnic.crash` (engines halt, volatile WQE/QP
        caches and un-flushed write windows lost, inbound traffic
        discarded) with :meth:`MemorySystem.power_failure` (DRAM
        zeroed, NVM intact). CPU tasks of the crashed host keep their
        sim processes but can no longer reach the wire, so heartbeats
        stop at the NIC — which is what failure detectors observe.
        """
        self.down = True
        self.nic.crash()
        self.memory.power_failure()

    def restart(self) -> None:
        """Bring a crashed host back: NVM contents are whatever
        survived the crash, DRAM is zeroed, the NIC is up but every
        pre-crash ring holds zeroed (invalid) WQEs. Software rebuilds
        its groups/QPs on top, as §5.1's recovery flow does."""
        self.down = False
        self.last_restart_ns = self.sim.now
        self.nic.restart()

    def __repr__(self) -> str:
        return f"<Host {self.name} cores={len(self.os.cores)}>"


class Cluster:
    """A set of hosts on one switch, as in the paper's testbed."""

    def __init__(
        self,
        sim: Simulator,
        n_hosts: int,
        n_cores: int = 16,
        dram_size: int = 1 << 26,
        nvm_size: int = 1 << 26,
        sched_params: Optional[SchedParams] = None,
        nic_params: Optional[NicParams] = None,
        propagation_ns: int = 1300,
    ):
        self.sim = sim
        self.fabric = Fabric(sim, propagation_ns=propagation_ns)
        self.hosts: List[Host] = [
            Host(
                sim,
                f"host{i}",
                self.fabric,
                n_cores=n_cores,
                dram_size=dram_size,
                nvm_size=nvm_size,
                sched_params=sched_params,
                nic_params=nic_params,
            )
            for i in range(n_hosts)
        ]

    def __getitem__(self, index: int) -> Host:
        return self.hosts[index]

    def __len__(self) -> int:
        return len(self.hosts)

    def host(self, name: str) -> Host:
        for host in self.hosts:
            if host.name == name:
                return host
        raise KeyError(name)
