"""Work-queue element (WQE) and completion (CQE) formats.

A WQE is a **64-byte struct living in simulated host memory**. The
driver serializes work requests into a ring of these structs; the NIC
send engine re-reads the struct bytes *at execution time*. This is the
property HyperLoop's remote work-request manipulation rests on: a
remote RDMA WRITE that lands in the ring literally changes what the
NIC will execute, and the deferred VALID bit means a pre-posted WQE is
inert until the incoming metadata grants ownership to the NIC.

Layout (little-endian)::

    off  size  field
    0    1     opcode
    1    1     flags        (bit0 VALID, bit1 SIGNALED)
    2    2     (reserved)
    4    4     length
    8    8     local_addr
    16   8     remote_addr
    24   4     rkey
    28   4     lkey
    32   8     compare      (CAS) / wait threshold (WAIT) / imm (WRITE_IMM)
    40   8     swap         (CAS) / wait target CQN (WAIT)
    48   8     wr_id
    56   8     (reserved)
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from ..obs.trace import TRACER

__all__ = [
    "Opcode",
    "WQE_SIZE",
    "FLAG_VALID",
    "FLAG_SIGNALED",
    "FLAG_SGL",
    "Wqe",
    "Cqe",
    "WC_SUCCESS",
    "WC_REMOTE_ACCESS_ERROR",
    "WC_REMOTE_OP_ERROR",
    "WC_RETRY_EXCEEDED",
    "decode_cached",
]

WQE_SIZE = 64

FLAG_VALID = 0x01
FLAG_SIGNALED = 0x02
FLAG_SGL = 0x04
"""Scatter/gather mode: ``local_addr`` points at a packed SGE table in
host memory and ``length`` is the number of entries (the NIC reads the
table at execution time, like inline SGE lists on real adapters)."""

# Completion statuses (subset of ibv_wc_status).
WC_SUCCESS = 0
WC_REMOTE_ACCESS_ERROR = 10
WC_REMOTE_OP_ERROR = 11
WC_RETRY_EXCEEDED = 12
"""Transport retry counter exhausted (IBV_WC_RETRY_EXC_ERR): the
responder never acknowledged despite retransmission — a partition that
outlasted the retry budget, or a crashed peer NIC."""


class Opcode:
    """WQE opcodes. Values are part of the in-memory format."""

    NOP = 0
    SEND = 1
    RECV = 2
    WRITE = 3
    READ = 4
    CAS = 5
    WAIT = 6
    WRITE_IMM = 7

    NAMES = {
        0: "NOP",
        1: "SEND",
        2: "RECV",
        3: "WRITE",
        4: "READ",
        5: "CAS",
        6: "WAIT",
        7: "WRITE_IMM",
    }


_STRUCT = struct.Struct("<BBHIQQIIQQQQ")
assert _STRUCT.size == WQE_SIZE


@dataclass(slots=True)
class Wqe:
    """A decoded work-queue element.

    Field meaning depends on ``opcode``:

    * SEND / WRITE / WRITE_IMM: ``local_addr``/``length`` is the
      gather source; WRITE* also use ``remote_addr``/``rkey``.
      WRITE_IMM carries ``compare`` as the 32-bit immediate.
    * READ: ``remote_addr``/``rkey`` is the remote source,
      ``local_addr`` the local destination; ``length`` may be zero
      (pure flush — §4.2 gFLUSH).
    * CAS: ``remote_addr`` is the 8-byte target, ``compare``/``swap``
      the operands, ``local_addr`` receives the original value.
    * RECV: ``local_addr``/``length`` is the scatter destination.
    * WAIT: block the queue until CQ number ``swap`` has seen at least
      ``compare`` completions in total (CORE-Direct semantics).
    * NOP: complete immediately (used by gCAS execute maps to skip a
      replica without breaking the chain's completion flow).
    """

    opcode: int = Opcode.NOP
    flags: int = FLAG_VALID
    length: int = 0
    local_addr: int = 0
    remote_addr: int = 0
    rkey: int = 0
    lkey: int = 0
    compare: int = 0
    swap: int = 0
    wr_id: int = 0

    @property
    def valid(self) -> bool:
        """Whether the NIC owns this WQE (may execute it)."""
        return bool(self.flags & FLAG_VALID)

    @property
    def signaled(self) -> bool:
        """Whether completion should generate a CQE."""
        return bool(self.flags & FLAG_SIGNALED)

    @property
    def wait_threshold(self) -> int:
        """WAIT: total completions required on the target CQ."""
        return self.compare

    @property
    def wait_cqn(self) -> int:
        """WAIT: target completion queue number."""
        return self.swap

    @property
    def imm(self) -> int:
        """WRITE_IMM: the 32-bit immediate value."""
        return self.compare & 0xFFFFFFFF

    def pack(self) -> bytes:
        """Serialize to the 64-byte in-memory format."""
        return _STRUCT.pack(
            self.opcode,
            self.flags,
            0,
            self.length,
            self.local_addr,
            self.remote_addr,
            self.rkey,
            self.lkey,
            self.compare,
            self.swap,
            self.wr_id,
            0,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "Wqe":
        """Decode a 64-byte struct."""
        if len(data) != WQE_SIZE:
            raise ValueError(f"WQE must be {WQE_SIZE} bytes, got {len(data)}")
        (
            opcode,
            flags,
            _res0,
            length,
            local_addr,
            remote_addr,
            rkey,
            lkey,
            compare,
            swap,
            wr_id,
            _res1,
        ) = _STRUCT.unpack(data)
        return cls(
            opcode,
            flags,
            length,
            local_addr,
            remote_addr,
            rkey,
            lkey,
            compare,
            swap,
            wr_id,
        )

    def __repr__(self) -> str:
        name = Opcode.NAMES.get(self.opcode, f"op{self.opcode}")
        bits = "V" if self.valid else "-"
        bits += "S" if self.signaled else "-"
        return (
            f"<Wqe {name} [{bits}] len={self.length} "
            f"la={self.local_addr:#x} ra={self.remote_addr:#x} wr_id={self.wr_id}>"
        )


# Decode cache, keyed on the raw 64-byte slot contents. The NIC send
# engine re-reads ring slots at execution time (that is the property
# HyperLoop exploits), but between remote patches the bytes are
# unchanged lap after lap — chained groups re-execute the same
# pre-posted descriptors thousands of times. Caching the decode turns
# those laps into one dict hit. Entries are shared: callers must treat
# a cached ``Wqe`` as immutable (the NIC execute path only reads).
_DECODE_CACHE: dict = {}
_DECODE_CACHE_MAX = 4096


def decode_cached(data) -> Wqe:
    """Decode a 64-byte WQE, reusing a shared instance for repeated bytes.

    ``data`` may be ``bytes`` or a ``memoryview``. The returned object
    is cached and shared across calls with identical contents —
    **read-only** by contract. Driver-side code that constructs and
    mutates WQEs before posting must keep using :meth:`Wqe.unpack`.
    """
    key = bytes(data)
    wqe = _DECODE_CACHE.get(key)
    if TRACER.enabled:
        TRACER.count("nic.wqe_decode_hits" if wqe is not None else "nic.wqe_decode_misses")
    if wqe is None:
        if len(_DECODE_CACHE) >= _DECODE_CACHE_MAX:
            # Rings hold a few hundred distinct descriptors per run;
            # blowing past the cap means churn, so reset wholesale
            # rather than track LRU order on the hot path.
            _DECODE_CACHE.clear()
        wqe = Wqe.unpack(key)
        _DECODE_CACHE[key] = wqe
    return wqe


# Field byte offsets, used by HyperLoop's metadata construction to
# patch exactly the descriptor fields of a pre-posted WQE.
OFF_OPCODE = 0
OFF_FLAGS = 1
OFF_LENGTH = 4
OFF_LOCAL_ADDR = 8
OFF_REMOTE_ADDR = 16
OFF_COMPARE = 32
OFF_SWAP = 40


@dataclass(slots=True)
class Cqe:
    """A completion-queue entry."""

    wr_id: int
    opcode: int
    status: int = WC_SUCCESS
    qpn: int = 0
    byte_len: int = 0
    imm: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.status == WC_SUCCESS

    def __repr__(self) -> str:
        name = Opcode.NAMES.get(self.opcode, f"op{self.opcode}")
        state = "ok" if self.ok else f"err{self.status}"
        return f"<Cqe {name} wr_id={self.wr_id} {state} len={self.byte_len}>"
