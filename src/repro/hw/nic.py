"""RDMA NIC (RNIC) model with CORE-Direct-style WAIT chaining.

Faithfulness properties this model preserves (they are what the
paper's mechanism depends on, §4.1):

* **WQEs are bytes in host memory.** Each send/recv ring is a
  :class:`~repro.hw.memory.MemoryRegion` of 64-byte
  :class:`~repro.rdma.wqe.Wqe` structs. The engine re-reads a slot at
  execution time, *through the NIC cache*, so an RDMA WRITE that lands
  in a ring changes what the NIC executes — remote work-request
  manipulation is literal, not simulated by fiat.
* **Deferred ownership.** A WQE whose VALID flag is clear stalls the
  send queue until something (a doorbell, or remote bytes landing in
  the ring) makes it valid — the modified-driver behaviour of §4.1.
* **WAIT work requests.** A WAIT WQE blocks its queue until a target
  CQ has accumulated a threshold number of completions, then falls
  through with no wire traffic (CORE-Direct).
* **Volatile write cache.** Inbound WRITE payloads are ACKed from the
  NIC cache before reaching memory. A READ (any length, including the
  0-byte READ gFLUSH issues) drains the cache before responding, which
  is the paper's durability mechanism (§4.2, gFLUSH).
* **In-order RC semantics.** Per-QP, requests execute at the responder
  in posted order and completions are delivered in order.

The CPU is *not* involved anywhere in this module's data path: rings,
doorbells and CQs are manipulated by the driver (see
:mod:`repro.rdma.verbs`), and whether a CPU task is needed per message
is decided entirely by how the layers above use these pieces.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from .wqe import (
    Cqe,
    FLAG_SGL,
    Opcode,
    WC_REMOTE_ACCESS_ERROR,
    WC_RETRY_EXCEEDED,
    WC_SUCCESS,
    Wqe,
    WQE_SIZE,
    decode_cached,
)
from ..obs.trace import TRACER
from ..sim import Event, Simulator, Store
from .memory import MemoryRegion, MemorySystem, WriteCache
from .network import Fabric

__all__ = ["NicParams", "Rnic", "NicQp", "HwCq", "SGE_SIZE", "pack_sges", "AccessFlags"]


SGE_SIZE = 12  # packed (addr: u64, length: u32)


def pack_sges(entries: List[Tuple[int, int]]) -> bytes:
    """Pack a scatter/gather list for an SGL-mode WQE."""
    return b"".join(struct.pack("<QI", addr, length) for addr, length in entries)


def _unpack_sges(data: bytes, count: int) -> List[Tuple[int, int]]:
    out = []
    for i in range(count):
        addr, length = struct.unpack_from("<QI", data, i * SGE_SIZE)
        out.append((addr, length))
    return out


class AccessFlags:
    """Memory-registration permissions (subset of ibv_access_flags)."""

    LOCAL = 0x1
    REMOTE_WRITE = 0x2
    REMOTE_READ = 0x4
    REMOTE_ATOMIC = 0x8
    ALL_REMOTE = REMOTE_WRITE | REMOTE_READ | REMOTE_ATOMIC


@dataclass
class NicParams:
    """RNIC timing/behaviour constants (ConnectX-3-flavoured)."""

    gbps: float = 56.0
    wqe_process_ns: int = 150
    """Send-engine time to fetch, parse and launch one WQE."""
    rx_process_ns: int = 150
    """Receive path time to validate and steer one inbound message."""
    wait_fallthrough_ns: int = 100
    """Extra latency for a WAIT WQE whose condition is already met."""
    atomic_ns: int = 250
    """Additional responder time for an atomic (CAS) operation."""
    cache_capacity: int = 1 << 20
    """Volatile write-cache size in bytes."""
    cache_drain_ns: int = 20_000
    """Lazy-drain period: how long ACKed data may sit volatile."""
    qp_cache_entries: int = 256
    """On-NIC connection-state (ICM) cache: QP contexts resident on
    the adapter. Touching more QPs than fit thrashes the cache and
    every miss fetches context over PCIe — the RNIC scalability
    effect §7 cites ('the scalability of the RDMA NICs decreases with
    the number of active write-QPs')."""
    qp_cache_miss_ns: int = 800
    """Context fetch penalty per QP-cache miss."""
    retransmit_timeout_ns: int = 500_000
    """RC transport retry timer: how long an unacked request waits
    before being retransmitted. Armed only on a lossy fabric (a fault
    filter has been installed) — lossless runs never schedule it."""
    retransmit_limit: int = 64
    """Retries before the requester gives up and completes the WQE
    with ``WC_RETRY_EXCEEDED`` (ibv retry_cnt, scaled up: the
    simulator models partitions that heal)."""
    reply_cache_entries: int = 256
    """How many executed-request replies the responder keeps for
    duplicate re-ACKs (lossy fabrics only). Bounds responder memory;
    a retransmit of anything older is silently ignored — the
    requester would have retry-exceeded long before."""


@dataclass
class _WireMsg:
    """One RC transport message (request or response)."""

    kind: str  # send | write | write_imm | read | cas | ack | resp
    src_qpn: int
    dst_qpn: int
    seq: int = 0
    payload: bytes = b""
    addr: int = 0
    length: int = 0
    rkey: int = 0
    compare: int = 0
    swap: int = 0
    imm: Optional[int] = None
    status: int = WC_SUCCESS


@dataclass
class _Registration:
    """One rkey's scope and permissions."""

    rkey: int
    addr: int
    length: int
    access: int

    def covers(self, addr: int, length: int, needed: int) -> bool:
        in_range = self.addr <= addr and addr + length <= self.addr + self.length
        return in_range and (self.access & needed) == needed


class HwCq:
    """A hardware completion queue.

    Tracks the all-time number of CQEs pushed (``completions_total``),
    which is what WAIT WQEs compare their thresholds against, and
    offers both polling (:meth:`poll`) and an event channel
    (:meth:`next_event`) for software consumers.
    """

    def __init__(self, sim: Simulator, cqn: int, name: str = ""):
        self.sim = sim
        self.cqn = cqn
        self.name = name or f"cq{cqn}"
        self.entries: List[Cqe] = []
        self.completions_total = 0
        self.wait_consumed = 0  # completions consumed by hardware WAITs
        self._threshold_waiters: List[Tuple[int, Event]] = []
        self._channel_waiters: List[Event] = []
        self._channel_name = self.name + ".channel"

    def push(self, cqe: Cqe) -> None:
        """Deliver a completion; wakes threshold waiters and channel."""
        self.entries.append(cqe)
        self.completions_total += 1
        if self._threshold_waiters:
            still_waiting = []
            for threshold, event in self._threshold_waiters:
                if self.completions_total >= threshold:
                    event.succeed(self.completions_total)
                else:
                    still_waiting.append((threshold, event))
            self._threshold_waiters = still_waiting
        if self._channel_waiters:
            # Wake-then-poll: every waiter gets the pending-entry count
            # and races to poll(). Handing a CQE to more than one
            # waiter would double-deliver a completion the first
            # consumer may already have drained.
            waiters, self._channel_waiters = self._channel_waiters, []
            pending = len(self.entries)
            for event in waiters:
                event.succeed(pending)

    def poll(self, max_entries: int = 16) -> List[Cqe]:
        """Drain up to ``max_entries`` completions (non-blocking)."""
        taken, self.entries = self.entries[:max_entries], self.entries[max_entries:]
        return taken

    def next_event(self) -> Event:
        """Event firing at the next :meth:`push` (completion channel).

        Wake-then-poll semantics: the event's value is the number of
        entries pending at wake time, never a CQE — consumers must
        :meth:`poll` to claim completions, and with several concurrent
        waiters only the poll winner gets each CQE. If entries are
        already pending the event is pre-triggered.
        """
        event = Event(self.sim, self._channel_name)
        if self.entries:
            event.succeed(len(self.entries))
        else:
            self._channel_waiters.append(event)
        return event

    def invalidate_waiters(self) -> int:
        """Drop threshold waiters and void unfulfilled WAIT
        reservations (NIC crash: WAIT state is on-NIC volatile, so a
        pre-crash WAIT must not be satisfiable by post-restart
        completions against its stale reservation). Channel waiters
        are software-side and survive — the driver's ``next_event``
        legitimately wakes on post-restart completions. Returns the
        number of waiters dropped."""
        dropped = len(self._threshold_waiters)
        self._threshold_waiters.clear()
        if self.wait_consumed > self.completions_total:
            self.wait_consumed = self.completions_total
        return dropped

    def threshold_event(self, threshold: int) -> Event:
        """Event firing once ``completions_total >= threshold`` (WAIT)."""
        event = self.sim.event(name=f"{self.name}.threshold{threshold}")
        if self.completions_total >= threshold:
            event.succeed(self.completions_total)
        else:
            self._threshold_waiters.append((threshold, event))
        return event

    def __repr__(self) -> str:
        return f"<HwCq {self.name} total={self.completions_total} pending={len(self.entries)}>"


@dataclass
class _PendingSend:
    """A launched send-queue WQE awaiting ordered completion."""

    wqe: Wqe
    seq: int
    done: bool = False
    status: int = WC_SUCCESS
    resp_payload: bytes = b""
    # Retransmission state (consulted only on a lossy fabric).
    msg: Optional["_WireMsg"] = None
    nbytes: int = 0
    retries: int = 0


class NicQp:
    """Hardware state of one queue pair (RC).

    Send and receive rings are memory regions holding packed WQEs;
    ``*_producer``/``*_consumer`` are absolute (non-wrapping) indices.
    """

    def __init__(
        self,
        nic: "Rnic",
        qpn: int,
        send_ring: MemoryRegion,
        recv_ring: MemoryRegion,
        send_cq: HwCq,
        recv_cq: HwCq,
    ):
        self.nic = nic
        self.qpn = qpn
        self.send_ring = send_ring
        self.recv_ring = recv_ring
        self.send_slots = send_ring.length // WQE_SIZE
        self.recv_slots = recv_ring.length // WQE_SIZE
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.remote: Optional[Tuple[str, int]] = None  # (host, qpn)
        self.send_producer = 0
        self.send_consumer = 0
        self.recv_producer = 0
        self.recv_consumer = 0
        self.ingress: Store = Store(nic.sim, name=f"qp{qpn}.ingress")
        self._kick_event: Optional[Event] = None
        self._recv_kick_event: Optional[Event] = None
        # Kick events are re-created every engine lap; formatting their
        # names per lap shows up in profiles, so build them once.
        self._kick_name = f"qp{qpn}.kick"
        self._rkick_name = f"qp{qpn}.rkick"
        self._run_name = f"qp{qpn}.run"
        # Batched-run state (fast dispatch only): while a run of
        # consecutive ready non-WAIT WQEs drains, the tx engine
        # generator sleeps on ``_run_event`` and these fields carry the
        # WQE currently in flight between the chain callbacks.
        self._tx_proc = None
        self._run_event: Optional[Event] = None
        self._run_wqe: Optional[Wqe] = None
        self._run_from = 0
        self._next_seq = 0
        self._pending: List[_PendingSend] = []
        self._engine_started = False
        # RC transport reliability (exercised only on a lossy fabric):
        # requests must execute in posted order exactly once, so the
        # responder side tracks the next expected sequence number and
        # keeps recent replies for duplicate-request re-ACKs.
        self._rx_next_seq = 0
        self._reply_cache: "OrderedDict[int, Tuple[_WireMsg, int]]" = OrderedDict()

    # -- driver-facing ---------------------------------------------------------

    def connect(self, remote_host: str, remote_qpn: int) -> None:
        """Transition to RTS against a remote QP (or loopback)."""
        self.remote = (remote_host, remote_qpn)
        if not self._engine_started:
            self._engine_started = True
            self._tx_proc = self.nic.sim.spawn(
                self._send_engine(), name=f"{self.nic.name}/qp{self.qpn}/tx"
            )
            self.nic.sim.spawn(
                self._ingress_engine(), name=f"{self.nic.name}/qp{self.qpn}/rx"
            )

    def ring_send_doorbell(self, producer: int) -> None:
        """Tell the NIC the send ring now holds ``producer`` WQEs."""
        if producer < self.send_producer:
            raise ValueError("doorbell may not move backwards")
        self.send_producer = producer
        if TRACER.enabled:
            TRACER.record(
                self.nic.sim.now,
                "i",
                "nic",
                "doorbell.send",
                pid=self.nic.name,
                tid=f"qp{self.qpn}/tx",
                args={"producer": producer},
            )
            TRACER.count("nic.doorbells")
        self.kick()

    def ring_recv_doorbell(self, producer: int) -> None:
        """Tell the NIC the recv ring now holds ``producer`` WQEs."""
        if producer < self.recv_producer:
            raise ValueError("doorbell may not move backwards")
        self.recv_producer = producer
        if TRACER.enabled:
            TRACER.record(
                self.nic.sim.now,
                "i",
                "nic",
                "doorbell.recv",
                pid=self.nic.name,
                tid=f"qp{self.qpn}/rx",
                args={"producer": producer},
            )
            TRACER.count("nic.doorbells")
        if self._recv_kick_event is not None and not self._recv_kick_event.triggered:
            self._recv_kick_event.succeed()

    def kick(self) -> None:
        """Wake the send engine to (re-)examine the ring."""
        if self._kick_event is not None and not self._kick_event.triggered:
            self._kick_event.succeed()

    # -- engine helpers ----------------------------------------------------------

    def _await_kick(self) -> Event:
        if self._kick_event is None or self._kick_event.triggered:
            self._kick_event = Event(self.nic.sim, self._kick_name)
        return self._kick_event

    def _await_recv_kick(self) -> Event:
        if self._recv_kick_event is None or self._recv_kick_event.triggered:
            self._recv_kick_event = Event(self.nic.sim, self._rkick_name)
        return self._recv_kick_event

    def _read_send_wqe(self, index: int) -> Wqe:
        # Hot path: the send engine re-reads the slot every lap while
        # polling for VALID, and chained groups re-execute unchanged
        # descriptors constantly. ``decode_cached`` turns repeat bytes
        # into a dict hit; the returned Wqe is shared and read-only.
        offset = (index % self.send_slots) * WQE_SIZE
        raw = self.nic.cache.read_view(self.send_ring.addr + offset, WQE_SIZE)
        return decode_cached(raw)

    def _read_recv_wqe(self, index: int) -> Wqe:
        offset = (index % self.recv_slots) * WQE_SIZE
        raw = self.nic.cache.read_view(self.recv_ring.addr + offset, WQE_SIZE)
        return decode_cached(raw)

    def _gather(self, wqe: Wqe) -> bytes:
        """Collect a send/write payload, honouring SGL mode."""
        if wqe.flags & FLAG_SGL:
            table = self.nic.cache.read(wqe.local_addr, wqe.length * SGE_SIZE)
            parts = [
                self.nic.cache.read(addr, length)
                for addr, length in _unpack_sges(table, wqe.length)
            ]
            return b"".join(parts)
        return self.nic.cache.read(wqe.local_addr, wqe.length)

    def _scatter(self, wqe: Wqe, payload: bytes) -> None:
        """Place an inbound payload per a recv WQE, honouring SGL mode."""
        if wqe.flags & FLAG_SGL:
            table = self.nic.cache.read(wqe.local_addr, wqe.length * SGE_SIZE)
            cursor = 0
            for addr, length in _unpack_sges(table, wqe.length):
                chunk = payload[cursor : cursor + length]
                if not chunk:
                    break
                self.nic.dma_write(addr, chunk)
                cursor += len(chunk)
        else:
            self.nic.dma_write(wqe.local_addr, payload[: wqe.length])

    # -- send engine --------------------------------------------------------------

    def _send_engine(self) -> Generator:
        sim = self.nic.sim
        params = self.nic.params
        while True:
            if self.nic.halted:
                yield self.nic.halt_event()
                continue
            if self.send_consumer >= self.send_producer:
                yield self._await_kick()
                continue
            wqe = self._read_send_wqe(self.send_consumer)
            if not wqe.valid:
                # Deferred ownership: stall until the ring changes
                # (doorbell, or remote bytes landing in the ring).
                yield self._await_kick()
                continue
            if wqe.opcode == Opcode.WAIT:
                # Consuming semantics (CORE-Direct): the WAIT absorbs
                # ``threshold`` completions from the target CQ, so
                # pre-posted rounds are lap-invariant and rings can be
                # re-armed with a doorbell alone.
                cq = self.nic.cqs[wqe.wait_cqn]
                need = max(wqe.wait_threshold, 1)
                # Reserve the completions *now*: concurrent WAITs on a
                # shared CQ must each claim distinct completions, so
                # the consumed counter advances at arrival, not at
                # trigger time.
                target = cq.wait_consumed + need
                cq.wait_consumed = target
                wait_from = sim.now
                if cq.completions_total < target:
                    yield cq.threshold_event(target)
                yield sim.timeout(params.wait_fallthrough_ns)
                if TRACER.enabled:
                    TRACER.record(
                        wait_from,
                        "X",
                        "nic",
                        "WAIT",
                        pid=self.nic.name,
                        tid=f"qp{self.qpn}/tx",
                        dur=sim.now - wait_from,
                        args={"wr_id": wqe.wr_id, "threshold": target},
                    )
                    TRACER.count("nic.wait_triggers")
                self.send_consumer += 1
                continue
            if sim._fast_dispatch:
                # Batched run: drain this and every consecutive ready
                # non-WAIT WQE behind it in one engine wakeup. The
                # chain callbacks (_exec_fire/_exec_complete) mirror
                # the claimed-timeout hops of the per-WQE path below
                # push for push, so execution/launch times, context
                # penalties, and trace records are identical — the
                # generator just isn't resumed per WQE. It wakes here
                # again at the first boundary (empty ring, invalid
                # slot, WAIT, or halt) and re-evaluates the loop head
                # at exactly the time the per-WQE path would.
                yield self._start_run(wqe)
                continue
            exec_from = sim.now
            yield sim.timeout(
                params.wqe_process_ns + self.nic.qp_context_penalty(self.qpn)
            )
            self._launch(wqe)
            if TRACER.enabled:
                TRACER.record(
                    exec_from,
                    "X",
                    "nic",
                    Opcode.NAMES.get(wqe.opcode, f"op{wqe.opcode}"),
                    pid=self.nic.name,
                    tid=f"qp{self.qpn}/tx",
                    dur=sim.now - exec_from,
                    args={"wr_id": wqe.wr_id, "len": wqe.length},
                )
                TRACER.count("nic.wqe_executed")
            self.send_consumer += 1

    # -- batched send run (fast dispatch) -----------------------------------------

    def _start_run(self, wqe: Wqe) -> Event:
        """Begin a batched run with ``wqe``; returns the engine's sleep
        event. Mirrors ``yield sim.timeout(process + penalty)``: the
        processing-complete trigger is scheduled *now*, penalty
        assessed at the same instant the per-WQE path would."""
        sim = self.nic.sim
        event = Event(sim, self._run_name)
        self._run_event = event
        self._run_wqe = wqe
        self._run_from = sim.now
        delay = self.nic.params.wqe_process_ns + self.nic.qp_context_penalty(self.qpn)
        sim._push(sim.now + delay, self._exec_fire, ())
        return event

    def _exec_fire(self) -> None:
        """Processing-time elapsed for the WQE in flight.

        Mirrors the claimed Timeout._fire: verify the engine is still
        parked on this run (an interrupt abandons it, exactly like an
        unclaimed fire), then hop through the queue so the launch runs
        in the slot the per-WQE path's resume would occupy."""
        proc = self._tx_proc
        event = self._run_event
        if event is None or proc._waiting_on is not event:
            self._run_event = None
            self._run_wqe = None
            return
        self.nic.sim._push(self.nic.sim.now, self._exec_complete, ())

    def _exec_complete(self) -> None:
        """Launch the in-flight WQE and extend or end the run.

        This body is the per-WQE path's resume slot: launch, trace,
        consumer advance, then the loop-head checks — all in one
        dispatch, in the same order the generator performs them. A
        ready non-WAIT successor chains the next _exec_fire without
        waking the generator; any boundary resumes it synchronously so
        the WAIT/halt/kick handling runs at the identical point."""
        sim = self.nic.sim
        wqe = self._run_wqe
        self._run_wqe = None
        self._launch(wqe)
        if TRACER.enabled:
            TRACER.record(
                self._run_from,
                "X",
                "nic",
                Opcode.NAMES.get(wqe.opcode, f"op{wqe.opcode}"),
                pid=self.nic.name,
                tid=f"qp{self.qpn}/tx",
                dur=sim.now - self._run_from,
                args={"wr_id": wqe.wr_id, "len": wqe.length},
            )
            TRACER.count("nic.wqe_executed")
        self.send_consumer += 1
        # Loop-head checks, in the generator's order.
        if not self.nic.halted and self.send_consumer < self.send_producer:
            nxt = self._read_send_wqe(self.send_consumer)
            if nxt.valid and nxt.opcode != Opcode.WAIT:
                self._run_wqe = nxt
                self._run_from = sim.now
                delay = self.nic.params.wqe_process_ns + self.nic.qp_context_penalty(
                    self.qpn
                )
                sim._push(sim.now + delay, self._exec_fire, ())
                return
        # Boundary: wake the engine generator in this same dispatch so
        # it re-runs its loop head (halt gate, kick wait, WAIT branch)
        # exactly where the per-WQE path would.
        proc = self._tx_proc
        event = self._run_event
        self._run_event = None
        if proc._waiting_on is event:
            proc._waiting_on = None
            proc._resume(None, None)

    def _launch(self, wqe: Wqe) -> None:
        """Transmit one non-WAIT WQE; completion arrives later in order."""
        pending = _PendingSend(wqe=wqe, seq=-1)
        self._pending.append(pending)
        if wqe.opcode == Opcode.NOP:
            # Never touches the wire: no sequence number, or the
            # responder's in-order check would see a gap.
            pending.done = True
            self._drain_pending()
            return
        seq = self._next_seq
        self._next_seq += 1
        pending.seq = seq
        remote_host, remote_qpn = self.remote
        if wqe.opcode == Opcode.SEND:
            payload = self._gather(wqe)
            msg = _WireMsg("send", self.qpn, remote_qpn, seq, payload=payload)
            nbytes = len(payload)
        elif wqe.opcode in (Opcode.WRITE, Opcode.WRITE_IMM):
            payload = self._gather(wqe)
            kind = "write_imm" if wqe.opcode == Opcode.WRITE_IMM else "write"
            msg = _WireMsg(
                kind,
                self.qpn,
                remote_qpn,
                seq,
                payload=payload,
                addr=wqe.remote_addr,
                rkey=wqe.rkey,
                imm=wqe.imm if wqe.opcode == Opcode.WRITE_IMM else None,
            )
            nbytes = len(payload)
        elif wqe.opcode == Opcode.READ:
            msg = _WireMsg(
                "read",
                self.qpn,
                remote_qpn,
                seq,
                addr=wqe.remote_addr,
                length=wqe.length,
                rkey=wqe.rkey,
            )
            nbytes = 0
        elif wqe.opcode == Opcode.CAS:
            msg = _WireMsg(
                "cas",
                self.qpn,
                remote_qpn,
                seq,
                addr=wqe.remote_addr,
                rkey=wqe.rkey,
                compare=wqe.compare,
                swap=wqe.swap,
            )
            nbytes = 8
        else:
            raise ValueError(f"send engine cannot execute {wqe!r}")
        if self.nic.fabric.lossy:
            pending.msg = msg
            pending.nbytes = nbytes
            self.nic.sim.call_in(
                self.nic.params.retransmit_timeout_ns, self._retransmit_check, seq
            )
        self.nic.transmit(remote_host, msg, nbytes)

    def _retransmit_check(self, seq: int) -> None:
        """RC retry timer: re-send an unacked request or give up."""
        pending = None
        for candidate in self._pending:
            if candidate.seq == seq:
                pending = candidate
                break
        if pending is None or pending.done:
            return
        nic = self.nic
        if nic.halted:
            # A stalled/crashed NIC retransmits nothing; re-check after
            # another period so a resumed NIC picks the retry back up.
            nic.sim.call_in(nic.params.retransmit_timeout_ns, self._retransmit_check, seq)
            return
        if pending.retries >= nic.params.retransmit_limit:
            pending.done = True
            pending.status = WC_RETRY_EXCEEDED
            if TRACER.enabled:
                TRACER.count("nic.retry_exceeded")
            self._drain_pending()
            return
        pending.retries += 1
        if TRACER.enabled:
            TRACER.record(
                nic.sim.now,
                "i",
                "fault",
                "retransmit",
                pid=nic.name,
                tid=f"qp{self.qpn}/tx",
                args={"seq": seq, "retry": pending.retries},
            )
            TRACER.count("nic.retransmits")
        nic.sim.call_in(nic.params.retransmit_timeout_ns, self._retransmit_check, seq)
        nic.transmit(self.remote[0], pending.msg, pending.nbytes)

    def _on_response(self, msg: _WireMsg) -> None:
        """ACK/READ-response/CAS-response arrived for seq ``msg.seq``."""
        for pending in self._pending:
            if pending.seq == msg.seq:
                pending.done = True
                pending.status = msg.status
                pending.resp_payload = msg.payload
                break
        self._drain_pending()

    def _drain_pending(self) -> None:
        """Complete send WQEs strictly in order."""
        while self._pending and self._pending[0].done:
            pending = self._pending.pop(0)
            wqe = pending.wqe
            if wqe.opcode == Opcode.READ and pending.status == WC_SUCCESS:
                if pending.resp_payload:
                    self.nic.dma_write(wqe.local_addr, pending.resp_payload)
            elif wqe.opcode == Opcode.CAS and pending.status == WC_SUCCESS:
                self.nic.dma_write(wqe.local_addr, pending.resp_payload)
            if wqe.signaled or pending.status != WC_SUCCESS:
                self.send_cq.push(
                    Cqe(
                        wr_id=wqe.wr_id,
                        opcode=wqe.opcode,
                        status=pending.status,
                        qpn=self.qpn,
                        byte_len=wqe.length,
                    )
                )

    # -- ingress engine --------------------------------------------------------------

    def _ingress_engine(self) -> Generator:
        sim = self.nic.sim
        params = self.nic.params
        while True:
            # Same-arrival coalescing: when deliveries are already
            # queued (a batch of same-timestamp arrivals), take the
            # head without allocating a get-event and park for one
            # queue hop instead — the hop resumes at the exact slot a
            # pre-triggered get() would, so interleaving with other
            # same-time work is unchanged.
            msg: Optional[_WireMsg] = self.ingress.try_get()
            if msg is None:
                msg = yield self.ingress.get()
            else:
                yield sim.hop()
            if self.nic.halted:
                # Stalled NIC: hold the message until resume (crashed
                # NICs never enqueue — _on_wire drops at the port).
                yield self.nic.halt_event()
            if msg.kind in ("ack", "resp"):
                self._on_response(msg)
                continue
            if msg.seq != self._rx_next_seq:
                # RC in-order exactly-once execution. A replayed seq is
                # a retransmit of an executed request whose reply was
                # lost: re-send the cached reply without re-executing.
                # A future seq is a gap the requester will retransmit
                # into (go-back-N); drop it silently.
                if msg.seq < self._rx_next_seq:
                    cached = self._reply_cache.get(msg.seq)
                    if cached is not None:
                        self.nic.transmit(self.remote[0], cached[0], cached[1])
                    if TRACER.enabled:
                        TRACER.count("nic.rx_duplicates")
                elif TRACER.enabled:
                    TRACER.count("nic.rx_out_of_order")
                continue
            self._rx_next_seq += 1
            rx_from = sim.now
            yield sim.timeout(
                params.rx_process_ns + self.nic.qp_context_penalty(self.qpn)
            )
            if TRACER.enabled:
                TRACER.record(
                    rx_from,
                    "X",
                    "nic",
                    f"rx.{msg.kind}",
                    pid=self.nic.name,
                    tid=f"qp{self.qpn}/rx",
                    dur=sim.now - rx_from,
                    args={"len": len(msg.payload)},
                )
                TRACER.count("nic.rx_messages")
            if msg.kind == "write":
                self._rx_write(msg, imm=False)
            elif msg.kind == "write_imm":
                yield from self._rx_write_imm(msg)
            elif msg.kind == "send":
                yield from self._rx_send(msg)
            elif msg.kind == "read":
                yield sim.timeout(0 if msg.length == 0 else msg.length // 64)
                self._rx_read(msg)
            elif msg.kind == "cas":
                yield sim.timeout(params.atomic_ns)
                self._rx_cas(msg)
            else:
                raise ValueError(f"unknown wire message kind {msg.kind!r}")

    def _reply(self, msg: _WireMsg, reply: _WireMsg, nbytes: int) -> None:
        remote_host, _ = self.remote
        if self.nic.fabric.lossy:
            cache = self._reply_cache
            cache[msg.seq] = (reply, nbytes)
            while len(cache) > self.nic.params.reply_cache_entries:
                cache.popitem(last=False)
        self.nic.transmit(remote_host, reply, nbytes)

    def _rx_write(self, msg: _WireMsg, imm: bool) -> bool:
        ok = self.nic.check_remote(msg.rkey, msg.addr, len(msg.payload), AccessFlags.REMOTE_WRITE)
        if ok:
            self.nic.dma_write(msg.addr, msg.payload)
        status = WC_SUCCESS if ok else WC_REMOTE_ACCESS_ERROR
        if not imm:
            self._reply(msg, _WireMsg("ack", self.qpn, msg.src_qpn, msg.seq, status=status), 0)
        return ok

    def _rx_write_imm(self, msg: _WireMsg) -> Generator:
        ok = self._rx_write(msg, imm=True)
        wqe = yield from self._consume_recv_wqe()
        self.recv_cq.push(
            Cqe(
                wr_id=wqe.wr_id,
                opcode=Opcode.WRITE_IMM,
                status=WC_SUCCESS if ok else WC_REMOTE_ACCESS_ERROR,
                qpn=self.qpn,
                byte_len=len(msg.payload),
                imm=msg.imm,
            )
        )
        self._reply(
            msg,
            _WireMsg(
                "ack",
                self.qpn,
                msg.src_qpn,
                msg.seq,
                status=WC_SUCCESS if ok else WC_REMOTE_ACCESS_ERROR,
            ),
            0,
        )

    def _rx_send(self, msg: _WireMsg) -> Generator:
        wqe = yield from self._consume_recv_wqe()
        self._scatter(wqe, msg.payload)
        self.recv_cq.push(
            Cqe(
                wr_id=wqe.wr_id,
                opcode=Opcode.SEND,
                status=WC_SUCCESS,
                qpn=self.qpn,
                byte_len=len(msg.payload),
            )
        )
        self._reply(msg, _WireMsg("ack", self.qpn, msg.src_qpn, msg.seq), 0)

    def _consume_recv_wqe(self) -> Generator:
        while self.recv_consumer >= self.recv_producer:
            yield self._await_recv_kick()
        wqe = self._read_recv_wqe(self.recv_consumer)
        self.recv_consumer += 1
        return wqe

    def _rx_read(self, msg: _WireMsg) -> None:
        ok = self.nic.check_remote(msg.rkey, msg.addr, msg.length, AccessFlags.REMOTE_READ)
        if not ok:
            self._reply(
                msg,
                _WireMsg("resp", self.qpn, msg.src_qpn, msg.seq, status=WC_REMOTE_ACCESS_ERROR),
                0,
            )
            return
        # The durability mechanism (§4.2): a READ — including the
        # 0-byte READ issued by gFLUSH — drains the volatile cache
        # before the response, so the requester's completion implies
        # all prior WRITEs on this NIC have reached the memory
        # (persistence) domain.
        self.nic.cache.flush_all()
        data = self.nic.memory.read(msg.addr, msg.length)
        self._reply(
            msg, _WireMsg("resp", self.qpn, msg.src_qpn, msg.seq, payload=data), msg.length
        )

    def _rx_cas(self, msg: _WireMsg) -> None:
        ok = self.nic.check_remote(msg.rkey, msg.addr, 8, AccessFlags.REMOTE_ATOMIC)
        if not ok:
            self._reply(
                msg,
                _WireMsg("resp", self.qpn, msg.src_qpn, msg.seq, status=WC_REMOTE_ACCESS_ERROR),
                0,
            )
            return
        self.nic.cache.flush_range(msg.addr, 8)
        original = self.nic.memory.read(msg.addr, 8)
        if original == msg.compare.to_bytes(8, "little"):
            self.nic.memory.write(msg.addr, msg.swap.to_bytes(8, "little"))
        self._reply(
            msg, _WireMsg("resp", self.qpn, msg.src_qpn, msg.seq, payload=original), 8
        )

    def __repr__(self) -> str:
        return (
            f"<NicQp {self.nic.name}/qp{self.qpn} "
            f"tx={self.send_consumer}/{self.send_producer} "
            f"rx={self.recv_consumer}/{self.recv_producer}>"
        )


class Rnic:
    """One host's RDMA NIC: QPs, CQs, rkey table, cache, wire hookup."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        memory: MemorySystem,
        fabric: Fabric,
        params: Optional[NicParams] = None,
    ):
        self.sim = sim
        self.name = name
        self.memory = memory
        self.params = params or NicParams()
        self.cache = WriteCache(memory, capacity=self.params.cache_capacity)
        self.port = fabric.attach(name, gbps=self.params.gbps)
        self.port.receive = self._on_wire
        self.fabric = fabric
        self.qps: Dict[int, NicQp] = {}
        self.cqs: Dict[int, HwCq] = {}
        self._next_qpn = 1
        self._next_cqn = 1
        self._next_rkey = 0x1000
        self._registrations: Dict[int, _Registration] = {}
        self._watched_rings: List[Tuple[int, int, NicQp]] = []
        self._drain_scheduled = False
        self._hot_qps: "OrderedDict[int, None]" = OrderedDict()
        self.qp_cache_misses = 0
        # Fault state: ``halted`` pauses the engines (stall or crash),
        # ``crashed`` additionally drops inbound wire traffic and marks
        # volatile state lost. Engines check ``halted`` once per lap.
        self.halted = False
        self.crashed = False
        self._resume_event: Optional[Event] = None
        self._halt_name = name + ".halt"
        self.rx_dropped_while_crashed = 0

    # -- object creation -----------------------------------------------------------

    def create_cq(self, name: str = "") -> HwCq:
        cq = HwCq(self.sim, self._next_cqn, name=name or f"{self.name}.cq{self._next_cqn}")
        self.cqs[cq.cqn] = cq
        self._next_cqn += 1
        return cq

    def create_qp(
        self,
        send_ring: MemoryRegion,
        recv_ring: MemoryRegion,
        send_cq: HwCq,
        recv_cq: HwCq,
    ) -> NicQp:
        qp = NicQp(self, self._next_qpn, send_ring, recv_ring, send_cq, recv_cq)
        self.qps[qp.qpn] = qp
        self._next_qpn += 1
        return qp

    def register(self, addr: int, length: int, access: int) -> _Registration:
        """Register a memory range; returns the registration (rkey)."""
        self.memory._check(addr, length)
        reg = _Registration(self._next_rkey, addr, length, access)
        self._registrations[reg.rkey] = reg
        self._next_rkey += 1
        return reg

    def deregister(self, rkey: int) -> None:
        self._registrations.pop(rkey, None)

    def watch_ring(self, qp: NicQp, which: str = "send") -> None:
        """Kick ``qp``'s engine when DMA lands in its ring (HyperLoop).

        This models the NIC re-fetching descriptors: once remote bytes
        change a pre-posted WQE, the stalled engine re-examines it.
        """
        ring = qp.send_ring if which == "send" else qp.recv_ring
        self._watched_rings.append((ring.addr, ring.end, qp))

    # -- data movement ----------------------------------------------------------------

    def check_remote(self, rkey: int, addr: int, length: int, needed: int) -> bool:
        """Validate an inbound remote access against the rkey table."""
        reg = self._registrations.get(rkey)
        return reg is not None and reg.covers(addr, length, needed)

    def qp_context_penalty(self, qpn: int) -> int:
        """Nanoseconds of extra processing for touching ``qpn``.

        Zero when the QP context is resident in the on-NIC cache;
        a PCIe context fetch otherwise (LRU model).
        """
        if qpn in self._hot_qps:
            self._hot_qps.move_to_end(qpn)
            if TRACER.enabled:
                TRACER.count("nic.qp_cache_hits")
            return 0
        self.qp_cache_misses += 1
        if TRACER.enabled:
            TRACER.count("nic.qp_cache_misses")
        self._hot_qps[qpn] = None
        if len(self._hot_qps) > self.params.qp_cache_entries:
            self._hot_qps.popitem(last=False)
        return self.params.qp_cache_miss_ns

    def dma_write(self, addr: int, data: bytes) -> None:
        """NIC-initiated write: lands in the volatile cache first."""
        if not data:
            return
        self.cache.write(addr, data)
        self._schedule_drain()
        end = addr + len(data)
        for ring_start, ring_end, qp in self._watched_rings:
            if addr < ring_end and ring_start < end:
                qp.kick()

    def host_write(self, addr: int, data: bytes) -> None:
        """CPU store to a region the NIC may also be caching.

        Drains overlapping cached entries first so the engine's
        cache-overlaid reads cannot resurrect stale bytes over a newer
        CPU write (the driver re-posting rings uses this).
        """
        self.cache.flush_range(addr, len(data))
        self.memory.write(addr, data)

    def _schedule_drain(self) -> None:
        if self._drain_scheduled:
            return
        self._drain_scheduled = True
        self.sim.call_in(self.params.cache_drain_ns, self._lazy_drain)

    def _lazy_drain(self) -> None:
        self._drain_scheduled = False
        # A READ-triggered flush_all (or host_write flush) may already
        # have drained everything; skip the redundant walk then.
        if self.cache.dirty:
            self.cache.flush_all()

    def transmit(self, remote_host: str, msg: _WireMsg, nbytes: int) -> None:
        """Hand a message to the fabric (loopback stays on-NIC)."""
        self.fabric.send(self.name, remote_host, msg, nbytes)

    def _on_wire(self, src: str, msg: _WireMsg) -> None:
        if self.crashed:
            # A crashed NIC is dark: inbound traffic disappears. The
            # sender's retransmission (or failure detection above it)
            # deals with the silence.
            self.rx_dropped_while_crashed += 1
            if TRACER.enabled:
                TRACER.count("nic.rx_dropped_crashed")
            return
        qp = self.qps.get(msg.dst_qpn)
        if qp is None:
            raise RuntimeError(f"{self.name}: message for unknown QP {msg.dst_qpn}")
        qp.ingress.put(msg)

    # -- failure injection ---------------------------------------------------------------

    def halt_event(self) -> Event:
        """Event firing at the next :meth:`resume` (engine halt gate)."""
        if self._resume_event is None or self._resume_event.triggered:
            self._resume_event = Event(self.sim, self._halt_name)
        return self._resume_event

    def stall(self) -> None:
        """Pause both engines without losing state (firmware hiccup).

        Inbound messages queue in the per-QP ingress stores and WQE
        rings keep their contents; :meth:`resume` continues exactly
        where the NIC stopped.
        """
        self.halted = True
        if TRACER.enabled:
            TRACER.record(self.sim.now, "i", "fault", "nic.stall", pid=self.name)
            TRACER.count("fault.nic.stalls")

    def resume(self) -> None:
        """Resume a stalled NIC; a no-op unless halted."""
        if not self.halted:
            return
        self.halted = False
        self.crashed = False
        if TRACER.enabled:
            TRACER.record(self.sim.now, "i", "fault", "nic.resume", pid=self.name)
            TRACER.count("fault.nic.resumes")
        if self._resume_event is not None and not self._resume_event.triggered:
            self._resume_event.succeed()
        for qp in self.qps.values():
            qp.kick()

    def crash(self) -> int:
        """Crash the NIC: engines halt, all volatile state is lost.

        Drops the volatile write cache (un-flushed inbound WRITEs
        revert to their last durable bytes), the on-NIC QP context
        cache, every queued-but-unprocessed inbound message, and all
        requester-side in-flight request state. Inbound wire traffic
        is discarded until :meth:`restart`. Returns the number of
        write-cache entries lost.
        """
        self.halted = True
        self.crashed = True
        lost = self.cache.drop()
        self._hot_qps.clear()
        for qp in self.qps.values():
            qp.ingress.clear()
            qp._pending.clear()
            qp._reply_cache.clear()
        # WAIT WQE state is on-NIC and volatile: armed threshold
        # waiters die with the crash and their unfulfilled
        # reservations are voided, or post-restart completions could
        # satisfy a pre-crash WAIT against a stale wait_consumed
        # claim. (stall() deliberately keeps them: state survives a
        # firmware hiccup.)
        for cq in self.cqs.values():
            cq.invalidate_waiters()
        if TRACER.enabled:
            TRACER.record(
                self.sim.now, "i", "fault", "nic.crash", pid=self.name,
                args={"cache_entries_lost": lost},
            )
            TRACER.count("fault.nic.crashes")
        return lost

    def restart(self) -> None:
        """Bring a crashed NIC back up (see :meth:`Host.restart`).

        Volatile state is already gone; rings live in host memory, so
        what the engines see next is whatever survived there. QP
        connection state is host-driver state in this model and is
        retained; real deployments rebuild QPs, which maps to building
        a fresh group over the restarted host.
        """
        self.resume()

    def power_failure(self) -> int:
        """Drop the volatile cache (with the host losing power).

        Returns the number of cache entries lost. The caller is
        responsible for also failing the host's memory/OS state.
        """
        return self.cache.drop()

    def __repr__(self) -> str:
        return f"<Rnic {self.name} qps={len(self.qps)}>"
