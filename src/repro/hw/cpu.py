"""Multi-core CPU and OS scheduler model.

The paper's motivation (§2.2) is that replica *software* must be
scheduled onto a busy CPU before it can make progress, and in
multi-tenant servers that scheduling delay — not the network — is what
inflates tail latency. This module models that delay structurally
rather than sampling it from a fitted distribution.

Model (a deliberately small abstraction of CFS on a server kernel):

* Each :class:`Core` runs one task at a time. Switching tasks costs
  ``context_switch_ns`` and is counted (Figure 2 reports context-switch
  counts).
* Tasks are either **interactive** (recently slept — e.g. a replica
  daemon that just received a message) or **batch** (CPU-bound — e.g.
  stress tenants and busy-polling threads, which never sleep).
* A waking task goes to an idle core immediately. If every permitted
  core is busy, it queues; an interactive task preempts a batch task,
  but only at the core's next **tick** (dispatch granularity —
  on a real server kernel a CPU-bound task keeps running until the
  next scheduler tick even though ``need_resched`` is set). This tick
  deferral is the primary source of wakeup latency.
* A task that stays on-CPU for more than ``interactive_credit_ns``
  without sleeping is demoted to batch: busy-pollers cannot hold
  interactive priority.
* Batch tasks round-robin with a slice of
  ``clamp(sched_latency / runnable, min_granularity, sched_latency)``.

Task bodies are generator functions; CPU consumption is explicit::

    def daemon(task):
        while True:
            message = yield from task.wait(inbox.get())
            yield from task.compute(2 * US)   # scheduled, preemptible
            ...

``wait`` returning implies the task has been *dispatched again*, so
every wakeup pays the real scheduling delay of the moment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Deque, Generator, List, Optional

from collections import deque

from ..obs.trace import TRACER
from ..sim import Event, Simulator, US, MS

__all__ = ["SchedParams", "OperatingSystem", "Task", "Core"]


NEW = "new"
READY = "ready"
RUNNING = "running"
BLOCKED = "blocked"
DONE = "done"


@dataclass
class SchedParams:
    """Tunable scheduler constants (defaults approximate a Linux server).

    Attributes
    ----------
    context_switch_ns:
        Direct + indirect cost of switching a core between tasks.
    tick_ns:
        Dispatch granularity: a woken interactive task preempts a
        running batch task only at the next tick boundary.
    sched_latency_ns / min_granularity_ns:
        Batch round-robin slice is ``sched_latency / runnable`` clamped
        to ``[min_granularity, sched_latency]``.
    interactive_credit_ns:
        On-CPU time a task may accumulate since its last sleep before
        being demoted to batch priority.
    wakeup_fast_prob / wakeup_fast_ns:
        A wakeup onto a busy core usually preempts quickly —
        exponential with mean ``wakeup_fast_ns`` — modelling kernel
        exits, idle-balancer pulls and involuntary switch points; with
        probability ``1 - wakeup_fast_prob`` none of those arrive and
        the wakeup waits for the scheduler tick (``tick_ns``; 4 ms
        matches the HZ=250 server kernels of the paper's testbed).
        This two-regime behaviour is what gives CPU-driven replication
        its characteristic usually-fast / occasionally-awful tail.
    """

    context_switch_ns: int = 5 * US
    tick_ns: int = 4 * MS
    sched_latency_ns: int = 12 * MS
    min_granularity_ns: int = 3 * MS
    interactive_credit_ns: int = 2 * MS
    wakeup_fast_prob: float = 0.95
    wakeup_fast_ns: int = 60 * US


class Core:
    """One hardware thread: current task, queues, and accounting."""

    def __init__(self, os_: "OperatingSystem", index: int):
        self.os = os_
        self.index = index
        self.current: Optional[Task] = None
        self.last_task: Optional[Task] = None
        self.interactive_queue: Deque[Task] = deque()
        self.batch_queue: Deque[Task] = deque()
        self.busy_ns = 0
        self.context_switches = 0
        self.enabled = True
        self._grant_started: Optional[int] = None

    @property
    def busy_ns_live(self) -> int:
        """Busy time including the currently-running grant."""
        if self._grant_started is None:
            return self.busy_ns
        return self.busy_ns + (self.os.sim.now - self._grant_started)

    @property
    def runnable(self) -> int:
        """Tasks running or waiting on this core."""
        waiting = len(self.interactive_queue) + len(self.batch_queue)
        return waiting + (1 if self.current is not None else 0)

    @property
    def idle(self) -> bool:
        return self.current is None

    def __repr__(self) -> str:
        return f"<Core {self.index} current={self.current} q={self.runnable}>"


class Task:
    """A schedulable thread of execution.

    Created via :meth:`OperatingSystem.spawn`. The body generator
    receives the task and drives CPU use through :meth:`compute`,
    :meth:`wait` and :meth:`sleep` (all ``yield from``-able).
    """

    def __init__(
        self,
        os_: "OperatingSystem",
        name: str,
        pinned_core: Optional[int],
    ):
        self.os = os_
        self.sim = os_.sim
        self.name = name
        self.pinned_core = pinned_core
        self.state = NEW
        self.interactive = True
        self.credit = os_.params.interactive_credit_ns
        self.core: Optional[Core] = None
        self.last_core: Optional[Core] = None
        self.cpu_ns = 0
        self.wakeups = 0
        self.slice_left = 0  # remaining quantum for this dispatch
        self._dispatch_event: Optional[Event] = None
        self._preempt_event: Optional[Event] = None
        # Built once: compute()/poll_wait() allocate one preempt event
        # per grant and dispatch events per block, so per-call name
        # formatting is measurable on scheduler-heavy runs.
        self._preempt_name = name + ".preempt"
        self._dispatch_name = name + ".dispatch"
        self.process = None  # set by OperatingSystem.spawn

    # -- public generator API (use with ``yield from``) ---------------------

    def compute(self, ns: int) -> Generator:
        """Consume ``ns`` of CPU time, paying all scheduling delays."""
        if ns < 0:
            raise ValueError(f"negative compute time: {ns}")
        remaining = int(ns)
        while remaining > 0:
            if self.state != RUNNING:
                yield from self._await_dispatch()
            grant = self.os._grant(self, remaining)
            self._preempt_event = Event(self.sim, self._preempt_name)
            started = self.sim.now
            if self.core is not None:
                self.core._grant_started = started
            timeout = self.sim.timeout(grant)
            yield self.sim.any_of([timeout, self._preempt_event])
            ran = self.sim.now - started
            preempted = self._preempt_event.triggered
            self._preempt_event = None
            if self.core is not None:
                self.core._grant_started = None
            self._account(ran)
            remaining -= ran
            self.os._grant_ended(self, preempted=preempted, more_work=remaining > 0)

    def wait(self, event: Event) -> Generator:
        """Block until ``event`` triggers; returns its value.

        If the event already triggered, this returns immediately with
        no descheduling (so pollers gain nothing by "waiting" on ready
        events). Otherwise the task sleeps, regains interactive
        priority on wakeup, and the return is delayed by the real
        dispatch latency.
        """
        if event.triggered:
            if not event.ok:
                raise event.value if isinstance(event.value, BaseException) else RuntimeError(event.value)
            return event.value
        slept_from = self.sim.now
        self.os._block(self)
        value = yield event
        self.wakeups += 1
        if self.sim.now > slept_from:
            # Real sleep: regain interactive priority (CFS sleeper
            # fairness). A zero-length yield does not boost.
            self.interactive = True
            self.credit = self.os.params.interactive_credit_ns
        self.os._wake(self)
        yield from self._await_dispatch()
        return value

    def poll_wait(self, event: Event, check_ns: int = 100) -> Generator:
        """Busy-poll for ``event`` while holding the CPU.

        Models a polling thread faithfully but in O(preemptions)
        simulator events instead of one per poll iteration: the task
        *computes* (occupying its core, burning CPU, subject to
        normal preemption and demotion) until the event triggers. If
        the scheduler moves the task off-core, the event cannot be
        detected until the task runs again — which is exactly why
        polling under multi-tenancy has terrible tails.

        Returns the event's value. ``check_ns`` is the detection cost
        once the event has fired.
        """
        while True:
            if self.state != RUNNING:
                yield from self._await_dispatch()
            if event.triggered:
                break
            grant = self.os._grant(self, 1 << 62)
            self._preempt_event = Event(self.sim, self._preempt_name)
            started = self.sim.now
            if self.core is not None:
                self.core._grant_started = started
            timeout = self.sim.timeout(grant)
            yield self.sim.any_of([timeout, self._preempt_event, event])
            ran = self.sim.now - started
            preempted = self._preempt_event.triggered
            self._preempt_event = None
            if self.core is not None:
                self.core._grant_started = None
            self._account(ran)
            if event.triggered:
                break
            self.os._grant_ended(self, preempted=preempted, more_work=True)
        if check_ns:
            yield from self.compute(check_ns)
        if not event.ok:
            raise event.value if isinstance(event.value, BaseException) else RuntimeError(event.value)
        return event.value

    def sleep(self, ns: int) -> Generator:
        """Sleep for ``ns`` of virtual time, then wait for the CPU."""
        yield from self.wait(self.sim.timeout(ns))

    def yield_cpu(self) -> Generator:
        """Voluntarily reschedule (sched_yield): go to the back of the
        batch queue if anyone else wants this core."""
        yield from self.sleep(0)

    # -- internals -----------------------------------------------------------

    def _await_dispatch(self) -> Generator:
        event = self._dispatch_event
        if event is None:
            raise RuntimeError(
                f"task {self.name!r} awaiting dispatch without being READY"
            )
        yield event
        self._dispatch_event = None

    def _account(self, ran: int) -> None:
        self.cpu_ns += ran
        self.slice_left -= ran
        if self.core is not None:
            self.core.busy_ns += ran
        if self.interactive:
            self.credit -= ran
            if self.credit <= 0:
                self.interactive = False

    def __repr__(self) -> str:
        return f"<Task {self.name} {self.state}>"


class OperatingSystem:
    """Scheduler for one host's cores.

    Parameters
    ----------
    sim:
        The simulation kernel.
    n_cores:
        Number of hardware threads.
    params:
        Scheduler constants; defaults are reasonable for the paper's
        testbed (dual 8-core Xeon, Linux 3.13).
    name:
        Host label for diagnostics.
    """

    def __init__(
        self,
        sim: Simulator,
        n_cores: int,
        params: Optional[SchedParams] = None,
        name: str = "host",
    ):
        if n_cores < 1:
            raise ValueError("need at least one core")
        self.sim = sim
        self.name = name
        self.params = params or SchedParams()
        self.cores = [Core(self, i) for i in range(n_cores)]
        self.tasks: List[Task] = []
        self._rng = sim.rng(f"os/{name}")
        self._placement_cursor = 0

    # -- task creation ---------------------------------------------------------

    def spawn(
        self,
        body: Callable[[Task], Generator],
        name: str = "task",
        pinned_core: Optional[int] = None,
    ) -> Task:
        """Create and start a task running ``body(task)``."""
        if pinned_core is not None and not 0 <= pinned_core < len(self.cores):
            raise ValueError(f"no such core: {pinned_core}")
        task = Task(self, name, pinned_core)
        self.tasks.append(task)
        task.process = self.sim.spawn(self._main(task, body), name=f"{self.name}/{name}")
        return task

    def spawn_stress(self, name: str = "stress", pinned_core: Optional[int] = None) -> Task:
        """A CPU-bound tenant: computes forever, never sleeps."""

        def body(task: Task) -> Generator:
            while True:
                yield from task.compute(10 * MS)

        return self.spawn(body, name=name, pinned_core=pinned_core)

    def spawn_bursty(
        self,
        name: str = "bursty",
        busy_ns: int = 500 * US,
        idle_ns: int = 500 * US,
        pinned_core: Optional[int] = None,
    ) -> Task:
        """An I/O-intensive tenant: alternates compute and sleep.

        Unlike :meth:`spawn_stress` it wakes frequently (competing for
        interactive dispatch) but does not occupy a core permanently —
        the profile of a co-located storage instance serving requests.
        """

        def body(task: Task) -> Generator:
            rng = self.sim.rng(f"bursty/{self.name}/{name}")
            while True:
                yield from task.compute(max(1, int(rng.expovariate(1.0 / busy_ns))))
                yield from task.sleep(max(1, int(rng.expovariate(1.0 / idle_ns))))

        return self.spawn(body, name=name, pinned_core=pinned_core)

    def _main(self, task: Task, body: Callable[[Task], Generator]) -> Generator:
        # A new task starts like a woken one: it must get a core before
        # its first instruction runs.
        task.state = BLOCKED
        self._wake(task)
        yield from task._await_dispatch()
        try:
            result = yield from body(task)
            return result
        finally:
            self._exit(task)

    # -- scheduling core -------------------------------------------------------

    def _grant(self, task: Task, want: int) -> int:
        """How long ``task`` may run before checking back in.

        Bounded by the remaining slice budget of the current
        dispatch: runtime accumulates across compute/poll calls, so a
        task serving a stream of small requests still exhausts its
        quantum and yields to waiters.
        """
        return min(want, max(task.slice_left, 1))

    def _slice_for(self, core: Core, task: Task) -> int:
        """Fresh quantum for a (re-)dispatched task."""
        if task.interactive:
            return max(task.credit, 1)
        runnable = max(core.runnable, 1)
        slice_ns = self.params.sched_latency_ns // runnable
        slice_ns = max(self.params.min_granularity_ns, slice_ns)
        slice_ns = min(self.params.sched_latency_ns, slice_ns)
        return slice_ns

    def _grant_ended(self, task: Task, preempted: bool, more_work: bool) -> None:
        """Decide what happens after a compute grant finishes."""
        core = task.core
        if core is None:  # defensive: should not happen
            return
        if not more_work:
            # Task keeps the core; it will either compute more or block.
            # If a preemptor fired right at the boundary, make sure the
            # waiting interactive work still gets its tick.
            if core.interactive_queue:
                self._arm_preemption(core, fast_eligible=False)
            return
        contested = bool(core.interactive_queue) or (
            not task.interactive and bool(core.batch_queue)
        )
        must_yield = preempted or (contested and task.slice_left <= 0)
        if must_yield:
            # Vacate: back of the appropriate queue, a waiter runs. The
            # waiter is always popped first (it was queued earlier), so
            # a task never hands the core to itself here.
            task.state = READY
            task.core = None
            task.last_core = core
            task._dispatch_event = Event(task.sim, task._dispatch_name)
            queue = core.interactive_queue if task.interactive else core.batch_queue
            queue.append(task)
            core.current = None
            self._dispatch_next(core)
        else:
            # Keep the core: renew in place (no context switch). The
            # quantum refreshes only when nobody is waiting.
            if not contested:
                task.slice_left = self._slice_for(core, task)
            self._dispatch(core, task, switch=False)

    def _block(self, task: Task) -> None:
        """Task is about to sleep: release its core."""
        core = task.core
        task.state = BLOCKED
        task.core = None
        if core is not None and core.current is task:
            task.last_core = core
            core.current = None
            self._dispatch_next(core)

    def _wake(self, task: Task) -> None:
        """Task's event fired: find it a core or queue it."""
        task.state = READY
        if task._dispatch_event is None:
            task._dispatch_event = Event(task.sim, task._dispatch_name)
        core = self._pick_core(task)
        if core.idle:
            self._dispatch(core, task, switch=core.last_task is not task)
            return
        if task.interactive:
            core.interactive_queue.append(task)
            if not core.current.interactive:
                self._arm_preemption(core, fast_eligible=True)
        else:
            core.batch_queue.append(task)

    def _exit(self, task: Task) -> None:
        core = task.core
        task.state = DONE
        task.core = None
        if core is not None and core.current is task:
            core.current = None
            self._dispatch_next(core)
        for c in self.cores:
            if task in c.interactive_queue:
                c.interactive_queue.remove(task)
            if task in c.batch_queue:
                c.batch_queue.remove(task)

    def _pick_core(self, task: Task) -> Core:
        if task.pinned_core is not None:
            return self.cores[task.pinned_core]
        candidates = [c for c in self.cores if c.enabled]
        # Prefer the core it last ran on if idle (cache warmth), then
        # any idle core, then the least-loaded one.
        if task.last_core is not None and task.last_core.enabled and task.last_core.idle:
            return task.last_core
        idle = [c for c in candidates if c.idle]
        if idle:
            self._placement_cursor = (self._placement_cursor + 1) % len(idle)
            return idle[self._placement_cursor]
        return min(candidates, key=lambda c: (c.runnable, c.index))

    def _dispatch(self, core: Core, task: Task, switch: bool) -> None:
        """Put ``task`` on ``core``; its dispatch event fires after the
        context-switch delay (if any)."""
        waking = task.state != RUNNING
        core.current = task
        task.core = core
        task.state = RUNNING
        if waking:
            task.slice_left = self._slice_for(core, task)
        delay = 0
        if switch:
            core.context_switches += 1
            delay = self.params.context_switch_ns
        if TRACER.enabled:
            now = self.sim.now
            tid = f"core{core.index}"
            if switch:
                # The switch cost is a fixed delay starting now, so the
                # span can be emitted up front with its full duration.
                TRACER.record(
                    now,
                    "X",
                    "scheduler",
                    "ctx_switch",
                    pid=self.name,
                    tid=tid,
                    dur=delay,
                    args={"task": task.name},
                )
                TRACER.count("cpu.context_switches")
            TRACER.record(
                now,
                "i",
                "scheduler",
                "dispatch",
                pid=self.name,
                tid=tid,
                args={"task": task.name, "interactive": task.interactive},
            )
            TRACER.count("cpu.dispatches")
        core.last_task = task
        if waking:
            event = task._dispatch_event
            if event is None:
                raise RuntimeError(f"dispatching {task!r} without a dispatch event")
            if delay:
                self.sim.call_in(delay, self._fire_dispatch, task, event)
            else:
                event.succeed()
        # A renewal (task already RUNNING, mid-compute) needs no event.

    @staticmethod
    def _fire_dispatch(task: Task, event: Event) -> None:
        if task._dispatch_event is event:
            event.succeed()

    def _dispatch_next(self, core: Core) -> None:
        """Core became free: run the best waiting task."""
        queue = core.interactive_queue or core.batch_queue
        if not queue:
            return
        task = queue.popleft()
        self._dispatch(core, task, switch=core.last_task is not task)

    # -- deferred preemption checks -----------------------------------------------

    def _arm_preemption(self, core: Core, fast_eligible: bool) -> None:
        """Schedule the next opportunity to preempt ``core`` for a
        queued interactive task (see :class:`SchedParams`)."""
        params = self.params
        if fast_eligible and self._rng.random() < params.wakeup_fast_prob:
            delay = int(self._rng.expovariate(1.0 / params.wakeup_fast_ns))
            delay = max(1, min(delay, params.tick_ns))
        else:
            delay = max(1, int(self._rng.uniform(0.05, 1.0) * params.tick_ns))
        self.sim.call_in(delay, self._on_preempt_check, core)

    def _on_preempt_check(self, core: Core) -> None:
        if TRACER.enabled:
            TRACER.count("cpu.preempt_checks")
        if not core.interactive_queue:
            return
        current = core.current
        if current is None:
            # Core drained in the meantime.
            self._dispatch_next(core)
        elif not current.interactive:
            # Preempt the batch task; its compute loop will vacate.
            event = current._preempt_event
            if event is not None and not event.triggered:
                event.succeed()
            else:
                # Between grants (e.g. mid context switch): try again.
                self._arm_preemption(core, fast_eligible=False)
        else:
            # An interactive task is running; check again later.
            self._arm_preemption(core, fast_eligible=False)

    # -- core hotplug (Figure 2b disables cores) ---------------------------------

    def set_enabled_cores(self, n: int) -> None:
        """Enable only the first ``n`` cores (before spawning load)."""
        if not 1 <= n <= len(self.cores):
            raise ValueError(f"need 1..{len(self.cores)} cores, got {n}")
        for core in self.cores:
            core.enabled = core.index < n

    # -- metrics ------------------------------------------------------------------

    @property
    def context_switches(self) -> int:
        """Total context switches across all cores."""
        return sum(core.context_switches for core in self.cores)

    @property
    def busy_ns(self) -> int:
        """Total CPU-ns consumed across all cores, including the
        in-flight portion of currently-running grants."""
        return sum(core.busy_ns_live for core in self.cores)

    def utilization(self, since_busy_ns: int, since_time: int) -> float:
        """Average utilization across enabled cores since a snapshot.

        ``since_busy_ns`` / ``since_time`` are values of
        :attr:`busy_ns` and ``sim.now`` captured at the window start.
        """
        elapsed = self.sim.now - since_time
        enabled = sum(1 for core in self.cores if core.enabled)
        if elapsed <= 0 or enabled == 0:
            return 0.0
        return (self.busy_ns - since_busy_ns) / (elapsed * enabled)
