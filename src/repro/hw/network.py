"""Network fabric: hosts' NIC ports connected through one switch.

The model matches the paper's testbed shape — every machine has one
56 Gbps port into a single switch. Each port has an egress serializer
(:class:`~repro.sim.TokenBucket`); a message pays:

    egress serialization  +  propagation/switch delay  +  delivery

Ingress contention is folded into the receiving NIC's processing
engine (see :mod:`repro.hw.nic`), which is the dominant term for the
small messages replicated transactions send.

The fabric delivers opaque payloads to registered receive callbacks;
the RDMA transport layer lives above this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Set

from ..obs.trace import TRACER
from ..sim import Simulator, TokenBucket

__all__ = [
    "Fabric",
    "Port",
    "BoundaryMessage",
    "FaultVerdict",
    "GBPS",
    "wire_bytes",
]

GBPS = 0.125
"""Bytes per nanosecond for one gigabit per second."""

# Per-message wire framing: Ethernet/IB headers + BTH for RoCE-like
# transports. Applied to every packet on the wire.
WIRE_HEADER_BYTES = 58
# Link MTU: larger payloads are segmented and each segment pays headers.
MTU = 4096


def wire_bytes(payload: int) -> int:
    """Bytes actually serialized on the wire for a payload."""
    segments = max(1, -(-payload // MTU))
    return payload + segments * WIRE_HEADER_BYTES


@dataclass
class _Delivery:
    src: str
    dst: str
    payload: Any
    nbytes: int


class BoundaryMessage(NamedTuple):
    """One wire message crossing a shard boundary.

    Produced by the sending shard's fabric when the destination port
    lives on a peer shard (see :meth:`Fabric.attach_boundary`), shipped
    through the shard coordinator, and replayed into the destination
    shard via :meth:`Fabric.inject`. ``deliver_ns`` is the absolute
    delivery time — egress serialization plus propagation (plus any
    injected extra delay) already paid on the sending side — so the
    receiver schedules a plain ``call_at``. ``seq`` orders messages
    emitted by one shard; the coordinator's global merge key is
    ``(deliver_ns, src, seq)``.

    A ``NamedTuple`` rather than a dataclass: thousands of these cross
    the coordinator pipes per run, and tuple pickling is what keeps
    the window barrier cheap.
    """

    deliver_ns: int
    src: str
    dst: str
    payload: Any
    nbytes: int
    t_sent: int
    corrupt: bool
    seq: int


@dataclass
class FaultVerdict:
    """What a fault filter wants done to one wire message.

    The fabric executes the verdict mechanically; policy (who, when,
    with what probability) lives in :mod:`repro.faults`. ``corrupt``
    models payload corruption the way a RoCE receiver experiences it:
    the message pays full wire cost, then fails the ICRC check at the
    destination and is silently discarded — the transport's
    retransmission recovers it. ``duplicates`` delivers that many
    extra copies after the original (switch-level duplication).
    """

    drop: bool = False
    corrupt: bool = False
    extra_delay_ns: int = 0
    duplicates: int = 0


# Spacing between duplicate copies of one message (switch egress
# re-serialization of the duplicated frame).
_DUPLICATE_GAP_NS = 500


class Port:
    """One host's attachment point: an egress serializer plus an id."""

    def __init__(self, fabric: "Fabric", name: str, gbps: float):
        self.fabric = fabric
        self.name = name
        self.gbps = gbps
        self.egress = TokenBucket(
            fabric.sim, bytes_per_ns=gbps * GBPS, name=f"{name}.egress"
        )
        self.receive: Optional[Callable[[str, Any], None]] = None
        self.tx_messages = 0
        self.tx_bytes = 0
        self.rx_messages = 0


class Fabric:
    """A single-switch network connecting named ports.

    Parameters
    ----------
    sim:
        Simulation kernel.
    propagation_ns:
        One-way NIC-to-NIC latency through the switch (cables, PHY,
        switch pipeline). ~1.3 us matches back-to-back ConnectX-3
        through one switch.
    """

    def __init__(self, sim: Simulator, propagation_ns: int = 1300):
        self.sim = sim
        self.propagation_ns = propagation_ns
        self.ports: Dict[str, Port] = {}
        # Fault injection. ``lossy`` is sticky: once a filter has been
        # installed the RC layer keeps arming retransmission timers for
        # the rest of the run, so clearing a filter mid-flight cannot
        # strand unacked messages.
        self._fault_filter: Optional[Callable[[str, str, Any, int], Optional[FaultVerdict]]] = None
        self.lossy = False
        self.dropped_messages = 0
        self.corrupted_messages = 0
        self.duplicated_messages = 0
        self.delayed_messages = 0
        # Shard boundary: port names that live on a peer shard. Sends
        # to them serialize into ``outbox`` instead of delivering
        # locally; the shard coordinator drains and routes them.
        self.boundary: Set[str] = set()
        self.outbox: List[BoundaryMessage] = []
        self._outbox_seq = 0

    @property
    def lookahead_ns(self) -> int:
        """Conservative-sync lookahead this fabric guarantees.

        Every non-loopback delivery pays at least ``propagation_ns``
        after its send completes serialization, so a shard that has
        processed everything up to time ``T`` cannot receive a
        cross-shard message earlier than ``T + propagation_ns``: the
        window width of the sharded engine's sync protocol.
        """
        return self.propagation_ns

    # -- fault injection -------------------------------------------------------

    def install_fault_filter(
        self, filter_: Callable[[str, str, Any, int], Optional[FaultVerdict]]
    ) -> None:
        """Install a fault filter consulted for every non-loopback send.

        The filter receives ``(src, dst, payload, nbytes)`` and returns
        a :class:`FaultVerdict` (or ``None`` for normal delivery).
        Installing any filter marks the fabric lossy, which arms the
        NICs' RC retransmission path (see :mod:`repro.hw.nic`).
        """
        self._fault_filter = filter_
        self.lossy = True

    def clear_fault_filter(self) -> None:
        """Remove the filter. The fabric stays in lossy mode."""
        self._fault_filter = None

    def attach(self, name: str, gbps: float = 56.0) -> Port:
        """Create a port for host ``name`` at ``gbps`` line rate."""
        if name in self.ports:
            raise ValueError(f"port {name!r} already attached")
        port = Port(self, name, gbps)
        self.ports[name] = port
        return port

    def attach_boundary(self, name: str) -> None:
        """Declare ``name`` a port on a peer shard.

        Sends addressed to it pay egress serialization and propagation
        locally, then land in :attr:`outbox` as
        :class:`BoundaryMessage` entries instead of delivering — the
        shard coordinator drains them and the owning shard replays via
        :meth:`inject`. Loopback to a boundary name is impossible by
        construction (a host's own port is always local).
        """
        if name in self.ports:
            raise ValueError(f"port {name!r} is attached locally")
        self.boundary.add(name)

    def send(self, src: str, dst: str, payload: Any, nbytes: int) -> None:
        """Transmit ``payload`` (accounting ``nbytes``) from src to dst.

        Delivery invokes the destination port's ``receive`` callback
        after serialization and propagation. Loopback (src == dst)
        skips the wire entirely: on-NIC loopback QPs never leave the
        adapter. Sends to a boundary name serialize into the shard
        outbox instead (see :meth:`attach_boundary`).
        """
        src_port = self.ports[src]
        if dst in self.boundary:
            self._send_boundary(src_port, dst, payload, nbytes)
            return
        dst_port = self.ports[dst]
        if dst_port.receive is None:
            raise RuntimeError(f"port {dst!r} has no receive callback")
        src_port.tx_messages += 1
        src_port.tx_bytes += nbytes
        # t_sent is threaded through to _deliver so a traced run can
        # render the full wire span (serialize + propagate) without
        # storing any per-message state on the fabric.
        t_sent = self.sim.now
        if src == dst:
            # On-adapter loopback: just the NIC-internal turnaround.
            # Loopback traffic never touches the wire, so the fault
            # filter does not apply.
            self.sim.call_in(100, self._deliver, dst_port, src, payload, t_sent)
            return
        extra_delay = self.propagation_ns
        deliver = self._deliver
        if self._fault_filter is not None:
            verdict = self._fault_filter(src, dst, payload, nbytes)
            if verdict is not None:
                if verdict.drop:
                    self.dropped_messages += 1
                    self._note_fault(t_sent, "drop", src, dst)
                    return
                if verdict.extra_delay_ns:
                    self.delayed_messages += 1
                    extra_delay += verdict.extra_delay_ns
                    self._note_fault(
                        t_sent, "delay", src, dst, {"extra_ns": verdict.extra_delay_ns}
                    )
                if verdict.corrupt:
                    self.corrupted_messages += 1
                    deliver = self._deliver_corrupt
                    self._note_fault(t_sent, "corrupt", src, dst)
                elif verdict.duplicates > 0:
                    copies = verdict.duplicates
                    self.duplicated_messages += copies
                    self._note_fault(t_sent, "duplicate", src, dst, {"copies": copies})

                    def deliver(port, from_, msg, sent, _inner=self._deliver, _n=copies):
                        _inner(port, from_, msg, sent)
                        for copy in range(1, _n + 1):
                            self.sim.call_in(
                                copy * _DUPLICATE_GAP_NS, _inner, port, from_, msg, sent
                            )

        done = src_port.egress.transmit(wire_bytes(nbytes), extra_delay=extra_delay)
        done.add_callback(lambda _evt: deliver(dst_port, src, payload, t_sent))

    # -- shard boundary ----------------------------------------------------

    def _send_boundary(
        self, src_port: Port, dst: str, payload: Any, nbytes: int
    ) -> None:
        """Boundary arm of :meth:`send`: same wire cost and fault
        handling as a local send, but the finished message is recorded
        in :attr:`outbox` for the coordinator instead of delivered.

        Fault verdicts are applied entirely on the sending side so the
        receiving shard replays the message mechanically — a sharded
        run and the oracle consult the fault filter for exactly the
        same (src, dst, payload) sequence.
        """
        src = src_port.name
        src_port.tx_messages += 1
        src_port.tx_bytes += nbytes
        t_sent = self.sim.now
        # Unlike the local path, propagation is NOT folded into the
        # egress completion: the message must be emitted at
        # serialization end — one full lookahead before it delivers —
        # so the coordinator can route it to the owning shard in time.
        extra_delay = 0
        corrupt = False
        copies = 0
        if self._fault_filter is not None:
            verdict = self._fault_filter(src, dst, payload, nbytes)
            if verdict is not None:
                if verdict.drop:
                    self.dropped_messages += 1
                    self._note_fault(t_sent, "drop", src, dst)
                    return
                if verdict.extra_delay_ns:
                    self.delayed_messages += 1
                    extra_delay += verdict.extra_delay_ns
                    self._note_fault(
                        t_sent, "delay", src, dst, {"extra_ns": verdict.extra_delay_ns}
                    )
                if verdict.corrupt:
                    self.corrupted_messages += 1
                    corrupt = True
                    self._note_fault(t_sent, "corrupt", src, dst)
                elif verdict.duplicates > 0:
                    copies = verdict.duplicates
                    self.duplicated_messages += copies
                    self._note_fault(t_sent, "duplicate", src, dst, {"copies": copies})
        done = src_port.egress.transmit(wire_bytes(nbytes), extra_delay=extra_delay)
        done.add_callback(
            lambda _evt: self._emit(src, dst, payload, nbytes, t_sent, corrupt, copies)
        )

    def _emit(
        self,
        src: str,
        dst: str,
        payload: Any,
        nbytes: int,
        t_sent: int,
        corrupt: bool,
        copies: int,
    ) -> None:
        """Serialization finished for a boundary message: record it
        (and any duplicate copies, at the same switch re-serialization
        spacing the local path uses) in the outbox. Delivery time is
        emit time + propagation — numerically identical to the local
        path, where propagation rides on the egress completion."""
        deliver = self.sim.now + self.propagation_ns
        for index in range(copies + 1):
            self._outbox_seq += 1
            self.outbox.append(
                BoundaryMessage(
                    deliver_ns=deliver + index * _DUPLICATE_GAP_NS,
                    src=src,
                    dst=dst,
                    payload=payload,
                    nbytes=nbytes,
                    t_sent=t_sent,
                    corrupt=corrupt,
                    seq=self._outbox_seq,
                )
            )

    def drain_outbox(self) -> List[BoundaryMessage]:
        """Take (and clear) the boundary messages emitted so far."""
        out, self.outbox = self.outbox, []
        return out

    def inject(self, msg: BoundaryMessage) -> None:
        """Replay a boundary message from a peer shard into this fabric.

        Schedules the delivery at ``msg.deliver_ns`` — the wire cost
        was already paid on the sending shard. The conservative window
        protocol guarantees ``deliver_ns`` is still in this shard's
        future; a violation means the lookahead was broken and is a
        hard error, never silent reordering.
        """
        if msg.deliver_ns < self.sim.now:
            raise RuntimeError(
                f"boundary message for {msg.dst!r} arrives in the past: "
                f"{msg.deliver_ns} < now={self.sim.now} (lookahead violated)"
            )
        port = self.ports[msg.dst]
        if port.receive is None:
            raise RuntimeError(f"port {msg.dst!r} has no receive callback")
        deliver = self._deliver_corrupt if msg.corrupt else self._deliver
        self.sim.call_at(msg.deliver_ns, deliver, port, msg.src, msg.payload, msg.t_sent)

    def _note_fault(
        self,
        t_sent: int,
        kind: str,
        src: str,
        dst: str,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record an injected fault as an obs instant event + counter."""
        if TRACER.enabled:
            payload_args = {"src": src, "dst": dst}
            if args:
                payload_args.update(args)
            TRACER.record(
                t_sent,
                "i",
                "fault",
                f"fabric.{kind}",
                pid="fabric",
                tid=f"{src}->{dst}",
                args=payload_args,
            )
            TRACER.count(f"fault.fabric.{kind}")

    def _deliver_corrupt(self, port: Port, src: str, payload: Any, t_sent: int = 0) -> None:
        """A corrupted message reaches the port and fails the ICRC
        check: wire cost was paid, nothing is delivered."""
        if TRACER.enabled:
            TRACER.record(
                t_sent,
                "X",
                "fault",
                f"icrc_drop {src}->{port.name}",
                pid="fabric",
                tid=port.name,
                dur=self.sim.now - t_sent,
            )
            TRACER.count("fault.fabric.icrc_drops")

    def _deliver(self, port: Port, src: str, payload: Any, t_sent: int = 0) -> None:
        port.rx_messages += 1
        if TRACER.enabled:
            TRACER.record(
                t_sent,
                "X",
                "fabric",
                f"{src}->{port.name}",
                pid="fabric",
                tid=port.name,
                dur=self.sim.now - t_sent,
            )
            TRACER.count("fabric.deliveries")
        port.receive(src, payload)
