"""Network fabric: hosts' NIC ports connected through one switch.

The model matches the paper's testbed shape — every machine has one
56 Gbps port into a single switch. Each port has an egress serializer
(:class:`~repro.sim.TokenBucket`); a message pays:

    egress serialization  +  propagation/switch delay  +  delivery

Ingress contention is folded into the receiving NIC's processing
engine (see :mod:`repro.hw.nic`), which is the dominant term for the
small messages replicated transactions send.

The fabric delivers opaque payloads to registered receive callbacks;
the RDMA transport layer lives above this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..obs.trace import TRACER
from ..sim import Simulator, TokenBucket

__all__ = ["Fabric", "Port", "GBPS", "wire_bytes"]

GBPS = 0.125
"""Bytes per nanosecond for one gigabit per second."""

# Per-message wire framing: Ethernet/IB headers + BTH for RoCE-like
# transports. Applied to every packet on the wire.
WIRE_HEADER_BYTES = 58
# Link MTU: larger payloads are segmented and each segment pays headers.
MTU = 4096


def wire_bytes(payload: int) -> int:
    """Bytes actually serialized on the wire for a payload."""
    segments = max(1, -(-payload // MTU))
    return payload + segments * WIRE_HEADER_BYTES


@dataclass
class _Delivery:
    src: str
    dst: str
    payload: Any
    nbytes: int


class Port:
    """One host's attachment point: an egress serializer plus an id."""

    def __init__(self, fabric: "Fabric", name: str, gbps: float):
        self.fabric = fabric
        self.name = name
        self.gbps = gbps
        self.egress = TokenBucket(
            fabric.sim, bytes_per_ns=gbps * GBPS, name=f"{name}.egress"
        )
        self.receive: Optional[Callable[[str, Any], None]] = None
        self.tx_messages = 0
        self.tx_bytes = 0
        self.rx_messages = 0


class Fabric:
    """A single-switch network connecting named ports.

    Parameters
    ----------
    sim:
        Simulation kernel.
    propagation_ns:
        One-way NIC-to-NIC latency through the switch (cables, PHY,
        switch pipeline). ~1.3 us matches back-to-back ConnectX-3
        through one switch.
    """

    def __init__(self, sim: Simulator, propagation_ns: int = 1300):
        self.sim = sim
        self.propagation_ns = propagation_ns
        self.ports: Dict[str, Port] = {}

    def attach(self, name: str, gbps: float = 56.0) -> Port:
        """Create a port for host ``name`` at ``gbps`` line rate."""
        if name in self.ports:
            raise ValueError(f"port {name!r} already attached")
        port = Port(self, name, gbps)
        self.ports[name] = port
        return port

    def send(self, src: str, dst: str, payload: Any, nbytes: int) -> None:
        """Transmit ``payload`` (accounting ``nbytes``) from src to dst.

        Delivery invokes the destination port's ``receive`` callback
        after serialization and propagation. Loopback (src == dst)
        skips the wire entirely: on-NIC loopback QPs never leave the
        adapter.
        """
        src_port = self.ports[src]
        dst_port = self.ports[dst]
        if dst_port.receive is None:
            raise RuntimeError(f"port {dst!r} has no receive callback")
        src_port.tx_messages += 1
        src_port.tx_bytes += nbytes
        # t_sent is threaded through to _deliver so a traced run can
        # render the full wire span (serialize + propagate) without
        # storing any per-message state on the fabric.
        t_sent = self.sim.now
        if src == dst:
            # On-adapter loopback: just the NIC-internal turnaround.
            self.sim.call_in(100, self._deliver, dst_port, src, payload, t_sent)
            return
        done = src_port.egress.transmit(
            wire_bytes(nbytes), extra_delay=self.propagation_ns
        )
        done.add_callback(lambda _evt: self._deliver(dst_port, src, payload, t_sent))

    def _deliver(self, port: Port, src: str, payload: Any, t_sent: int = 0) -> None:
        port.rx_messages += 1
        if TRACER.enabled:
            TRACER.record(
                t_sent,
                "X",
                "fabric",
                f"{src}->{port.name}",
                pid="fabric",
                tid=port.name,
                dur=self.sim.now - t_sent,
            )
            TRACER.count("fabric.deliveries")
        port.receive(src, payload)
