"""Host memory model: flat physical address space with DRAM and NVM.

The address space is one contiguous range of bytes. Addresses below
``dram_size`` are volatile DRAM; addresses at or above it are NVM
(battery-backed DRAM in the paper's testbed). A bump-pointer allocator
with per-space free lists hands out aligned buffers.

Durability is modelled explicitly:

* CPU stores and DMA writes normally go straight to the backing bytes.
* RDMA WRITEs arriving at a NIC land in the NIC's :class:`WriteCache`
  first (see :mod:`repro.hw.nic`), which holds the *newest* data until
  it drains; reads go through the cache.
* :meth:`MemorySystem.power_failure` zeroes DRAM and leaves NVM intact.
  Whatever was still in a NIC write cache is gone — which is exactly
  the failure mode gFLUSH exists to close.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..obs.trace import TRACER

__all__ = ["MemorySystem", "MemoryRegion", "WriteCache", "MemoryError_"]


class MemoryError_(RuntimeError):
    """Out-of-range access or allocation failure.

    Named with a trailing underscore to avoid shadowing the builtin
    ``MemoryError``.
    """


class MemoryRegion:
    """A contiguous, allocated range of a host's physical memory.

    Regions are handles: all data lives in the owning
    :class:`MemorySystem`. A region knows whether it sits in NVM and
    provides bounds-checked relative access.
    """

    __slots__ = ("memory", "addr", "length", "label", "_rounded")

    def __init__(self, memory: "MemorySystem", addr: int, length: int, label: str):
        self.memory = memory
        self.addr = addr
        self.length = length
        self.label = label
        self._rounded: Optional[int] = None  # set by MemorySystem.alloc

    @property
    def end(self) -> int:
        """One past the last address of the region."""
        return self.addr + self.length

    @property
    def is_nvm(self) -> bool:
        """Whether the whole region lies in the non-volatile range."""
        return self.memory.is_nvm(self.addr, self.length)

    def contains(self, addr: int, length: int = 1) -> bool:
        """Whether ``[addr, addr+length)`` lies inside the region."""
        return self.addr <= addr and addr + length <= self.end

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset`` relative to the region."""
        self._check(offset, length)
        return self.memory.read(self.addr + offset, length)

    def write(self, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset`` relative to the region."""
        self._check(offset, len(data))
        self.memory.write(self.addr + offset, data)

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.length:
            raise MemoryError_(
                f"access [{offset}, {offset + length}) outside region "
                f"{self.label!r} of length {self.length}"
            )

    def free(self) -> None:
        """Return the region's bytes to the allocator."""
        self.memory.free(self)

    def __repr__(self) -> str:
        kind = "nvm" if self.is_nvm else "dram"
        return (
            f"<MemoryRegion {self.label!r} {kind} "
            f"addr={self.addr:#x} len={self.length}>"
        )


class _Space:
    """Allocator state for one of the two address ranges."""

    __slots__ = ("base", "limit", "cursor", "free_lists")

    def __init__(self, base: int, limit: int):
        self.base = base
        self.limit = limit
        self.cursor = base
        self.free_lists: Dict[int, List[int]] = {}


class MemorySystem:
    """Byte-addressable physical memory of one host.

    Parameters
    ----------
    dram_size, nvm_size:
        Sizes in bytes of the volatile and non-volatile ranges. NVM
        starts immediately after DRAM.
    """

    def __init__(self, dram_size: int = 1 << 26, nvm_size: int = 1 << 26):
        if dram_size <= 0 or nvm_size < 0:
            raise ValueError("sizes must be positive")
        self.dram_size = dram_size
        self.nvm_size = nvm_size
        self._bytes = bytearray(dram_size + nvm_size)
        # All reads go through one long-lived memoryview: a slice of a
        # memoryview costs a single copy (``tobytes``) where slicing
        # the bytearray then wrapping in ``bytes`` costs two. Same-size
        # slice assignment never resizes the bytearray, so the view
        # stays valid for the lifetime of the system.
        self._view = memoryview(self._bytes)
        self._size = dram_size + nvm_size
        self._dram = _Space(0, dram_size)
        self._nvm = _Space(dram_size, dram_size + nvm_size)
        self.power_failures = 0

    @property
    def size(self) -> int:
        """Total bytes of physical memory."""
        return len(self._bytes)

    @property
    def nvm_base(self) -> int:
        """First NVM address."""
        return self.dram_size

    # -- raw access ----------------------------------------------------------

    def read(self, addr: int, length: int) -> bytes:
        """Bounds-checked read of ``length`` bytes at ``addr``."""
        if addr < 0 or length < 0 or addr + length > self._size:
            self._check(addr, length)
        return self._view[addr : addr + length].tobytes()

    def read_view(self, addr: int, length: int) -> memoryview:
        """Bounds-checked zero-copy view of ``length`` bytes at ``addr``.

        The view aliases live memory: it reflects later writes and must
        not be held across a :meth:`power_failure`. Use for transient
        parsing (e.g. WQE decode) where the copy in :meth:`read` would
        be pure overhead.
        """
        if addr < 0 or length < 0 or addr + length > self._size:
            self._check(addr, length)
        return self._view[addr : addr + length]

    def write(self, addr: int, data: bytes) -> None:
        """Bounds-checked write of ``data`` at ``addr``."""
        length = len(data)
        if addr < 0 or addr + length > self._size:
            self._check(addr, length)
        self._bytes[addr : addr + length] = data

    def is_nvm(self, addr: int, length: int = 1) -> bool:
        """Whether ``[addr, addr+length)`` lies fully inside NVM."""
        self._check(addr, length)
        return addr >= self.dram_size

    def _check(self, addr: int, length: int) -> None:
        if addr < 0 or length < 0 or addr + length > len(self._bytes):
            raise MemoryError_(
                f"physical access [{addr:#x}, {addr + length:#x}) outside "
                f"memory of size {len(self._bytes):#x}"
            )

    # -- allocation ------------------------------------------------------------

    def alloc(
        self, length: int, nvm: bool = False, align: int = 64, label: str = ""
    ) -> MemoryRegion:
        """Allocate ``length`` bytes and return a :class:`MemoryRegion`.

        ``align`` must be a power of two. Freed regions of the exact
        same (aligned) size are reused before the bump pointer grows.
        """
        if length <= 0:
            raise ValueError(f"allocation length must be positive, got {length}")
        if align & (align - 1):
            raise ValueError(f"alignment must be a power of two, got {align}")
        space = self._nvm if nvm else self._dram
        rounded = (length + align - 1) & ~(align - 1)
        free_list = space.free_lists.get(rounded)
        if free_list:
            addr = free_list.pop()
        else:
            addr = (space.cursor + align - 1) & ~(align - 1)
            if addr + rounded > space.limit:
                kind = "NVM" if nvm else "DRAM"
                raise MemoryError_(
                    f"{kind} exhausted: need {rounded} bytes, "
                    f"{space.limit - space.cursor} left"
                )
            space.cursor = addr + rounded
        region = MemoryRegion(self, addr, length, label or f"region@{addr:#x}")
        region._rounded = rounded
        return region

    def free(self, region: MemoryRegion) -> None:
        """Recycle a region allocated by :meth:`alloc`."""
        rounded, region._rounded = region._rounded, None
        if rounded is None:
            raise MemoryError_(f"double free or foreign region: {region!r}")
        space = self._nvm if region.addr >= self.dram_size else self._dram
        space.free_lists.setdefault(rounded, []).append(region.addr)

    # -- failure injection ------------------------------------------------------

    def power_failure(self) -> None:
        """Simulate power loss: DRAM is zeroed, NVM survives.

        Callers (hosts/NICs) are responsible for dropping their own
        volatile state (caches, in-flight queues) alongside this.
        """
        self._bytes[: self.dram_size] = bytes(self.dram_size)
        self.power_failures += 1
        if TRACER.enabled:
            TRACER.count("fault.memory.power_failures")



class WriteCache:
    """A NIC's volatile write buffer, modelled as write-through + undo.

    Hosts are cache-coherent: data DMA'd by the NIC is immediately
    visible to CPU loads, so writes go straight to memory. What lags is
    **durability** — the destination NIC ACKs an RDMA WRITE while the
    data may still be in its volatile buffers, not yet accepted by the
    memory/persistence domain. This class tracks that window as *undo
    records*: each buffered write remembers the bytes it replaced.

    * :meth:`flush_all` / :meth:`flush_range` — the data has reached
      the persistence domain; undo records are discarded. A remote
      READ triggers this (the paper's gFLUSH mechanism, §4.2).
    * :meth:`drop` — power failure before the flush: undo records are
      applied in reverse, reverting memory to its last durable state.
    """

    def __init__(self, memory: MemorySystem, capacity: int = 1 << 20):
        self.memory = memory
        self.capacity = capacity
        self._entries: List[Tuple[int, bytes]] = []  # (addr, pre-image)
        self.pending_bytes = 0
        self.total_writes = 0
        self.total_flushes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def dirty(self) -> bool:
        """Whether any write is still in its volatile window."""
        return bool(self._entries)

    def write(self, addr: int, data: bytes) -> None:
        """NIC write: visible immediately, durable only after a flush.

        If tracking would exceed capacity, the oldest window closes
        first (real NICs drain under pressure), keeping the volatile
        window bounded.
        """
        if not data:
            return
        if self.pending_bytes + len(data) > self.capacity:
            if TRACER.enabled:
                TRACER.count("nic.write_cache_evictions")
                TRACER.count("nic.write_cache_evicted_entries", len(self._entries))
            self.flush_all()
        pre_image = self.memory.read(addr, len(data))
        self._entries.append((addr, pre_image))
        self.pending_bytes += len(data)
        self.memory.write(addr, data)
        self.total_writes += 1

    def read(self, addr: int, length: int) -> bytes:
        """Coherent read (CPU and NIC see the same bytes)."""
        return self.memory.read(addr, length)

    def read_view(self, addr: int, length: int) -> memoryview:
        """Coherent zero-copy read; see :meth:`MemorySystem.read_view`."""
        return self.memory.read_view(addr, length)

    def flush_range(self, addr: int, length: int) -> int:
        """Mark every write overlapping ``[addr, addr+length)`` durable.

        Returns the number of undo records discarded. Note: if a later
        un-flushed write overlaps the range, its undo record still
        holds older bytes; READ-triggered flushes use
        :meth:`flush_all`, which has no such partial-window subtlety.
        """
        kept: List[Tuple[int, bytes]] = []
        discarded = 0
        for entry_addr, pre_image in self._entries:
            overlaps = (
                entry_addr < addr + length and addr < entry_addr + len(pre_image)
            )
            if overlaps or (length == 0 and entry_addr == addr):
                self.pending_bytes -= len(pre_image)
                discarded += 1
            else:
                kept.append((entry_addr, pre_image))
        self._entries = kept
        self.total_flushes += 1 if discarded else 0
        return discarded

    def flush_all(self) -> int:
        """Mark every tracked write durable. Returns records discarded."""
        discarded = len(self._entries)
        self._entries.clear()
        self.pending_bytes = 0
        if discarded:
            self.total_flushes += 1
        return discarded

    def drop(self) -> int:
        """Power failure: revert all un-flushed writes (newest first).

        Returns the number of writes lost. Memory is restored to its
        last durable contents; the caller separately zeroes DRAM.
        """
        lost = len(self._entries)
        for entry_addr, pre_image in reversed(self._entries):
            self.memory.write(entry_addr, pre_image)
        self._entries.clear()
        self.pending_bytes = 0
        return lost
