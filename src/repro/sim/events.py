"""Event primitives for the discrete-event simulation kernel.

The kernel (:mod:`repro.sim.kernel`) advances virtual time and resumes
processes. Processes communicate and block on the event types defined
here. An event is a one-shot occurrence: it starts *pending*, is
*triggered* exactly once (either succeeding with a value or failing
with an exception), and then notifies every registered callback.

Events deliberately mirror the small surface of SimPy that distributed
systems simulations actually need: plain events, timeouts, process
joins, and ``any``/``all`` composition.

Hot path
--------
Timeouts are, by an enormous margin, the most common event in any run
(every NIC engine step, every task sleep, every modelled delay is one),
so :class:`Timeout` carries a dispatch fast path: when a process yields
a fresh timeout that nothing else observes, the kernel skips the
generic trigger machinery — no callback registration, no
``_trigger`` walk — and the scheduled entry resumes the process
directly. The fast path performs exactly the same number of heap
operations in exactly the same order as the generic path, so event
interleavings (and therefore experiment results) are bit-for-bit
identical either way; ``Simulator(fast_dispatch=False)`` forces the
generic path and the equivalence is asserted by
``tests/unit/test_kernel_perf.py``.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Hop",
    "AnyOf",
    "AllOf",
    "EventFailed",
    "Interrupt",
]


class EventFailed(Exception):
    """Raised inside a process when the event it waited on failed."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries whatever object the interrupter
    supplied, typically a short human-readable reason.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.kernel.Simulator`.
    name:
        Optional label used in ``repr`` and error messages.
    """

    __slots__ = ("sim", "name", "_callbacks", "_ok", "_value", "_triggered")

    def __init__(self, sim, name: str = ""):
        self.sim = sim
        self.name = name
        self._callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._ok = True
        self._value: Any = None
        self._triggered = False

    # -- state inspection -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """Whether the event has occurred (succeeded or failed)."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """Whether the event succeeded. Only meaningful once triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        """The success value, or the exception if the event failed."""
        return self._value

    # -- triggering --------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        self._trigger(True, value)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._trigger(False, exception)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._triggered = True
        self._ok = ok
        self._value = value
        callbacks, self._callbacks = self._callbacks, None
        for callback in callbacks:
            callback(self)

    # -- observation -------------------------------------------------------

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Invoke ``callback(event)`` once the event triggers.

        If the event already triggered, the callback runs immediately.
        """
        if self._callbacks is None:
            callback(self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:
        state = "triggered" if self._triggered else "pending"
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires automatically after a virtual-time delay.

    Created via :meth:`repro.sim.kernel.Simulator.timeout`; the kernel
    schedules the trigger at construction.

    Instances handed out by ``Simulator.timeout`` are **kernel-owned
    once yielded bare from a process**: after the process resumes, the
    object may be recycled into the simulator's timeout pool and reused
    for a later ``timeout()`` call. Yield-and-discard (the universal
    pattern) is always safe; retaining a reference across the yield and
    inspecting ``.value``/``.triggered`` on a *later* step is not.
    Timeouts composed into :class:`AnyOf`/:class:`AllOf` — or observed
    via :meth:`add_callback` — are never claimed or recycled.
    """

    __slots__ = ("delay", "_proc", "_tvalue")

    def __init__(self, sim, delay: int, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Event.__init__ inlined: timeouts are constructed millions of
        # times per run and the extra frame (plus a formatted name
        # nobody reads) measurably costs; __repr__ renders the delay.
        self.sim = sim
        self.name = ""
        self._callbacks = []
        self._ok = True
        self._value = None
        self._triggered = False
        self.delay = delay
        self._tvalue = value
        self._proc = None
        if sim._fast_dispatch:
            # Fast-dispatch arm: schedule a *fire marker* — the Timeout
            # itself with ``None`` args — which the batched run loop
            # recognizes and handles with Timeout._fire inlined, saving
            # a Python call on the hottest dispatch in any run.
            if delay == 0 and sim._batch is not None:
                sim._batch.append((self, None))
            else:
                sim._sequence += 1
                heappush(sim._queue, (sim.now + delay, sim._sequence, self, None))
        else:
            sim._sequence += 1
            heappush(sim._queue, (sim.now + delay, sim._sequence, self._fire, ()))

    def _fire(self) -> None:
        """Scheduled trigger. If a process claimed this timeout (it
        yielded it bare), resume the process directly; otherwise fall
        back to the generic trigger machinery."""
        proc = self._proc
        value = self._tvalue
        if proc is None:
            self.succeed(value)
            return
        self._proc = None
        if proc._waiting_on is not self:
            # The claiming process was interrupted while waiting; the
            # trigger still happens for any late observers.
            self.succeed(value)
            return
        proc._waiting_on = None
        self._triggered = True
        self._value = value
        callbacks = self._callbacks
        sim = self.sim
        batch = sim._batch
        # Resume via the queue (same timestamp, FIFO) exactly like the
        # generic path — or, while the kernel is draining this
        # timestamp's batch, append to it directly: the append lands in
        # seq order, so dispatch order is unchanged. Passing ``self``
        # lets the process recycle this timeout into the pool once the
        # generator has been resumed.
        if callbacks:
            self._callbacks = None
            if batch is not None:
                batch.append((proc._resume, (value, None)))
            else:
                sim._sequence += 1
                heappush(
                    sim._queue, (sim.now, sim._sequence, proc._resume, (value, None))
                )
            # Observers registered after the claim (rare): notify them
            # in registration order, after the process resume was
            # enqueued — the same order the generic path produces.
            for callback in callbacks:
                callback(self)
        else:
            # Keep the (empty) callback list: the instance is headed
            # for the pool and the rearm in Simulator.timeout reuses
            # it, skipping a list allocation per simulated delay.
            if batch is not None:
                batch.append((proc._resume, (value, self)))
            else:
                sim._sequence += 1
                heappush(
                    sim._queue, (sim.now, sim._sequence, proc._resume, (value, self))
                )

    def __repr__(self) -> str:
        state = "triggered" if self._triggered else "pending"
        return f"<Timeout +{self.delay} {state}>"


class Hop(Event):
    """A zero-delay re-dispatch point.

    Yielding a hop parks the process for exactly one event-queue hop at
    the current timestamp — the same single ``(now, seq)`` resume push
    a pre-triggered event produces — without allocating an event or
    walking callbacks. It is the cheap way for an engine that already
    *has* its next work item (e.g. via ``Store.try_get``) to keep the
    dispatch interleaving identical to blocking on ``Store.get``:
    same-time work queued by other actors still runs in between.

    The instance never triggers and is reusable; get one via
    :meth:`~repro.sim.kernel.Simulator.hop`. Yield it bare — composing
    it into ``AnyOf``/``AllOf`` or adding callbacks will deadlock.
    """

    __slots__ = ()


class _Condition(Event):
    """Common machinery for :class:`AnyOf` and :class:`AllOf`."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim, events: Iterable[Event]):
        super().__init__(sim)
        self.events: List[Event] = list(events)
        self._pending = len(self.events)
        if not self.events:
            # Degenerate composition triggers immediately.
            self.succeed(self._result())
            return
        for event in self.events:
            event.add_callback(self._on_child)

    def _result(self) -> dict:
        return {
            event: event._value for event in self.events if event._triggered
        }

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers when the first of its child events triggers.

    The value is a dict mapping each already-triggered child event to
    its value.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
        else:
            self.succeed(self._result())


class AllOf(_Condition):
    """Triggers once all child events have triggered.

    Fails fast if any child fails. The value is a dict of every child
    event to its value.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._result())
