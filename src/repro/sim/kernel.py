"""The discrete-event simulation kernel.

A :class:`Simulator` owns a priority queue of scheduled triggers and a
virtual clock in **integer nanoseconds**. Behaviour is expressed as
*processes*: Python generators that ``yield`` events to block on
(:mod:`repro.sim.events`). This is the same execution model as SimPy,
re-implemented here so the whole substrate is self-contained and every
scheduling decision is inspectable.

The kernel is the ceiling on every experiment's wall-clock time, so
its inner loop is deliberately hand-optimized (see
``docs/INTERNALS.md``, *Performance*): bare timeouts dispatch through
a claimed fast path with zero callback machinery, timeout objects are
pooled and recycled, and generator resumption happens without
per-step closure allocation. ``Simulator(fast_dispatch=False)`` runs
the generic path instead; both produce bit-for-bit identical event
orderings (asserted by ``tests/unit/test_kernel_perf.py``).

Example
-------
>>> from repro.sim import Simulator
>>> sim = Simulator()
>>> log = []
>>> def worker(sim, label, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, label))
>>> _ = sim.spawn(worker(sim, "a", 30))
>>> _ = sim.spawn(worker(sim, "b", 10))
>>> sim.run()
>>> log
[(10, 'b'), (30, 'a')]
"""

from __future__ import annotations

import heapq
import os
import random
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from .events import AllOf, AnyOf, Event, EventFailed, Hop, Interrupt, Timeout
from ..obs.trace import TRACER

__all__ = ["Simulator", "Process", "SimulationError"]

# Upper bound on pooled Timeout instances kept for reuse. Sized for
# "every concurrently-blocked engine in a large cluster", far above
# steady-state demand; beyond it, retired timeouts are simply dropped.
_TIMEOUT_POOL_MAX = 512


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (deadlock, bad yields, ...)."""


class Process(Event):
    """A running generator, joinable as an event.

    The process event triggers when the generator finishes: it succeeds
    with the generator's return value, or fails with the uncaught
    exception. Other processes may ``yield process`` to join it.
    """

    __slots__ = ("generator", "_waiting_on")

    def __init__(self, sim, generator: Generator, name: str = ""):
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        if not hasattr(generator, "send"):
            raise TypeError(f"spawn() requires a generator, got {generator!r}")
        self.generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick off the process at the current simulation time, but via
        # the event queue so spawn order does not reorder side effects
        # relative to already-scheduled work at the same timestamp.
        sim._schedule_call(0, self._resume, None, None)

    @property
    def alive(self) -> bool:
        """True until the generator has finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a no-op. The event the
        process was waiting on is abandoned (its trigger will find no
        waiter).
        """
        if self._triggered:
            return
        self.sim._schedule_call(0, self._throw, Interrupt(cause), None)

    # -- kernel plumbing ---------------------------------------------------

    def _resume(self, send_value: Any, recycle: Optional[Timeout]) -> None:
        """Advance the generator with ``send_value``.

        ``recycle`` is the claimed Timeout that produced this resume
        (fast path), returned to the simulator's pool once the step has
        run; the generic path passes ``None``.
        """
        sim = self.sim
        try:
            target = self.generator.send(send_value)
        except StopIteration as stop:
            if recycle is not None:
                sim._recycle_timeout(recycle)
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            if recycle is not None:
                sim._recycle_timeout(recycle)
            self.fail(exc)
            return
        if recycle is not None:
            pool = sim._timeout_pool
            if len(pool) < _TIMEOUT_POOL_MAX:
                pool.append(recycle)
        # _wait_on's claim check, inlined: this is the hottest branch
        # in the whole simulator (every bare timeout yield lands here).
        if (
            target.__class__ is Timeout
            and target._proc is None
            and not target._triggered
            and not target._callbacks
            and sim._fast_dispatch
        ):
            target._proc = self
            self._waiting_on = target
            return
        self._wait_on(target)

    def _throw(self, exc: BaseException, _unused: Any) -> None:
        if self._triggered:
            return
        self._waiting_on = None
        try:
            target = self.generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:  # noqa: BLE001 - propagate via event
            self.fail(err)
            return
        self._wait_on(target)

    # A failure delivered through the event queue takes the same path
    # as an interrupt: throw into the generator, then wait on whatever
    # it yields next.
    _deferred_throw = _throw

    def _wait_on(self, target: Any) -> None:
        """Block this process on ``target``.

        Fast path: a fresh, unobserved Timeout is *claimed* — its
        scheduled entry will resume this process directly, skipping
        callback registration and the generic trigger walk. The claim
        preserves heap-operation order exactly, so fast and generic
        dispatch produce identical event interleavings.
        """
        if (
            target.__class__ is Timeout
            and target._proc is None
            and not target._triggered
            and not target._callbacks
            and self.sim._fast_dispatch
        ):
            target._proc = self
            self._waiting_on = target
            return
        if target.__class__ is Hop:
            # One queue hop at the current time: push the resume
            # directly, exactly where a pre-triggered event's
            # _on_event push would land. The hop itself never
            # triggers and is shared — nothing to clean up.
            sim = self.sim
            batch = sim._batch
            if batch is not None:
                batch.append((self._resume, (None, None)))
            else:
                sim._sequence += 1
                heappush(
                    sim._queue, (sim.now, sim._sequence, self._resume, (None, None))
                )
            return
        if not isinstance(target, Event):
            self._throw(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; "
                    "processes may only yield Event instances"
                ),
                None,
            )
            return
        self._waiting_on = target
        target.add_callback(self._on_event)

    def _on_event(self, event: Event) -> None:
        if self._waiting_on is not event:
            # The process was interrupted (or finished) while waiting;
            # drop the stale wakeup.
            return
        self._waiting_on = None
        # Resume via the event queue (same timestamp, FIFO) rather than
        # synchronously: a trigger must never re-enter process code in
        # the middle of whatever call stack fired it. (Concretely: a
        # driver posting a receive must finish posting before the NIC
        # process that was blocked on that doorbell runs.)
        sim = self.sim
        batch = sim._batch
        if event._ok:
            if batch is not None:
                batch.append((self._resume, (event._value, None)))
            else:
                sim._sequence += 1
                heappush(
                    sim._queue,
                    (sim.now, sim._sequence, self._resume, (event._value, None)),
                )
        else:
            exc = event._value
            if not isinstance(exc, BaseException):
                exc = EventFailed(exc)
            if batch is not None:
                batch.append((self._deferred_throw, (exc, None)))
            else:
                sim._sequence += 1
                heappush(
                    sim._queue,
                    (sim.now, sim._sequence, self._deferred_throw, (exc, None)),
                )


class Simulator:
    """Event loop and virtual clock (integer nanoseconds).

    Parameters
    ----------
    seed:
        Seed for the simulator's root RNG. Components should derive
        their own streams via :meth:`rng` so experiment results are
        reproducible regardless of construction order.
    fast_dispatch:
        Enable the claimed-timeout fast path, timeout pooling, and the
        batched same-timestamp run loop (default). Disabling it routes
        every event through the generic one-pop-at-a-time trigger
        machinery; results are bit-for-bit identical either way — the
        flag exists for the equivalence tests and as an escape hatch.
        ``None`` (the default) reads the ``REPRO_FAST_DISPATCH``
        environment variable (``0``/``false``/``no`` disable), which
        lets sweep worker *processes* be flipped to the generic oracle
        without plumbing the flag through every runner signature.
    window_ns:
        Conservative time-window mode (the sharded engine's run loop,
        see :mod:`repro.sim.shard`): ``run()`` advances in windows of
        at most ``window_ns`` beyond the next pending event and invokes
        the :attr:`on_window` barrier hook between windows. Event
        dispatch order — and therefore every simulated result — is
        bit-for-bit identical to the unwindowed loop; the mode exists
        so a shard can stop at lookahead boundaries to exchange
        cross-shard messages. ``None`` (the default) reads
        ``REPRO_WINDOW_NS`` (unset/``0`` disable), which lets shard
        worker processes window default-constructed simulators without
        plumbing the flag through every experiment signature.
    """

    def __init__(
        self,
        seed: int = 0,
        fast_dispatch: Optional[bool] = None,
        window_ns: Optional[int] = None,
    ):
        self.now: int = 0
        self.seed = seed
        self._queue: list = []
        self._sequence = 0
        self._running = False
        self._process_count = 0
        self._root_rng = random.Random(seed)
        if fast_dispatch is None:
            fast_dispatch = os.environ.get(
                "REPRO_FAST_DISPATCH", "1"
            ).lower() not in ("0", "false", "no")
        self._fast_dispatch = fast_dispatch
        if window_ns is None:
            raw = os.environ.get("REPRO_WINDOW_NS", "")
            window_ns = int(raw) if raw.isdigit() else 0
        self.window_ns = int(window_ns) if window_ns else 0
        # Barrier hook for the windowed run loop: called once after
        # every window (a shard uses it to count sync rounds and, in
        # the in-process containment path, to exchange messages).
        self.on_window: Optional[Callable[["Simulator"], None]] = None
        self.sync_rounds = 0
        # When False, a bounded run leaves the clock at the last
        # dispatched event instead of advancing to ``until`` — the
        # windowed loop needs intermediate slices unpinned so the final
        # clock matches the plain loop exactly.
        self._advance_clock = True
        self._timeout_pool: list = []
        self._hop: Optional[Hop] = None
        # Active same-timestamp dispatch batch (fast path only). While
        # run() is draining one timestamp, every push targeting the
        # current time appends here instead of touching the heap; the
        # batch is dispatched in append order, which equals seq order,
        # so interleavings match the generic path exactly.
        self._batch: Optional[list] = None
        # Observability hook: None on the fast path. A tracer attaches
        # itself only to simulators constructed while tracing is
        # enabled (or via Tracer.install), so untraced runs never see
        # the instrumented loop.
        self._obs = None
        if TRACER.enabled:
            TRACER.install(self)

    # -- randomness --------------------------------------------------------

    def rng(self, label: str) -> random.Random:
        """Return a deterministic RNG stream for ``label``.

        Streams are independent of the order in which components ask
        for them: the stream seed is derived from ``(simulator seed,
        label)`` only.
        """
        return random.Random(f"{self.seed}/{label}")

    # -- event construction -------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self, name=name)

    def hop(self) -> Hop:
        """The simulator's shared zero-delay re-dispatch point.

        ``yield sim.hop()`` resumes the process after exactly one
        event-queue hop at the current time — see
        :class:`~repro.sim.events.Hop`. One instance is shared by all
        processes; it is never triggered, only claimed per yield.
        """
        hop = self._hop
        if hop is None:
            hop = self._hop = Hop(self, "hop")
        return hop

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` ns from now.

        Reuses a pooled instance when one is available; see
        :class:`~repro.sim.events.Timeout` for the (kernel-owned
        once yielded bare) ownership rule.
        """
        # Validate once, before the pool check: both the pooled and the
        # cold construction path must reject the same inputs, or the
        # same call site raises or not depending on pool state.
        delay = int(delay)
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        pool = self._timeout_pool
        if pool:
            timeout = pool.pop()
            # Pooled instances arrive from Timeout._fire's claimed
            # path, which guarantees _proc is None, _ok is True, and
            # _callbacks is still an (empty) list — only the fields
            # that vary per arm need a store here.
            timeout._triggered = False
            timeout.delay = delay
            timeout._tvalue = value
            # The pool only fills on the fast path, so rearms always
            # schedule the batched loop's fire marker (timeout, None).
            if delay == 0 and self._batch is not None:
                self._batch.append((timeout, None))
            else:
                self._sequence += 1
                heappush(
                    self._queue,
                    (self.now + delay, self._sequence, timeout, None),
                )
            return timeout
        return Timeout(self, delay, value)

    def _recycle_timeout(self, timeout: Timeout) -> None:
        """Return a consumed fast-path timeout to the pool."""
        pool = self._timeout_pool
        if len(pool) < _TIMEOUT_POOL_MAX:
            pool.append(timeout)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event triggering when the first of ``events`` triggers."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event triggering when all of ``events`` have triggered."""
        return AllOf(self, events)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        self._process_count += 1
        return Process(self, generator, name=name)

    # -- scheduling --------------------------------------------------------

    def call_at(self, time: int, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now={self.now}"
            )
        if time == self.now and self._batch is not None:
            self._batch.append((fn, args))
            return
        self._sequence += 1
        heappush(self._queue, (time, self._sequence, fn, args))

    def call_in(self, delay: int, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` ns."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        delay = int(delay)
        if delay == 0 and self._batch is not None:
            self._batch.append((fn, args))
            return
        self._sequence += 1
        heappush(self._queue, (self.now + delay, self._sequence, fn, args))

    def _schedule_call(self, delay: int, fn: Callable, a: Any, b: Any) -> None:
        delay = int(delay)
        if delay == 0 and self._batch is not None:
            self._batch.append((fn, (a, b)))
            return
        self._sequence += 1
        heappush(self._queue, (self.now + delay, self._sequence, fn, (a, b)))

    def _schedule_trigger(self, delay: int, event: Event, value: Any) -> None:
        delay = int(delay)
        if delay == 0 and self._batch is not None:
            self._batch.append((event.succeed, (value,)))
            return
        self._sequence += 1
        heappush(self._queue, (self.now + delay, self._sequence, event.succeed, (value,)))

    def _push(self, time: int, fn: Callable, args: tuple) -> None:
        if time == self.now and self._batch is not None:
            self._batch.append((fn, args))
            return
        self._sequence += 1
        heappush(self._queue, (time, self._sequence, fn, args))

    # -- execution ---------------------------------------------------------

    def run(self, until: Optional[int] = None) -> int:
        """Run until the queue drains or the clock passes ``until``.

        Returns the final value of :attr:`now`. When ``until`` is given
        the clock is advanced exactly to it even if the last event fired
        earlier, so back-to-back ``run(until=...)`` calls tile time.

        The fast path dispatches in *same-timestamp batches*: all heap
        entries sharing the head timestamp are popped into a local list
        and dispatched by index, and pushes targeting the current time
        (claimed-timeout resumes, zero-delay calls) append to that list
        instead of round-tripping through the heap. Appends happen in
        seq-assignment order, so the dispatch order is identical to the
        one-pop-at-a-time generic loop (``fast_dispatch=False``), which
        is kept verbatim below as the equivalence oracle.

        With :attr:`window_ns` set, dispatch is additionally sliced
        into conservative time windows (identical order, see
        :meth:`_run_windowed`).
        """
        if self.window_ns:
            return self._run_windowed(until)
        return self._run_plain(until)

    def _run_windowed(self, until: Optional[int]) -> int:
        """Conservative time-window run loop (the sharded engine mode).

        Each iteration advances from the next pending event time ``T``
        through exactly one window ``(now, T + window_ns]`` using the
        normal dispatch loop, then fires the :attr:`on_window` barrier
        hook. Because the inner slices are plain bounded runs, the
        dispatch order — and every simulated result — is bit-for-bit
        identical to an unwindowed run; only the points at which
        control returns to the caller's barrier differ. Intermediate
        slices leave the clock unpinned so that, like the plain loop,
        a run without ``until`` ends at the last dispatched event.
        """
        queue = self._queue
        try:
            self._advance_clock = False
            while queue:
                head = queue[0][0]
                if until is not None and head > until:
                    break
                end = head + self.window_ns
                if until is not None and end > until:
                    end = until
                self._run_plain(end)
                self.sync_rounds += 1
                hook = self.on_window
                if hook is not None:
                    hook(self)
        finally:
            self._advance_clock = True
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def _run_plain(self, until: Optional[int]) -> int:
        obs = self._obs
        if obs is not None and obs.enabled:
            # Checked once per run() call, never per event: the traced
            # loop is a swapped copy, not a branch in the hot path.
            return obs.run_traced(self, until)
        if self._running:
            raise SimulationError("run() is not reentrant")
        if not self._fast_dispatch:
            return self._run_generic(until)
        self._running = True
        queue = self._queue
        pop = heappop
        batch: list = []
        index = -1
        # The batch stays installed across timestamps: between batches
        # no user code runs, so nothing can push while it is "idle".
        self._batch = batch
        try:
            while queue:
                time = queue[0][0]
                if until is not None and time > until:
                    break
                self.now = time
                del batch[:]
                index = -1
                # Phase 1: pop-and-dispatch every heap entry at this
                # timestamp. All of them carry seqs assigned before any
                # dispatch below runs, so they precede every same-time
                # push made during dispatch — which lands in ``batch``
                # (phase 2), in push order. That is exactly the generic
                # loop's (time, seq) order.
                while True:
                    entry = pop(queue)
                    args = entry[3]
                    if args is None:
                        # Claimed-timeout fire marker: entry[2] is the
                        # Timeout itself and this is Timeout._fire
                        # inlined — the single hottest dispatch in any
                        # run, worth skipping a Python call for.
                        timeout = entry[2]
                        proc = timeout._proc
                        value = timeout._tvalue
                        if proc is None:
                            timeout.succeed(value)
                        elif proc._waiting_on is not timeout:
                            timeout._proc = None
                            timeout.succeed(value)
                        else:
                            timeout._proc = None
                            proc._waiting_on = None
                            timeout._triggered = True
                            timeout._value = value
                            callbacks = timeout._callbacks
                            if callbacks:
                                timeout._callbacks = None
                                batch.append((proc._resume, (value, None)))
                                for callback in callbacks:
                                    callback(timeout)
                            else:
                                batch.append((proc._resume, (value, timeout)))
                    else:
                        entry[2](*args)
                    if not queue or queue[0][0] != time:
                        break
                # Phase 2: walk the same-time pushes. List iteration
                # picks up entries appended mid-walk, so work scheduled
                # for the current time during dispatch runs in this
                # same batch, in push order.
                for index, (fn, args) in enumerate(batch):
                    if args is None:
                        timeout = fn
                        proc = timeout._proc
                        value = timeout._tvalue
                        if proc is None:
                            timeout.succeed(value)
                        elif proc._waiting_on is not timeout:
                            timeout._proc = None
                            timeout.succeed(value)
                        else:
                            timeout._proc = None
                            proc._waiting_on = None
                            timeout._triggered = True
                            timeout._value = value
                            callbacks = timeout._callbacks
                            if callbacks:
                                timeout._callbacks = None
                                batch.append((proc._resume, (value, None)))
                                for callback in callbacks:
                                    callback(timeout)
                            else:
                                batch.append((proc._resume, (value, timeout)))
                    else:
                        fn(*args)
            if until is not None and self._advance_clock and until > self.now:
                self.now = until
        finally:
            self._batch = None
            if index + 1 < len(batch):
                # An exception escaped mid-batch: push the undispatched
                # tail back so the queue state stays consistent (the
                # entry that raised is consumed, like the generic loop).
                for fn, args in batch[index + 1 :]:
                    self._sequence += 1
                    heappush(queue, (self.now, self._sequence, fn, args))
            del batch[:]
            self._running = False
        return self.now

    def _run_generic(self, until: Optional[int]) -> int:
        """The unbatched event loop: pop one entry, dispatch, repeat.

        This is the dispatch oracle — ``fast_dispatch=False`` runs it,
        and the batched loop above must produce bit-for-bit identical
        event orderings (asserted by the equivalence tests).
        """
        self._running = True
        queue = self._queue
        pop = heappop
        try:
            if until is None:
                now = self.now
                while queue:
                    time, _seq, fn, args = pop(queue)
                    if time != now:
                        now = self.now = time
                    fn(*args)
            else:
                now = self.now
                while queue:
                    time = queue[0][0]
                    if time > until:
                        break
                    _t, _seq, fn, args = pop(queue)
                    if time != now:
                        now = self.now = time
                    fn(*args)
                if self._advance_clock and until > self.now:
                    self.now = until
        finally:
            self._running = False
        return self.now

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Spawn ``generator``, run to completion, and return its result.

        Convenience for tests and benchmarks that drive one top-level
        scenario. Raises the process's exception if it failed.
        """
        process = self.spawn(generator, name=name)
        self.run()
        if not process.triggered:
            raise SimulationError(
                f"process {process.name!r} never finished; "
                "it is blocked on an event nobody will trigger"
            )
        if not process.ok:
            raise process.value
        return process.value

    @property
    def pending_events(self) -> int:
        """Number of triggers currently scheduled (diagnostic)."""
        return len(self._queue)
