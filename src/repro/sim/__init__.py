"""Discrete-event simulation kernel (integer-nanosecond clock).

Public surface:

* :class:`Simulator` — event loop, clock, process spawning, RNG streams.
* :class:`Process` — a running generator, joinable as an event.
* :class:`Event`, :class:`Timeout`, :class:`AnyOf`, :class:`AllOf` —
  the things processes ``yield``.
* :class:`Resource`, :class:`Store`, :class:`TokenBucket` — shared
  resources.
* time helpers :data:`US`, :data:`MS`, :data:`SECOND` for readable
  nanosecond arithmetic.
"""

from .events import AllOf, AnyOf, Event, EventFailed, Hop, Interrupt, Timeout
from .kernel import Process, SimulationError, Simulator
from .resources import Resource, Store, TokenBucket

US = 1_000
"""Nanoseconds per microsecond."""

MS = 1_000_000
"""Nanoseconds per millisecond."""

SECOND = 1_000_000_000
"""Nanoseconds per second."""

__all__ = [
    "Simulator",
    "Process",
    "SimulationError",
    "Event",
    "Timeout",
    "Hop",
    "AnyOf",
    "AllOf",
    "EventFailed",
    "Interrupt",
    "Resource",
    "Store",
    "TokenBucket",
    "US",
    "MS",
    "SECOND",
]
