"""Shared-resource primitives built on the event kernel.

Three abstractions cover everything the hardware models need:

* :class:`Resource` — N identical slots with a FIFO wait queue
  (used for e.g. DMA engines and link arbitration).
* :class:`Store` — an unbounded FIFO of items with blocking ``get``
  (used for e.g. NIC ingress queues and mailboxes).
* :class:`TokenBucket` — a rate limiter for modelling line rates.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .events import Event
from .kernel import Simulator

__all__ = ["Resource", "Store", "TokenBucket"]


class Resource:
    """A pool of ``capacity`` identical slots with FIFO granting.

    Usage inside a process::

        grant = resource.acquire()
        yield grant
        try:
            ...  # hold the slot
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        # Event names are formatted once here, not per acquire().
        self._grant_name = name + ".grant"

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of acquires waiting for a slot."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that fires when a slot is granted."""
        grant = Event(self.sim, self._grant_name)
        if self._in_use < self.capacity:
            self._in_use += 1
            grant.succeed()
        else:
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        """Return a slot to the pool, granting the next waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError(f"release() on idle resource {self.name!r}")
        if self._waiters:
            # Hand the slot straight to the next waiter; _in_use is
            # unchanged because ownership transfers.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1


class Store:
    """An unbounded FIFO with blocking ``get``.

    ``put`` never blocks. ``get`` returns an event whose value is the
    item; if an item is already queued, the event is pre-triggered.
    Items are delivered to getters in request order.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._get_name = name + ".get"

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Append ``item``, waking the oldest blocked getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event yielding the next item."""
        request = Event(self.sim, self._get_name)
        if self._items:
            request.succeed(self._items.popleft())
        else:
            self._getters.append(request)
        return request

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; returns ``None`` when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def clear(self) -> int:
        """Discard all queued items (fault injection: a crashed
        consumer loses its backlog). Blocked getters stay blocked.
        Returns the number of items dropped."""
        dropped = len(self._items)
        self._items.clear()
        return dropped

    def peek(self) -> Optional[Any]:
        """Return the head item without removing it (``None`` if empty)."""
        return self._items[0] if self._items else None


class TokenBucket:
    """A serialization-rate model: bytes per nanosecond with FIFO order.

    ``transmit(nbytes)`` returns an event that fires when the last byte
    of the message has left, accounting for everything queued ahead of
    it. This models a link or engine that serializes work at a fixed
    rate without spawning a process per message.
    """

    def __init__(self, sim: Simulator, bytes_per_ns: float, name: str = ""):
        if bytes_per_ns <= 0:
            raise ValueError("bytes_per_ns must be positive")
        self.sim = sim
        self.bytes_per_ns = bytes_per_ns
        self.name = name
        self._free_at = 0  # virtual time the serializer becomes idle
        self._tx_name = name + ".tx"

    @property
    def busy_until(self) -> int:
        """Virtual time at which all queued work will have drained."""
        return max(self._free_at, self.sim.now)

    def transmit(self, nbytes: int, extra_delay: int = 0) -> Event:
        """Serialize ``nbytes``; the event fires at drain time.

        ``extra_delay`` (e.g. propagation latency) is added after
        serialization and does not occupy the serializer.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        start = max(self._free_at, self.sim.now)
        duration = int(round(nbytes / self.bytes_per_ns))
        self._free_at = start + duration
        done = Event(self.sim, self._tx_name)
        self.sim.call_at(self._free_at + extra_delay, done.succeed, None)
        return done
