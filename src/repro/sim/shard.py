"""Sharded multi-process simulation engine (conservative time windows).

A single simulation is one total order of virtual time, but the
*world* being simulated is spatially partitioned: hosts only interact
through the fabric, and every cross-host message pays at least the
fabric's propagation delay (1300 ns). That delay is a classic
conservative-synchronization **lookahead** (Chandy–Misra–Bryant): if
every shard has processed all events up to the global minimum
next-event time ``T``, no shard can receive a cross-shard message
before ``T + lookahead`` — so all shards may safely run the window
``(·, T + lookahead]`` in parallel and exchange the messages produced
at the barrier.

The pieces, bottom-up:

* :func:`partition_topology` — deterministic greedy partitioner over
  communication *cliques* (sets of hosts that must share a shard; a
  replication group and its client is one clique, a mesh host is its
  own).
* :class:`ShardProgram` — the contract a sharded workload implements:
  build its slice of the world on a fresh simulator given which hosts
  are local, then report/merge/render picklable results. Programs are
  registered in :data:`PROGRAMS` by import path so worker processes
  resolve them by name (specs ship data, never code — same rule as
  :mod:`repro.bench.parallel`).
* :func:`_shard_worker` / :func:`run_sharded` — the worker loop and
  the coordinator. Lockstep protocol over ``multiprocessing`` pipes:
  every round each worker reports its next event time plus the
  boundary messages it emitted; the coordinator routes messages,
  computes the window end, and broadcasts it with each shard's inbox
  sorted by ``(deliver_ns, src, seq)``. Identical inputs per shard →
  identical simulation regardless of host scheduling.
* :func:`maybe_contained` — the ``REPRO_SHARDS`` containment hook:
  re-runs an experiment/chaos callable in a shard worker process under
  the window-bounded kernel loop, which is how the regression corpus
  is replayed "under the sharded engine" (replication cliques cannot
  split, but the worker protocol, windowed dispatch, and result
  shipping all still apply).

Determinism invariants (asserted by
``tests/integration/test_shard_equivalence.py``):

1. Per-host randomness comes from label-derived streams
   (``Simulator.rng``), so a host draws identical randomness whichever
   shard builds it.
2. Boundary messages carry an absolute ``deliver_ns`` computed on the
   sending shard (egress serialization + propagation already paid), so
   the receiver schedules mechanically.
3. Cross-shard injections are applied in the coordinator's sorted
   ``(deliver_ns, src, seq)`` order before a window runs; workloads
   observe arrivals only strictly after their timestamp (the mesh
   program's drain-before-now rule), which makes same-timestamp
   interleaving — the one thing sharding can reorder — unobservable.
"""

from __future__ import annotations

import hashlib
import importlib
import multiprocessing
import os
import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Clique",
    "ShardProgram",
    "ShardRun",
    "PROGRAMS",
    "DEFAULT_LOOKAHEAD_NS",
    "capture_repro_env",
    "apply_repro_env",
    "partition_topology",
    "resolve_program",
    "run_oracle",
    "run_sharded",
    "maybe_contained",
]

DEFAULT_LOOKAHEAD_NS = 1300
"""Default conservative lookahead: ``Fabric.propagation_ns``."""

SHARDS_VAR = "REPRO_SHARDS"
ROLE_VAR = "REPRO_SHARD_ROLE"
WINDOW_VAR = "REPRO_WINDOW_NS"


# -- environment propagation ------------------------------------------------


def capture_repro_env() -> Dict[str, str]:
    """Every ``REPRO_*`` variable in this process's environment.

    Shipped to spawned workers (sweep pools and shard workers alike)
    so knobs like ``REPRO_FAST_DISPATCH=0`` and ``REPRO_SHARDS``
    behave identically however many processes a run fans out across.
    """
    return {k: v for k, v in os.environ.items() if k.startswith("REPRO_")}


def apply_repro_env(env: Dict[str, str]) -> None:
    """Make this process's ``REPRO_*`` environment exactly ``env``."""
    for key in [k for k in os.environ if k.startswith("REPRO_")]:
        if key not in env:
            del os.environ[key]
    os.environ.update(env)


def _context():
    """Multiprocessing context: fork where available (cheap workers on
    a 1-core host), spawn otherwise. Workers and their arguments are
    spawn-safe either way."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# -- topology partitioning --------------------------------------------------


@dataclass(frozen=True)
class Clique:
    """A set of hosts that must share a shard.

    Hosts in one clique may interact at sub-lookahead latencies
    (loopback QPs, shared OS state), so the partitioner never splits
    one. ``weight`` is the balance metric (expected event share).
    """

    name: str
    members: Tuple[str, ...]
    weight: int = 1


def partition_topology(
    cliques: Sequence[Clique], n_shards: int, seed: int = 0
) -> List[List[Clique]]:
    """Deterministic greedy balance of cliques across ``n_shards``.

    Cliques are ordered by descending weight with a seeded-hash tiebreak
    (stable across platforms and hash randomization), then each is
    assigned to the lightest shard (lowest index on ties). A pure
    function of ``(cliques, n_shards, seed)`` — the same topology
    always partitions the same way, which the equivalence tests rely
    on to reproduce a layout.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")

    def mix(name: str) -> str:
        return hashlib.sha256(f"{seed}/{name}".encode()).hexdigest()

    ordered = sorted(cliques, key=lambda c: (-c.weight, mix(c.name), c.name))
    shards: List[List[Clique]] = [[] for _ in range(n_shards)]
    loads = [0] * n_shards
    for clique in ordered:
        index = min(range(n_shards), key=lambda j: (loads[j], j))
        shards[index].append(clique)
        loads[index] += clique.weight
    return shards


# -- program contract -------------------------------------------------------


@dataclass(frozen=True)
class ShardProgram:
    """A workload that knows how to build any shard of itself.

    ``cliques(params)`` describes the topology; ``build(sim, local,
    all_hosts, params)`` constructs this shard's slice — attaching
    local ports, declaring every non-local host a fabric boundary —
    and returns ``(fabric, state)``; ``report(state)`` must be
    picklable and byte-stable; ``merge(reports)`` folds per-shard
    reports (disjoint hosts, so a union); ``render(report, params)``
    is the canonical text output the equivalence CI byte-diffs.

    ``prepare(seed, params)``, when set, is called once in the
    coordinator *before* workers are spawned. Under the default fork
    start method anything it caches at module level (precomputed
    schedules, topology tables) is inherited copy-on-write by every
    worker instead of being recomputed per shard — a pure optimization:
    under spawn the cache is simply cold and workers recompute.
    """

    name: str
    cliques: Callable[[Dict[str, Any]], List[Clique]]
    build: Callable[..., Tuple[Any, Any]]
    report: Callable[[Any], Dict[str, Any]]
    merge: Callable[[List[Dict[str, Any]]], Dict[str, Any]]
    render: Callable[[Dict[str, Any], Dict[str, Any]], str]
    lookahead_ns: Callable[[Dict[str, Any]], int] = lambda params: DEFAULT_LOOKAHEAD_NS
    prepare: Optional[Callable[[int, Dict[str, Any]], None]] = None


PROGRAMS: Dict[str, str] = {
    "mesh": "repro.bench.mesh:MESH_PROGRAM",
}
"""Shardable programs by name, as ``module:attribute`` import paths."""


def resolve_program(name: str) -> ShardProgram:
    """Import and return the :class:`ShardProgram` behind ``name``."""
    try:
        path = PROGRAMS[name]
    except KeyError:
        known = ", ".join(sorted(PROGRAMS))
        raise ValueError(f"unknown shard program {name!r} (known: {known})") from None
    module_name, _, attr = path.partition(":")
    return getattr(importlib.import_module(module_name), attr)


# -- results ----------------------------------------------------------------


@dataclass
class ShardRun:
    """Outcome of a sharded (or oracle) program run."""

    program: str
    shards: int
    seed: int
    params: Dict[str, Any]
    report: Dict[str, Any]
    rendered: str
    sync_rounds: int
    lookahead_ns: int
    shard_stats: List[Dict[str, Any]] = field(default_factory=list)
    wall_s: float = 0.0


# -- worker side ------------------------------------------------------------


def _shard_worker(
    conn,
    program_name: str,
    shard_index: int,
    local: List[str],
    all_hosts: List[str],
    params: Dict[str, Any],
    seed: int,
    env: Dict[str, str],
    trace_cfg: Optional[Tuple[Optional[int], bool]],
) -> None:
    """One shard's process: build, then lockstep with the coordinator.

    Protocol (worker side):

    * send ``("ready", next_event_time_or_None, outbox)``
    * recv ``("window", window_end, inbox)`` → inject every boundary
      message (coordinator pre-sorted by ``(deliver_ns, src, seq)``),
      run to ``window_end``, loop
    * recv ``("stop",)`` → send ``("done", report, stats, trace)``

    Intermediate bounded runs leave the clock unpinned
    (``_advance_clock``) so the shard's final ``now`` matches what an
    unwindowed run of the same events would report.
    """
    wall0 = _time.perf_counter()
    apply_repro_env(env)
    os.environ[ROLE_VAR] = f"shard{shard_index}"
    from ..obs.trace import TRACER, ship_records

    if trace_cfg is not None:
        capacity, record_kernel = trace_cfg
        TRACER.enable(capacity)
        TRACER.record_kernel = record_kernel
    from .kernel import Simulator

    program = resolve_program(program_name)
    # window_ns=0: the coordinator drives the windows explicitly.
    sim = Simulator(seed=seed, window_ns=0)
    fabric, state = program.build(sim, local, all_hosts, params)
    sim._advance_clock = False
    try:
        while True:
            next_time = sim._queue[0][0] if sim._queue else None
            conn.send(("ready", next_time, fabric.drain_outbox()))
            message = conn.recv()
            if message[0] == "stop":
                break
            _kind, window_end, inbox = message
            for boundary_message in inbox:
                fabric.inject(boundary_message)
            sim.run(until=window_end)
            sim.sync_rounds += 1
    finally:
        sim._advance_clock = True
    if trace_cfg is not None:
        TRACER.disable()
        trace = (ship_records(TRACER), dict(TRACER.counters), TRACER.dispatches)
    else:
        trace = None
    stats = {
        "shard": shard_index,
        "hosts": len(local),
        "events": sim._sequence,
        "sync_rounds": sim.sync_rounds,
        "now_ns": sim.now,
        "wall_s": _time.perf_counter() - wall0,
    }
    conn.send(("done", program.report(state), stats, trace))
    conn.close()


# -- coordinator ------------------------------------------------------------


def run_oracle(
    program_name: str, seed: int = 0, params: Optional[Dict[str, Any]] = None
) -> ShardRun:
    """Single-process reference run: the whole world on one simulator.

    This is the oracle every sharded layout must match bit for bit —
    the same role the generic dispatch loop plays for batched dispatch.
    """
    wall0 = _time.perf_counter()
    program = resolve_program(program_name)
    params = dict(params or {})
    cliques = program.cliques(params)
    all_hosts = [member for clique in cliques for member in clique.members]
    from .kernel import Simulator

    sim = Simulator(seed=seed)
    fabric, state = program.build(sim, list(all_hosts), list(all_hosts), params)
    del fabric  # no boundaries: everything delivers locally
    sim.run()
    report = program.report(state)
    return ShardRun(
        program=program_name,
        shards=1,
        seed=seed,
        params=params,
        report=report,
        rendered=program.render(report, params),
        sync_rounds=0,
        lookahead_ns=program.lookahead_ns(params),
        shard_stats=[
            {
                "shard": 0,
                "hosts": len(all_hosts),
                "events": sim._sequence,
                "sync_rounds": 0,
                "now_ns": sim.now,
                "wall_s": _time.perf_counter() - wall0,
            }
        ],
        wall_s=_time.perf_counter() - wall0,
    )


def run_sharded(
    program_name: str,
    shards: int,
    seed: int = 0,
    params: Optional[Dict[str, Any]] = None,
) -> ShardRun:
    """Run a registered program partitioned across ``shards`` workers.

    Coordinator side of the window protocol: each round it takes every
    worker's next event time and freshly emitted boundary messages,
    routes the messages, and — unless everything is quiescent —
    broadcasts ``window_end = T + lookahead`` (``T`` = global minimum
    over next event times and undelivered message times) together with
    each shard's inbox sorted by ``(deliver_ns, src, seq)``. Workers
    advance through the window and the cycle repeats; when no events
    and no messages remain it broadcasts stop and merges reports (and,
    if tracing is enabled, per-shard trace buffers) in shard order.

    ``shards=1`` short-circuits to :func:`run_oracle`.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards == 1:
        return run_oracle(program_name, seed=seed, params=params)
    wall0 = _time.perf_counter()
    program = resolve_program(program_name)
    params = dict(params or {})
    cliques = program.cliques(params)
    lookahead = program.lookahead_ns(params)
    partition = partition_topology(cliques, shards, seed=seed)
    all_hosts = [member for clique in cliques for member in clique.members]
    if program.prepare is not None:
        program.prepare(seed, params)
    locals_per_shard = [
        [member for clique in shard for member in clique.members]
        for shard in partition
    ]

    from ..obs.trace import TRACER
    from ..obs.export import merge_shard_records

    trace_cfg: Optional[Tuple[Optional[int], bool]] = None
    if TRACER.enabled:
        trace_cfg = (TRACER.capacity, TRACER.record_kernel)

    env = capture_repro_env()
    context = _context()
    connections = []
    processes = []
    for index, local in enumerate(locals_per_shard):
        parent_conn, child_conn = context.Pipe()
        process = context.Process(
            target=_shard_worker,
            args=(
                child_conn,
                program_name,
                index,
                local,
                list(all_hosts),
                params,
                seed,
                env,
                trace_cfg,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        connections.append(parent_conn)
        processes.append(process)

    sync_rounds = 0
    try:
        inboxes: List[list] = [[] for _ in range(shards)]
        owner = {
            member: index
            for index, local in enumerate(locals_per_shard)
            for member in local
        }
        while True:
            next_times = []
            for index, conn in enumerate(connections):
                kind, next_time, outbox = conn.recv()
                assert kind == "ready", kind
                next_times.append(next_time)
                for message in outbox:
                    inboxes[owner[message.dst]].append(message)
            candidates = [t for t in next_times if t is not None]
            candidates.extend(
                message.deliver_ns for inbox in inboxes for message in inbox
            )
            if not candidates:
                for conn in connections:
                    conn.send(("stop",))
                break
            window_end = min(candidates) + lookahead
            for index, conn in enumerate(connections):
                inboxes[index].sort(key=lambda m: (m.deliver_ns, m.src, m.seq))
                conn.send(("window", window_end, inboxes[index]))
                inboxes[index] = []
            sync_rounds += 1
        reports = []
        shard_stats = []
        shipped_traces = []
        for conn in connections:
            kind, report, stats, trace = conn.recv()
            assert kind == "done", kind
            reports.append(report)
            shard_stats.append(stats)
            shipped_traces.append(trace)
    finally:
        for conn in connections:
            conn.close()
        for process in processes:
            process.join(timeout=60)
            if process.is_alive():
                process.terminate()
                process.join()

    if trace_cfg is not None:
        for trace in shipped_traces:
            if trace is not None:
                records, counters, dispatches = trace
                TRACER.absorb(records, counters, dispatches)
        merge_shard_records(TRACER)

    merged = program.merge(reports)
    return ShardRun(
        program=program_name,
        shards=shards,
        seed=seed,
        params=params,
        report=merged,
        rendered=program.render(merged, params),
        sync_rounds=sync_rounds,
        lookahead_ns=lookahead,
        shard_stats=shard_stats,
        wall_s=_time.perf_counter() - wall0,
    )


# -- containment ------------------------------------------------------------


def maybe_contained(target: str, kwargs: Dict[str, Any]) -> Optional[Tuple[Any]]:
    """``REPRO_SHARDS`` containment hook for experiment entry points.

    When ``REPRO_SHARDS`` is set (and this process is not already a
    shard/containment worker), run ``target`` — a ``module:callable``
    path — in a worker process whose default-constructed simulators
    use the window-bounded run loop (``REPRO_WINDOW_NS`` = lookahead).
    That replays the unchanged experiment under the sharded engine's
    dispatch machinery: replication cliques cannot split across
    processes, but the windowed kernel loop, worker shipping, and env
    propagation are all exercised and the results must byte-match.

    Returns ``None`` when containment does not apply (caller proceeds
    inline) or a 1-tuple holding the worker's result. Worker
    exceptions re-raise here.
    """
    flag = os.environ.get(SHARDS_VAR, "")
    if not flag or flag == "0":
        return None
    if os.environ.get(ROLE_VAR):
        return None
    env = capture_repro_env()
    env[ROLE_VAR] = "contained"
    env[WINDOW_VAR] = str(DEFAULT_LOOKAHEAD_NS)
    context = _context()
    parent_conn, child_conn = context.Pipe()
    process = context.Process(
        target=_contained_worker, args=(child_conn, target, kwargs, env), daemon=True
    )
    process.start()
    child_conn.close()
    try:
        ok, payload = parent_conn.recv()
    except EOFError:
        process.join()
        raise RuntimeError(
            f"contained run of {target} died (exit code {process.exitcode})"
        ) from None
    finally:
        parent_conn.close()
        process.join()
    if not ok:
        if isinstance(payload, BaseException):
            raise payload
        raise RuntimeError(f"contained run of {target} failed: {payload}")
    return (payload,)


def _contained_worker(conn, target: str, kwargs: Dict[str, Any], env: Dict[str, str]):
    """Containment child: apply env, resolve, call, ship the result."""
    apply_repro_env(env)
    module_name, _, attr = target.partition(":")
    try:
        fn = getattr(importlib.import_module(module_name), attr)
        result = fn(**kwargs)
        conn.send((True, result))
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        try:
            conn.send((False, exc))
        except Exception:
            conn.send((False, repr(exc)))
    conn.close()
