"""YCSB workload generator (Cooper et al., SoCC 2010).

Re-implements the pieces the paper's evaluation uses: the standard
key-choosers (uniform, zipfian, scrambled zipfian, latest) and the
workload mixes of Table 3:

    ========  =====  =======  ======  ======  ====
    Workload  Read   Update   Insert  Modify  Scan
    A         50     50       --      --      --
    B         95     5        --      --      --
    C         100    --       --      --      --
    D         95     --       5       --      --
    E         --     --       5       --      95
    F         50     --       --      50      --
    ========  =====  =======  ======  ======  ====

("Modify" is YCSB's read-modify-write.) Distributions follow the
reference implementation: A/B/C/F use scrambled-zipfian over the key
space, D uses "latest", E uses scrambled-zipfian scan starts with
uniform scan lengths.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

__all__ = [
    "ZipfianGenerator",
    "ScrambledZipfianGenerator",
    "LatestGenerator",
    "UniformGenerator",
    "WorkloadMix",
    "WORKLOADS",
    "YcsbWorkload",
    "Operation",
]

ZIPFIAN_CONSTANT = 0.99
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a_64(value: int) -> int:
    """FNV-1a hash of an int, as YCSB uses to scramble zipfian picks."""
    data = value.to_bytes(8, "little")
    accumulator = _FNV_OFFSET
    for byte in data:
        accumulator ^= byte
        accumulator = (accumulator * _FNV_PRIME) & 0xFFFF_FFFF_FFFF_FFFF
    return accumulator


class UniformGenerator:
    """Uniform choice over ``[0, item_count)``."""

    def __init__(self, item_count: int, rng: random.Random):
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        self.item_count = item_count
        self.rng = rng

    def next(self) -> int:
        return self.rng.randrange(self.item_count)

    def grow(self) -> None:
        """Record an insert: later draws cover the extended keyspace."""
        self.item_count += 1


class ZipfianGenerator:
    """Gray et al. incremental zipfian generator (YCSB's algorithm).

    Favors low item numbers; theta defaults to the YCSB constant.
    ``grow`` extends the keyspace with YCSB's incremental zeta update
    — each insert appends its one new term to the running harmonic sum
    instead of recomputing all ``item_count`` terms, so a stream of N
    inserts costs O(N) zeta terms total, not O(N^2). The accumulation
    order matches a from-scratch rebuild exactly (terms added
    ``1..n`` left to right), so the two paths are bit-identical;
    ``zeta_terms`` counts terms ever computed so tests can pin the
    complexity bound.
    """

    def __init__(self, item_count: int, rng: random.Random, theta: float = ZIPFIAN_CONSTANT):
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        self.item_count = item_count
        self.rng = rng
        self.theta = theta
        self.zeta_terms = 0
        self.zeta_n = self._zeta(item_count, theta)
        self.alpha = 1.0 / (1.0 - theta)
        self.zeta2 = sum(1.0 / (i ** theta) for i in range(1, 3))
        self._recompute_eta()

    def _zeta(self, n: int, theta: float, start: float = 0.0, from_n: int = 0) -> float:
        self.zeta_terms += n - from_n
        accumulator = start
        for i in range(from_n + 1, n + 1):
            accumulator += 1.0 / (i ** theta)
        return accumulator

    def _recompute_eta(self) -> None:
        denominator = 1 - self.zeta2 / self.zeta_n
        if self.item_count <= 2 or denominator == 0:
            # Degenerate keyspaces: the alpha branch is never the
            # right answer, fall through to the first-two-items cases.
            self.eta = 0.0
        else:
            self.eta = (
                1 - (2.0 / self.item_count) ** (1 - self.theta)
            ) / denominator

    def grow(self, item_count: Optional[int] = None) -> None:
        """Extend the keyspace (default: by one), updating zeta incrementally."""
        new_count = self.item_count + 1 if item_count is None else item_count
        if new_count < self.item_count:
            raise ValueError("keyspaces only grow")
        self.zeta_n = self._zeta(
            new_count, self.theta, start=self.zeta_n, from_n=self.item_count
        )
        self.item_count = new_count
        self._recompute_eta()

    def next(self) -> int:
        u = self.rng.random()
        uz = u * self.zeta_n
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1 if self.item_count > 1 else 0
        value = int(self.item_count * (self.eta * u - self.eta + 1) ** self.alpha)
        return min(value, self.item_count - 1)


class ScrambledZipfianGenerator:
    """Zipfian popularity spread over the key space by FNV hashing.

    Hot keys are scattered rather than clustered at low ids — the
    distribution YCSB workloads A/B/E/F actually use.
    """

    def __init__(self, item_count: int, rng: random.Random):
        self.item_count = item_count
        self._zipf = ZipfianGenerator(item_count, rng)

    def next(self) -> int:
        return fnv1a_64(self._zipf.next()) % self.item_count

    def grow(self) -> None:
        """Record an insert: new keys join the scrambled distribution."""
        self.item_count += 1
        self._zipf.grow(self.item_count)


class LatestGenerator:
    """Skewed towards recently inserted items (workload D)."""

    def __init__(self, item_count: int, rng: random.Random):
        self.item_count = item_count
        self._zipf = ZipfianGenerator(item_count, rng)

    def next(self) -> int:
        offset = self._zipf.next() % self.item_count
        return self.item_count - 1 - offset

    def grow(self) -> None:
        """Record an insert: the newest item becomes the hottest."""
        self.item_count += 1
        self._zipf.grow(self.item_count)


@dataclass(frozen=True)
class WorkloadMix:
    """Operation proportions of one YCSB workload (Table 3)."""

    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    modify: float = 0.0  # read-modify-write
    scan: float = 0.0
    distribution: str = "zipfian"  # zipfian | latest | uniform
    max_scan_length: int = 100

    def __post_init__(self):
        total = self.read + self.update + self.insert + self.modify + self.scan
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"{self.name}: proportions sum to {total}, not 1")


WORKLOADS: Dict[str, WorkloadMix] = {
    "A": WorkloadMix("A", read=0.50, update=0.50),
    "B": WorkloadMix("B", read=0.95, update=0.05),
    "C": WorkloadMix("C", read=1.0),
    "D": WorkloadMix("D", read=0.95, insert=0.05, distribution="latest"),
    "E": WorkloadMix("E", insert=0.05, scan=0.95),
    "F": WorkloadMix("F", read=0.50, modify=0.50),
}


@dataclass(frozen=True)
class Operation:
    """One generated YCSB operation."""

    kind: str  # read | update | insert | modify | scan
    key: int
    value_size: int = 0
    scan_length: int = 0


class YcsbWorkload:
    """Stream of :class:`Operation` for one workload mix.

    Parameters
    ----------
    mix:
        One of :data:`WORKLOADS` (or a custom mix).
    record_count:
        Initial number of loaded records.
    value_size:
        Payload bytes per record (the paper uses 1024-byte values).
    seed:
        Generator seed (deterministic streams).
    """

    def __init__(
        self,
        mix: WorkloadMix,
        record_count: int,
        value_size: int = 1024,
        seed: int = 0,
    ):
        self.mix = mix
        self.record_count = record_count
        self.value_size = value_size
        self.rng = random.Random(f"ycsb/{mix.name}/{seed}")
        self.inserted = record_count
        if mix.distribution == "latest":
            self._chooser = LatestGenerator(record_count, self.rng)
        elif mix.distribution == "uniform":
            self._chooser = UniformGenerator(record_count, self.rng)
        else:
            self._chooser = ScrambledZipfianGenerator(record_count, self.rng)
        self._scan_rng = random.Random(f"ycsb-scan/{mix.name}/{seed}")

    def _next_key(self) -> int:
        # Every chooser tracks keyspace growth (``grow`` on insert),
        # so draws cover the live keyspace; the clamp only guards a
        # custom chooser that ignores growth.
        key = self._chooser.next()
        return key % self.inserted

    def next_operation(self) -> Operation:
        """Draw one operation from the mix."""
        roll = self.rng.random()
        mix = self.mix
        if roll < mix.read:
            return Operation("read", self._next_key())
        roll -= mix.read
        if roll < mix.update:
            return Operation("update", self._next_key(), value_size=self.value_size)
        roll -= mix.update
        if roll < mix.insert:
            key = self.inserted
            self.inserted += 1
            grow = getattr(self._chooser, "grow", None)
            if grow is not None:
                grow()
            return Operation("insert", key, value_size=self.value_size)
        roll -= mix.insert
        if roll < mix.modify:
            return Operation("modify", self._next_key(), value_size=self.value_size)
        length = 1 + self._scan_rng.randrange(mix.max_scan_length)
        return Operation("scan", self._next_key(), scan_length=length)

    def operations(self, count: int) -> Iterator[Operation]:
        """Yield ``count`` operations."""
        for _ in range(count):
            yield self.next_operation()

    def load_keys(self) -> Iterator[int]:
        """Keys for the initial load phase."""
        return iter(range(self.record_count))
