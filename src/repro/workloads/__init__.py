"""Workload generators: YCSB (Table 3) and microbenchmark drivers."""

from .ycsb import (
    LatestGenerator,
    Operation,
    ScrambledZipfianGenerator,
    UniformGenerator,
    WORKLOADS,
    WorkloadMix,
    YcsbWorkload,
    ZipfianGenerator,
)

__all__ = [
    "YcsbWorkload",
    "WorkloadMix",
    "WORKLOADS",
    "Operation",
    "ZipfianGenerator",
    "ScrambledZipfianGenerator",
    "LatestGenerator",
    "UniformGenerator",
]
