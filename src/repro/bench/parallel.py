"""Parallel experiment runner: fan independent simulations across cores.

A single simulation is inherently serial — virtual time is one total
order — but a *sweep* (seeds × configs × workloads) is embarrassingly
parallel: every run owns its own :class:`~repro.sim.kernel.Simulator`
and shares nothing. This module ships runs to a ``multiprocessing``
pool and reassembles results in spec order.

Determinism is the design constraint (DESIGN.md decision 7):

* Every run is described by a :class:`RunSpec` — experiment name,
  frozen parameters, and an explicit seed. Nothing about a run depends
  on which worker executes it or when.
* Per-run seeds come from :func:`derive_seed`, a SHA-256 construction
  over ``(base_seed, index)`` — stable across processes, platforms,
  and Python hash randomization.
* :func:`run_parallel` returns results in the same order as the input
  specs, regardless of completion order, so
  ``run_parallel(specs) == run_serial(specs)`` bit-for-bit
  (asserted by ``tests/unit/test_bench_parallel.py``).

Results are normalized to plain dicts (:func:`normalize_result`) so
comparisons are structural and transport is plain pickling.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import multiprocessing
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..sim.shard import apply_repro_env, capture_repro_env
from .harness import LatencyRecorder, LatencyStats, merge_stats, stats_from_sketch
from .sketch import PercentileSketch

__all__ = [
    "RUNNERS",
    "RunSpec",
    "RunResult",
    "derive_seed",
    "make_specs",
    "resolve_runner",
    "run_serial",
    "run_parallel",
    "merge_run_stats",
    "normalize_result",
    "default_workers",
]


RUNNERS: Dict[str, str] = {
    "experiment": "repro.bench.experiments:run_experiment",
    "chaos": "repro.faults.sweep:run_chaos_point",
    "ycsb": "repro.txn.ycsb:run_ycsb_point",
}
"""Named run targets, as ``module:callable`` import paths.

A :class:`RunSpec` names its runner rather than holding a callable so
specs pickle as plain data and worker processes resolve the target by
import — the pool never ships code, only ``(runner, name, seed,
params)`` tuples. Every runner has the signature
``fn(name, seed=..., **params)`` and must return picklable output.
"""


def resolve_runner(runner: str) -> Callable[..., Any]:
    """Import and return the callable behind a registered runner name."""
    try:
        path = RUNNERS[runner]
    except KeyError:
        known = ", ".join(sorted(RUNNERS))
        raise ValueError(f"unknown runner {runner!r} (known: {known})") from None
    module_name, _, attr = path.partition(":")
    return getattr(importlib.import_module(module_name), attr)


def derive_seed(base_seed: int, index: int) -> int:
    """A stable, well-separated per-run seed.

    SHA-256 over the decimal rendering of ``base_seed/index`` — no
    dependence on process identity, platform word size, or
    ``PYTHONHASHSEED``, and adjacent indices land far apart.
    """
    digest = hashlib.sha256(f"{base_seed}/{index}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation run.

    ``params`` is a sorted tuple of ``(key, value)`` pairs rather than
    a dict so specs are hashable, orderable, and structurally
    comparable. ``runner`` names the :data:`RUNNERS` entry that
    executes the spec — benchmark experiments by default, chaos
    scenario points for fault-plan sweeps.
    """

    experiment: str
    seed: int
    params: Tuple[Tuple[str, Any], ...] = ()
    runner: str = "experiment"

    @classmethod
    def make(
        cls, experiment: str, seed: int, runner: str = "experiment", **params: Any
    ) -> "RunSpec":
        return cls(experiment, seed, tuple(sorted(params.items())), runner)

    @property
    def kwargs(self) -> Dict[str, Any]:
        return dict(self.params)

    def label(self) -> str:
        rendered = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.experiment}[{rendered}] seed={self.seed}"


@dataclass
class RunResult:
    """A completed run: its spec plus the normalized experiment output."""

    spec: RunSpec
    output: Any

    def stats_dict(self) -> Optional[Dict[str, Any]]:
        """The embedded latency-stats dict, if the experiment has one."""
        if isinstance(self.output, dict):
            if "stats" in self.output:
                return self.output["stats"]
            if "p50" in self.output:
                return self.output
        return None


def normalize_result(result: Any) -> Any:
    """Flatten experiment output into comparable plain data.

    Dataclasses (``MicrobenchResult``, ``LatencyStats``, …) become
    nested dicts; everything else is returned as-is. Equality on the
    normalized form is exactly "same experiment outcome".
    """
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        return dataclasses.asdict(result)
    return result


def make_specs(
    experiment: str,
    base_seed: int,
    n_seeds: int,
    grid: Optional[Sequence[Mapping[str, Any]]] = None,
    **common: Any,
) -> List[RunSpec]:
    """Expand ``n_seeds`` × ``grid`` into a flat, ordered spec list.

    ``grid`` is a sequence of parameter dicts (one spec per entry per
    seed); ``common`` parameters apply to every spec. Seeds are derived
    from ``base_seed`` and the flat index, so the spec list — and hence
    every result — is a pure function of the arguments.
    """
    points: Sequence[Mapping[str, Any]] = grid if grid else [{}]
    specs: List[RunSpec] = []
    index = 0
    for seed_index in range(n_seeds):
        del seed_index
        for point in points:
            params = dict(common)
            params.update(point)
            specs.append(
                RunSpec.make(experiment, derive_seed(base_seed, index), **params)
            )
            index += 1
    return specs


def _execute(spec: RunSpec) -> RunResult:
    """Run one spec in the current process (the pool's map target)."""
    fn = resolve_runner(spec.runner)
    output = fn(spec.experiment, seed=spec.seed, **spec.kwargs)
    return RunResult(spec=spec, output=normalize_result(output))


def run_serial(specs: Iterable[RunSpec]) -> List[RunResult]:
    """Execute every spec in-process, in order (the reference path)."""
    return [_execute(spec) for spec in specs]


def default_workers() -> int:
    """Worker count: every core, floor 1."""
    return max(1, os.cpu_count() or 1)


def run_parallel(
    specs: Sequence[RunSpec],
    workers: Optional[int] = None,
    mp_context: Optional[str] = None,
) -> List[RunResult]:
    """Execute specs across a process pool; results in spec order.

    ``workers`` defaults to the machine's core count; a single worker
    (or a single spec) short-circuits to :func:`run_serial`, so callers
    need no special-casing. ``mp_context`` selects the start method
    ("fork"/"spawn"/"forkserver"); the platform default is used
    otherwise — results are identical either way, only startup cost
    differs.
    """
    specs = list(specs)
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers == 1 or len(specs) <= 1:
        return run_serial(specs)
    context = (
        multiprocessing.get_context(mp_context)
        if mp_context
        else multiprocessing.get_context()
    )
    # chunksize=1: sweep points have wildly uneven runtimes (a 10:1
    # tenancy config simulates far more events than an unloaded one),
    # so fine-grained dispatch is what keeps the pool busy.
    # The initializer mirrors every REPRO_* variable into the workers:
    # under spawn (or an env mutated after import) the pool would
    # otherwise silently drop REPRO_FAST_DISPATCH / REPRO_SHARDS, and
    # "flip the whole sweep to the oracle engine with one env var"
    # is the contract INTERNALS documents.
    with context.Pool(
        processes=min(workers, len(specs)),
        initializer=apply_repro_env,
        initargs=(capture_repro_env(),),
    ) as pool:
        return pool.map(_execute, specs, chunksize=1)


def merge_run_stats(results: Iterable[RunResult]) -> LatencyStats:
    """Merge the latency stats of completed runs into one summary.

    When every contributing run carries its raw samples
    (``output["samples_ns"]``, recorded by the latency experiments),
    the merge is **sample-exact**: all samples are folded into one
    :class:`~repro.bench.harness.LatencyRecorder`, so merged
    percentiles equal those of a single run that saw every operation.
    Runs that only ship summaries fall back to the count-weighted
    :func:`~repro.bench.harness.merge_stats` approximation.

    Large runs ship a mergeable percentile sketch instead of raw
    samples (``output["sketch"]``, see :mod:`repro.bench.sketch`);
    when any contributing run did, every part — raw arrays included —
    is folded into one sketch **in result order** (sketch merging is
    deterministic but not associative, so the fixed fold order is what
    keeps merged output independent of worker count) and the summary
    comes from the merged sketch.

    Order-independent on the exact paths. Runs without latency stats
    (e.g. pure-throughput outputs) are skipped; raises if nothing
    remains.
    """
    parts: List[LatencyStats] = []
    sample_lists: List[List[int]] = []
    sketch_parts: List[Any] = []  # per-result: samples list or sketch dict
    any_sketch = False
    exact = True
    for result in results:
        stats = result.stats_dict()
        if not (stats and stats.get("count")):
            continue
        parts.append(LatencyStats(**stats))
        output = result.output if isinstance(result.output, dict) else {}
        samples = output.get("samples_ns")
        sketch = output.get("sketch")
        if sketch:
            any_sketch = True
            exact = False
            sketch_parts.append(sketch)
        elif samples and len(samples) == stats["count"]:
            sample_lists.append(samples)
            sketch_parts.append(samples)
        else:
            exact = False
            sketch_parts.append(None)
    if not parts:
        raise ValueError("no run carried latency stats")
    if exact and sample_lists:
        merged = LatencyRecorder("merged")
        for samples in sample_lists:
            part = LatencyRecorder()
            part.samples_ns = list(samples)
            part._sum_ns = sum(samples)
            merged.merge(part)
        return merged.stats()
    if any_sketch and all(part is not None for part in sketch_parts):
        merged_sketch = PercentileSketch()
        for part in sketch_parts:
            if isinstance(part, dict):
                merged_sketch.merge(PercentileSketch.from_dict(part))
            else:
                merged_sketch.add_samples(part)
        return stats_from_sketch(merged_sketch)
    return merge_stats(parts)
