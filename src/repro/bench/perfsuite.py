"""Performance regression suite: kernel, gWRITE, Fig-8, parallel scaling.

Measures the numbers that bound every experiment in this repo and
appends them to ``BENCH_kernel.json`` at the repo root, so each PR
leaves a perf trajectory the next one can be compared against::

    python -m repro.bench.perfsuite --label "PR 1"     # full suite
    python -m repro.bench.perfsuite --quick            # smoke (CI)
    repro-perf --label nightly                         # console script

Timing discipline: every benchmark runs ``repeats`` times and reports
the **best** run — the one least polluted by scheduler noise — which is
the stable statistic on shared machines. The JSON entry also records
``cpu_count`` and the Python version, because a trajectory is only
comparable on comparable hardware. CI runs this suite in smoke mode and
fails only on errors, never on timing (timing on shared runners is
noise).

The simulated *results* (Fig-8 p50, merged stats) are recorded
alongside wall times: a perf PR that changes them has broken
determinism, and the suite makes that visible immediately.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..sim import Simulator

__all__ = [
    "bench_kernel_events",
    "bench_nic_hotpath",
    "bench_gwrite",
    "bench_fig8",
    "bench_fig8_traced",
    "bench_parallel_scaling",
    "bench_sharded",
    "bench_txn_commit",
    "bench_txn_install",
    "bench_txn_ycsb",
    "bench_txn_scan",
    "annotate_parallel_entry",
    "annotate_sharded_entry",
    "run_suite",
    "write_history",
    "main",
]

BENCH_FILE = "BENCH_kernel.json"


def _best(fn, repeats: int) -> Dict[str, Any]:
    """Run ``fn`` ``repeats`` times, keep the fastest run's payload."""
    best: Optional[Dict[str, Any]] = None
    for _ in range(max(1, repeats)):
        result = fn()
        if best is None or result["wall_s"] < best["wall_s"]:
            best = result
    assert best is not None
    return best


def bench_kernel_events(
    n_procs: int = 200,
    events_per_proc: int = 2000,
    seed: int = 7,
    fast_dispatch: bool = True,
) -> Dict[str, Any]:
    """Pure event-loop throughput: timeout-yielding processes.

    The workload is all kernel — no NIC, no memory model — so the
    events/sec figure isolates dispatch, scheduling and timeout
    pooling. ``fast_dispatch=False`` measures the generic trigger path
    for comparison.
    """
    sim = Simulator(seed=seed, fast_dispatch=fast_dispatch)

    def ticker(index: int):
        delay = 1 + (index % 13)
        for _ in range(events_per_proc):
            yield sim.timeout(delay)

    for index in range(n_procs):
        sim.spawn(ticker(index))
    started = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - started
    events = n_procs * events_per_proc
    return {
        "events": events,
        "wall_s": wall,
        "events_per_sec": events / wall,
        "final_now": sim.now,
    }


def bench_nic_hotpath(
    n_ops: int = 4000, burst: int = 16, seed: int = 5
) -> Dict[str, Any]:
    """Send-engine throughput: bursts of signaled WRITEs on a QP pair.

    Bursts keep several consecutive WQEs ready in the send queue, the
    regime the batched dispatch loop and the chained-execution engine
    rewrite — so this figure moves with NIC-path changes that the pure
    kernel benchmark cannot see.
    """
    from ..hw import Cluster
    from ..rdma import AccessFlags, FLAG_SIGNALED, Opcode, Wqe

    sim = Simulator(seed=seed)
    cluster = Cluster(sim, n_hosts=2)
    a, b = cluster[0], cluster[1]
    qp_a = a.dev.create_qp(name="a")
    qp_b = b.dev.create_qp(name="b")
    qp_a.connect(qp_b)
    buf_a = a.memory.alloc(4096, label="bench_a")
    buf_b = b.memory.alloc(4096, label="bench_b")
    a.dev.reg_mr(buf_a, AccessFlags.ALL_REMOTE)
    mr_b = b.dev.reg_mr(buf_b, AccessFlags.ALL_REMOTE)
    done = 0

    def driver():
        nonlocal done
        while done < n_ops:
            for index in range(burst):
                qp_a.post_send(
                    Wqe(
                        opcode=Opcode.WRITE,
                        flags=FLAG_SIGNALED,
                        length=64,
                        local_addr=buf_a.addr,
                        remote_addr=buf_b.addr + (index % 8) * 64,
                        rkey=mr_b.rkey,
                        wr_id=done + index,
                    )
                )
            target = done + burst
            while done < target:
                event = qp_a.send_cq.next_event()
                if not event.triggered:
                    yield event
                done += len(qp_a.send_cq.poll())

    sim.spawn(driver())
    started = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - started
    return {
        "ops": done,
        "wall_s": wall,
        "wqe_per_sec": done / wall,
        "final_now": sim.now,
    }


def bench_gwrite(
    total_bytes: int = 4 << 20, message_size: int = 4096
) -> Dict[str, Any]:
    """End-to-end gWRITE throughput (the Fig-9 path, shortened)."""
    from .experiments import microbench_throughput

    started = time.perf_counter()
    result = microbench_throughput(
        "hyperloop", message_size=message_size, total_bytes=total_bytes
    )
    wall = time.perf_counter() - started
    n_ops = total_bytes // message_size
    return {
        "ops": n_ops,
        "wall_s": wall,
        "ops_per_sec": n_ops / wall,
        "sim_kops": result.throughput_kops,
    }


def bench_fig8(n_ops: int = 500) -> Dict[str, Any]:
    """Wall-time of the Fig-8 latency microbenchmark (1 KB gWRITE)."""
    from .experiments import microbench_latency

    started = time.perf_counter()
    result = microbench_latency("hyperloop", message_size=1024, n_ops=n_ops)
    wall = time.perf_counter() - started
    return {
        "ops": n_ops,
        "wall_s": wall,
        "p50_us": result.stats.p50,
        "p99_us": result.stats.p99,
    }


def bench_fig8_traced(n_ops: int = 60) -> Dict[str, Any]:
    """A tiny Fig-8 slice run under the tracer (``repro.obs``).

    Returns the simulated result alongside the trace digest so a perf
    entry can record *where* kernel time went, not just how much there
    was. The p50 must match an untraced run of the same configuration —
    tracing never changes simulated results.
    """
    from ..obs import tracing
    from ..obs.report import summary
    from .experiments import microbench_latency

    started = time.perf_counter()
    with tracing() as tracer:
        result = microbench_latency(
            "hyperloop",
            message_size=1024,
            n_ops=n_ops,
            n_cores=8,
            stress_per_core=1,
            pipeline_depth=4,
            rounds=512,
        )
        digest = summary(tracer)
    wall = time.perf_counter() - started
    return {
        "ops": n_ops,
        "wall_s": wall,
        "p50_us": result.stats.p50,
        "top_cost_center": digest["top_cost_center"],
        "dispatches": digest["dispatches"],
        "records": digest["records"],
        "counters": digest["counters"],
    }


def bench_parallel_scaling(
    workers: int = 4, n_runs: int = 4, n_ops: int = 120
) -> Dict[str, Any]:
    """Serial vs pooled wall time over an independent-seed sweep.

    On a multi-core machine the speedup approaches ``min(workers,
    n_runs)``; the entry records ``cpu_count`` so a flat result on a
    single-core container reads as what it is, not a regression.
    """
    from .parallel import make_specs, run_parallel, run_serial

    specs = make_specs(
        "latency",
        base_seed=11,
        n_seeds=n_runs,
        system="hyperloop",
        message_size=1024,
        n_ops=n_ops,
        stress_per_core=1,
        pipeline_depth=4,
        n_cores=4,
        rounds=512,
    )
    started = time.perf_counter()
    serial = run_serial(specs)
    serial_s = time.perf_counter() - started
    started = time.perf_counter()
    parallel = run_parallel(specs, workers=workers)
    parallel_s = time.perf_counter() - started
    return {
        "runs": n_runs,
        "workers": workers,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else 0.0,
        "identical": serial == parallel,
        "wall_s": serial_s + parallel_s,
    }


def bench_sharded(
    hosts: int = 320,
    messages: int = 80,
    shard_counts=(2, 4),
    seed: int = 9,
    group_size: int = 8,
    remote_permille: int = 50,
) -> Dict[str, Any]:
    """The sharded engine vs its single-process oracle on the mesh
    program (:mod:`repro.bench.mesh`).

    Every sharded layout must render byte-identically to the oracle —
    that is asserted, not just recorded. Timing-wise the interesting
    numbers are per-shard event rates, sync-round counts, and (on a
    single-core host) the coordination overhead of the window
    protocol: worker spawn plus one pipe round-trip per conservative
    window.

    The default configuration is group-structured (replication-group
    cliques with a 5% remote tail) rather than uniform all-to-all:
    that is the paper's traffic shape, it exercises the partitioner's
    clique constraint, and it keeps the measurement dominated by the
    protocol rather than by boundary-message shipping.
    """
    from ..sim.shard import run_oracle, run_sharded
    from .mesh import mesh_params

    params = mesh_params(
        hosts=hosts,
        messages=messages,
        group_size=group_size,
        remote_permille=remote_permille,
    )
    started = time.perf_counter()
    oracle = run_oracle("mesh", seed=seed, params=params)
    oracle_s = time.perf_counter() - started
    runs: Dict[int, Dict[str, Any]] = {}
    for shards in shard_counts:
        started = time.perf_counter()
        run = run_sharded("mesh", shards, seed=seed, params=params)
        wall = time.perf_counter() - started
        if run.rendered != oracle.rendered:
            raise AssertionError(
                f"{shards}-shard mesh run diverged from the oracle"
            )
        runs[shards] = {
            "wall_s": wall,
            "sync_rounds": run.sync_rounds,
            "per_shard": [
                {
                    "shard": stats["shard"],
                    "hosts": stats["hosts"],
                    "events": stats["events"],
                    "events_per_sec": (
                        round(stats["events"] / stats["wall_s"])
                        if stats["wall_s"] > 0
                        else 0
                    ),
                }
                for stats in run.shard_stats
            ],
        }
    return {
        "hosts": hosts,
        "messages": messages,
        "group_size": group_size,
        "remote_permille": remote_permille,
        "events": oracle.shard_stats[0]["events"],
        "lookahead_ns": oracle.lookahead_ns,
        "oracle_s": oracle_s,
        "runs": runs,
        "identical": True,
        "wall_s": oracle_s + sum(run["wall_s"] for run in runs.values()),
    }


def bench_txn_commit(n_txns: int = 96, seed: int = 7) -> Dict[str, Any]:
    """Transaction-layer throughput: the SSI workload end to end.

    Every commit is a full multi-group install (WAL append + group
    lock + ExecuteAndAdvance per participant), so commits/sec tracks
    the whole storage stack plus the coordinator's validation path.
    The simulated outcome is recorded alongside: an anomaly, a group
    error, or a missing write-skew abort is broken determinism or
    broken isolation, and the suite fails on it rather than log it.
    """
    from ..txn import run_txn_workload

    started = time.perf_counter()
    report = run_txn_workload(seed=seed, n_txns=n_txns, write_skew_pairs=2)
    wall = time.perf_counter() - started
    if report.errors:
        raise AssertionError(f"txn workload errors: {report.errors}")
    if report.anomaly != "none":
        raise AssertionError(f"serialization anomaly under SSI: {report.anomaly}")
    if report.aborts_ssi < 1:
        raise AssertionError("write-skew pairs ran but no SSI abort was taken")
    return {
        "attempted": report.attempted,
        "commits": report.commits,
        "wall_s": wall,
        "commits_per_sec": report.commits / wall,
        "abort_rate": (
            report.aborts / report.attempted if report.attempted else 0.0
        ),
        "aborts_ssi": report.aborts_ssi,
        "sim_ms": report.sim_ms,
    }


def bench_txn_install(
    n_commits: int = 24, n_groups: int = 3, seed: int = 7
) -> Dict[str, Any]:
    """Multi-group commit latency: parallel installs vs the oracle.

    The same serial schedule of wide commits (every key on every
    group) runs under both install modes; the interesting number is
    the *virtual*-time ratio — overlapped per-group installs must
    approach max-of-groups instead of sum-of-groups. Outcomes are
    asserted bit-identical (version chains and commit counts), and a
    parallel path that fails to beat the sequential oracle is a
    regression, not a data point.
    """
    from ..hw import Cluster
    from ..txn import build_txn_system
    from .harness import run_until

    def run(install):
        sim = Simulator(seed=seed)
        cluster = Cluster(sim, n_hosts=4, n_cores=4)
        coordinator = build_txn_system(
            sim, cluster, n_groups=n_groups, install=install
        )
        keys = [f"b{index:02d}".encode() for index in range(3 * n_groups)]
        finished: Dict[str, int] = {}

        def body(task):
            txn = yield from coordinator.begin(task)
            for key in keys:
                coordinator.write(txn, key, b"init0000")
            yield from coordinator.commit(task, txn)
            start = sim.now
            for round_ in range(n_commits):
                txn = yield from coordinator.begin(task)
                for key in keys:
                    value = yield from coordinator.read(task, txn, key)
                    coordinator.write(
                        txn, key, value[:4] + round_.to_bytes(4, "little")
                    )
                yield from coordinator.commit(task, txn)
            finished["ns"] = sim.now - start

        cluster[0].os.spawn(body, "bench")
        run_until(sim, lambda: "ns" in finished, deadline_ms=120_000)
        chains = {
            key: [(version.txid, version.value) for version in chain]
            for store in coordinator.stores
            for key, chain in store.versions.items()
        }
        return finished["ns"], coordinator.commits, chains

    started = time.perf_counter()
    seq_ns, seq_commits, seq_chains = run("sequential")
    par_ns, par_commits, par_chains = run("parallel")
    wall = time.perf_counter() - started
    if (par_commits, par_chains) != (seq_commits, seq_chains):
        raise AssertionError("parallel installs diverged from the oracle")
    if par_ns >= seq_ns:
        raise AssertionError(
            f"parallel installs not faster: {par_ns}ns vs {seq_ns}ns"
        )
    return {
        "commits": seq_commits,
        "groups": n_groups,
        "wall_s": wall,
        "sequential_ms": seq_ns / 1e6,
        "parallel_ms": par_ns / 1e6,
        "latency_ratio": par_ns / seq_ns,
        "identical": True,
    }


def bench_txn_ycsb(n_txns: int = 36, seed: int = 7) -> Dict[str, Any]:
    """Transactional YCSB mix A end to end (Zipfian contention + retry).

    Records the simulated commit throughput, abort rate and retry
    amplification alongside wall time; an anomaly or group error fails
    the suite outright.
    """
    from ..txn import run_ycsb_mix

    started = time.perf_counter()
    report = run_ycsb_mix(mix="A", seed=seed, n_txns=n_txns)
    wall = time.perf_counter() - started
    if report.errors:
        raise AssertionError(f"ycsb errors: {report.errors}")
    if report.anomaly != "none":
        raise AssertionError(f"serialization anomaly under SSI: {report.anomaly}")
    return {
        "committed": report.committed,
        "attempts": report.attempts,
        "wall_s": wall,
        "txns_per_sec": report.committed / wall,
        "sim_throughput_tps": report.throughput_tps,
        "abort_rate": report.abort_rate(),
        "amplification": report.amplification,
        "sim_ms": report.sim_ms,
    }


def bench_txn_scan(n_txns: int = 36, seed: int = 7) -> Dict[str, Any]:
    """Transactional YCSB mix E: snapshot scans + inserts under SSI.

    Every scan walks the merged per-group ordered indexes and
    cross-checks each visible key's durable slot, so scans/sec tracks
    the range-read path end to end — including the phantom edges that
    concurrent inserts raise. An anomaly, a group error, or a scan
    workload that never exercises a scan fails the suite outright.
    """
    from ..txn import run_ycsb_mix

    started = time.perf_counter()
    report = run_ycsb_mix(mix="E", seed=seed, n_txns=n_txns)
    wall = time.perf_counter() - started
    if report.errors:
        raise AssertionError(f"ycsb E errors: {report.errors}")
    if report.anomaly != "none":
        raise AssertionError(f"serialization anomaly under SSI: {report.anomaly}")
    if not report.scans:
        raise AssertionError("mix E ran but planned no scans")
    return {
        "committed": report.committed,
        "attempts": report.attempts,
        "scans": report.scans,
        "inserts": report.inserts,
        "wall_s": wall,
        "scans_per_sec": report.scans / wall,
        "sim_throughput_tps": report.throughput_tps,
        "abort_rate": report.abort_rate(),
        "aborts_phantom": report.aborts_phantom,
        "amplification": report.amplification,
        "sim_ms": report.sim_ms,
    }


def annotate_sharded_entry(
    sharded: Dict[str, Any], cpu_count: Optional[int]
) -> Dict[str, Any]:
    """Build the history entry's ``sharded`` block.

    Same discipline as :func:`annotate_parallel_entry`: a speedup is
    only meaningful with more than one CPU. On a single-core host the
    shards time-share the core, so the honest number is *coordination
    overhead* — sharded wall over oracle wall, minus one — which
    measures what the window protocol costs, and is what the < 20%
    acceptance bar applies to.
    """
    entry: Dict[str, Any] = {
        "hosts": sharded["hosts"],
        "messages": sharded["messages"],
        "group_size": sharded.get("group_size", 1),
        "remote_permille": sharded.get("remote_permille", 100),
        "events": sharded["events"],
        "lookahead_ns": sharded["lookahead_ns"],
        "oracle_s": round(sharded["oracle_s"], 3),
        "identical": sharded["identical"],
        "cpu_count": cpu_count,
        "shards": {},
    }
    single_core = (cpu_count or 1) <= 1
    for shards, run in sorted(sharded["runs"].items()):
        block = {
            "wall_s": round(run["wall_s"], 3),
            "sync_rounds": run["sync_rounds"],
            "speedup": round(sharded["oracle_s"] / run["wall_s"], 2)
            if run["wall_s"] > 0
            else 0.0,
            "per_shard": run["per_shard"],
        }
        if single_core:
            block["coordination_overhead"] = round(
                run["wall_s"] / sharded["oracle_s"] - 1.0, 3
            )
        entry["shards"][str(shards)] = block
    if single_core:
        entry["speedup_flag"] = (
            "single-core host: shard workers time-share one CPU, so speedup "
            "measures window-protocol overhead, not parallel scaling; see "
            "coordination_overhead per shard count"
        )
    return entry


def annotate_parallel_entry(
    scaling: Dict[str, Any], cpu_count: Optional[int]
) -> Dict[str, Any]:
    """Build the history entry's ``parallel`` block.

    Records ``cpu_count`` next to the speedup and *flags* (never
    asserts on) a scaling number measured on a single-core host: there
    the pooled workers time-share one CPU, so "speedup" measures pool
    overhead, not scaling — the PR-1 0.36x entry read as a regression
    for exactly this reason.
    """
    entry = {
        "runs": scaling["runs"],
        "workers": scaling["workers"],
        "serial_s": round(scaling["serial_s"], 2),
        "parallel_s": round(scaling["parallel_s"], 2),
        "speedup": round(scaling["speedup"], 2),
        "cpu_count": cpu_count,
    }
    if (cpu_count or 1) <= 1:
        entry["speedup_flag"] = (
            "single-core host: workers time-share one CPU, so this number "
            "measures pool overhead, not parallel scaling"
        )
    return entry


def run_suite(
    quick: bool = False, repeats: int = 3, trace: bool = False
) -> Dict[str, Any]:
    """Run every benchmark; returns one history entry (no I/O)."""
    if quick:
        repeats = 1
    entry: Dict[str, Any] = {
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }

    kernel = _best(
        lambda: bench_kernel_events(
            n_procs=50 if quick else 200,
            events_per_proc=400 if quick else 2000,
        ),
        repeats,
    )
    entry["kernel_events_per_sec"] = round(kernel["events_per_sec"])
    entry["kernel_events"] = kernel["events"]

    nic = _best(
        lambda: bench_nic_hotpath(n_ops=800 if quick else 4000),
        repeats,
    )
    entry["nic_wqe_per_sec"] = round(nic["wqe_per_sec"])

    gwrite = _best(
        lambda: bench_gwrite(total_bytes=(1 << 20) if quick else (4 << 20)),
        repeats,
    )
    entry["gwrite_ops_per_sec"] = round(gwrite["ops_per_sec"], 1)
    entry["gwrite_sim_kops"] = round(gwrite["sim_kops"], 1)

    fig8 = _best(lambda: bench_fig8(n_ops=100 if quick else 500), repeats)
    entry["fig8_wall_s"] = round(fig8["wall_s"], 3)
    entry["fig8_p50_us"] = round(fig8["p50_us"], 3)
    entry["fig8_p99_us"] = round(fig8["p99_us"], 3)

    if not quick:
        scaling = bench_parallel_scaling()
        if not scaling["identical"]:
            raise AssertionError(
                "parallel runner diverged from serial reference"
            )
        entry["parallel"] = annotate_parallel_entry(scaling, entry["cpu_count"])

    sharded = _best(
        lambda: bench_sharded(
            hosts=48 if quick else 320,
            messages=30 if quick else 80,
            group_size=6 if quick else 8,
            shard_counts=(2,) if quick else (2, 4),
        ),
        1 if quick else repeats,
    )
    entry["sharded"] = annotate_sharded_entry(sharded, entry["cpu_count"])

    txn = _best(
        lambda: bench_txn_commit(n_txns=24 if quick else 96),
        repeats,
    )
    entry["txn_commits_per_sec"] = round(txn["commits_per_sec"], 1)
    entry["txn_attempted"] = txn["attempted"]
    entry["txn_commits"] = txn["commits"]
    entry["txn_abort_rate"] = round(txn["abort_rate"], 3)
    entry["txn_sim_ms"] = round(txn["sim_ms"], 3)

    install = _best(
        lambda: bench_txn_install(n_commits=8 if quick else 24),
        repeats,
    )
    entry["txn_install_sequential_ms"] = round(install["sequential_ms"], 3)
    entry["txn_install_parallel_ms"] = round(install["parallel_ms"], 3)
    entry["txn_install_latency_ratio"] = round(install["latency_ratio"], 3)

    ycsb = _best(
        lambda: bench_txn_ycsb(n_txns=12 if quick else 36),
        repeats,
    )
    entry["ycsb_committed"] = ycsb["committed"]
    entry["ycsb_attempts"] = ycsb["attempts"]
    entry["ycsb_sim_throughput_tps"] = round(ycsb["sim_throughput_tps"])
    entry["ycsb_abort_rate"] = round(ycsb["abort_rate"], 3)
    entry["ycsb_amplification"] = round(ycsb["amplification"], 3)

    scan = _best(
        lambda: bench_txn_scan(n_txns=12 if quick else 36),
        repeats,
    )
    entry["scan_committed"] = scan["committed"]
    entry["scan_count"] = scan["scans"]
    entry["scan_inserts"] = scan["inserts"]
    entry["scans_per_sec"] = round(scan["scans_per_sec"], 1)
    entry["scan_abort_rate"] = round(scan["abort_rate"], 3)
    entry["scan_aborts_phantom"] = scan["aborts_phantom"]
    entry["scan_sim_ms"] = round(scan["sim_ms"], 3)

    if trace:
        traced = bench_fig8_traced(n_ops=30 if quick else 60)
        entry["trace"] = {
            "ops": traced["ops"],
            "p50_us": round(traced["p50_us"], 3),
            "top_cost_center": traced["top_cost_center"],
            "dispatches": traced["dispatches"],
            "records": traced["records"],
        }
    return entry


def write_history(entry: Dict[str, Any], path: Path) -> Dict[str, Any]:
    """Append ``entry`` to the JSON history at ``path`` (kept sorted by
    insertion: oldest first). Returns the full document."""
    if path.exists():
        document = json.loads(path.read_text())
    else:
        document = {"benchmark": "repro kernel perf suite", "history": []}
    document["history"].append(entry)
    path.write_text(json.dumps(document, indent=2) + "\n")
    return document


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-perf", description="kernel/experiment perf suite"
    )
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--label", default="", help="history entry label")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--trace",
        action="store_true",
        help="annotate the entry with a traced Fig-8 slice (repro.obs)",
    )
    parser.add_argument(
        "--output",
        default=BENCH_FILE,
        help=f"history file (default ./{BENCH_FILE}); '-' prints only",
    )
    args = parser.parse_args(argv)

    entry: Dict[str, Any] = {}
    if args.label:
        entry["label"] = args.label
    entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    entry.update(run_suite(quick=args.quick, repeats=args.repeats, trace=args.trace))

    print(json.dumps(entry, indent=2))
    if args.output != "-":
        path = Path(args.output)
        write_history(entry, path)
        history = json.loads(path.read_text())["history"]
        if len(history) >= 2:
            base, last = history[0], history[-1]
            ratio = last["kernel_events_per_sec"] / base["kernel_events_per_sec"]
            print(
                f"kernel events/s: {base['kernel_events_per_sec']:,} -> "
                f"{last['kernel_events_per_sec']:,} ({ratio:.2f}x vs "
                f"{base.get('label', 'first entry')!r})",
                file=sys.stderr,
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
