"""Benchmark harness utilities."""

from .harness import (
    CpuMeter,
    LatencyRecorder,
    LatencyStats,
    format_table,
    merge_stats,
    run_until,
)
from .parallel import (
    RunResult,
    RunSpec,
    derive_seed,
    make_specs,
    merge_run_stats,
    run_parallel,
    run_serial,
)

__all__ = [
    "LatencyRecorder",
    "LatencyStats",
    "CpuMeter",
    "run_until",
    "format_table",
    "merge_stats",
    "RunSpec",
    "RunResult",
    "derive_seed",
    "make_specs",
    "run_serial",
    "run_parallel",
    "merge_run_stats",
]
