"""Benchmark harness utilities."""

from .harness import CpuMeter, LatencyRecorder, LatencyStats, format_table, run_until

__all__ = [
    "LatencyRecorder",
    "LatencyStats",
    "CpuMeter",
    "run_until",
    "format_table",
]
