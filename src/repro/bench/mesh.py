"""Mesh message-exchange program for the sharded engine.

A host-per-clique all-to-all workload built to be *partitionable
without observable reordering*: every host precomputes its send
schedule from a label-derived RNG stream (identical whichever shard
builds it), receives into a passive inbox, and only acts on inbox
entries **strictly older than the current time** in a canonical sorted
order. Same-timestamp interleaving — the one degree of freedom a
sharded run has relative to the single-process oracle — is therefore
unobservable, and every report field (logs, counters, finish times)
is bit-identical at any shard count. That property is what
``tests/integration/test_shard_equivalence.py`` asserts and what the
``shard-equivalence`` CI job byte-diffs.

The program doubles as the scaling benchmark for ``bench --shards``:
hosts are independent event sources, so per-shard event rates and
sync-round counts measure exactly the coordination overhead of the
conservative window protocol (see ``EXPERIMENTS.md``).
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict, List, Tuple

from ..hw.network import Fabric
from ..sim.shard import Clique, ShardProgram
from .harness import format_table

__all__ = ["MESH_PROGRAM", "mesh_params"]

_ACK_BYTES = 32


def mesh_params(
    hosts: int = 12,
    messages: int = 40,
    gap_min_ns: int = 300,
    gap_max_ns: int = 900,
    poll_gap_ns: int = 700,
    group_size: int = 1,
    remote_permille: int = 100,
) -> Dict[str, Any]:
    """Canonical parameter dict (all knobs explicit, so renders and
    digests are a pure function of it).

    ``group_size`` clusters hosts into replication-group-style cliques:
    a host sends within its group except with probability
    ``remote_permille``/1000, when it picks a uniform host outside it.
    ``group_size=1`` degenerates to the uniform all-to-all mesh (every
    destination is "remote"), the worst case for shard locality.
    """
    if hosts < 2:
        raise ValueError("mesh needs at least 2 hosts")
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    if not 0 <= remote_permille <= 1000:
        raise ValueError("remote_permille must be in [0, 1000]")
    return {
        "hosts": hosts,
        "messages": messages,
        "gap_min_ns": gap_min_ns,
        "gap_max_ns": gap_max_ns,
        "poll_gap_ns": poll_gap_ns,
        "group_size": group_size,
        "remote_permille": remote_permille,
    }


def _host_names(params: Dict[str, Any]) -> List[str]:
    return [f"n{index:03d}" for index in range(params["hosts"])]


def _group_members(params: Dict[str, Any]) -> List[List[str]]:
    names = _host_names(params)
    size = params.get("group_size", 1)
    return [names[start : start + size] for start in range(0, len(names), size)]


def _cliques(params: Dict[str, Any]) -> List[Clique]:
    # One clique per replication group: the partitioner keeps a group's
    # hosts on one shard, so only the remote_permille tail of traffic
    # ever crosses a shard boundary.
    return [
        Clique(f"g{index:03d}", tuple(members), len(members))
        for index, members in enumerate(_group_members(params))
    ]


def _schedule(seed: int, name: str, group: List[str], remote: List[str], params):
    """One host's full send schedule, from its label-derived stream.

    Depends only on ``(seed, name, params)`` — never on shard layout
    or arrival order — and is computed for *every* host on *every*
    shard so expected receive counts are known locally. The stream is
    the same ``Simulator.rng`` label construction, spelled out so the
    schedule is computable without a simulator (the prepare hook runs
    before any shard's simulator exists).
    """
    rng = random.Random(f"{seed}/mesh/{name}")
    local = [other for other in group if other != name]
    permille = params.get("remote_permille", 100)
    entries = []
    t = 0
    for index in range(params["messages"]):
        t += rng.randrange(params["gap_min_ns"], params["gap_max_ns"] + 1)
        if local and remote:
            pool = remote if rng.randrange(1000) < permille else local
        else:
            pool = remote or local
        dst = pool[rng.randrange(len(pool))]
        nbytes = rng.randrange(64, 1024)
        entries.append((t, dst, f"{name}:{index}", nbytes))
    return entries


class _Node:
    """One mesh host: passive inbox, drain-strictly-before-now loop."""

    __slots__ = (
        "name", "port", "schedule", "expected", "inbox", "log",
        "sent", "served", "acked", "finish_ns",
    )

    def __init__(self, name, port, schedule, expected):
        self.name = name
        self.port = port
        self.schedule = schedule
        self.expected = expected
        self.inbox: list = []
        self.log: List[str] = []
        self.sent = 0
        self.served = 0
        self.acked = 0
        self.finish_ns = 0

    def on_receive(self, src: str, payload) -> None:
        # Delivery-time work is append-only: nothing is read, sent, or
        # decided here, so the order of same-timestamp deliveries
        # cannot influence anything observable.
        self.inbox.append((self.port.fabric.sim.now, payload[0], src, payload[1]))

    def run(self, sim, fabric, poll_gap):
        cursor = 0
        while True:
            now = sim.now
            # Drain every arrival strictly older than now, in canonical
            # order — ties across sources resolve identically whatever
            # order the fabric (or a peer shard) appended them in.
            due = sorted(
                (entry for entry in self.inbox if entry[0] < now),
                key=lambda e: (e[0], e[1], e[2], e[3]),
            )
            if due:
                self.inbox = [entry for entry in self.inbox if entry[0] >= now]
                for ts, kind, src, msg_id in due:
                    if kind == "req":
                        self.log.append(f"{ts} recv {src} {msg_id}")
                        self.served += 1
                        fabric.send(self.name, src, ("ack", msg_id), _ACK_BYTES)
                    else:
                        self.log.append(f"{ts} ack {msg_id}")
                        self.acked += 1
            while cursor < len(self.schedule) and self.schedule[cursor][0] <= now:
                _t, dst, msg_id, nbytes = self.schedule[cursor]
                cursor += 1
                self.log.append(f"{now} sent {dst} {msg_id}")
                self.sent += 1
                fabric.send(self.name, dst, ("req", msg_id, nbytes), nbytes)
            if (
                self.sent == len(self.schedule)
                and self.acked == len(self.schedule)
                and self.served == self.expected
            ):
                self.finish_ns = now
                return
            # Next wakeup depends only on the clock and the schedule —
            # never on arrivals — so the wake sequence is fixed.
            if cursor < len(self.schedule):
                delay = min(self.schedule[cursor][0] - now, poll_gap)
            else:
                delay = poll_gap
            yield sim.timeout(max(1, delay))


_SCHEDULE_CACHE: Dict[Tuple[int, Tuple], Tuple[Dict, Dict]] = {}


def _schedules(seed: int, params: Dict[str, Any]) -> Tuple[Dict, Dict]:
    """All hosts' schedules plus expected receive counts, memoized.

    Every shard needs every host's schedule (a node's termination
    condition counts expected requests), so without memoization an
    N-shard run recomputes the full set N times. The coordinator
    primes this cache via the program's ``prepare`` hook before
    forking, and workers inherit it copy-on-write. One entry is kept:
    a run uses exactly one ``(seed, params)`` point.
    """
    key = (seed, tuple(sorted(params.items())))
    cached = _SCHEDULE_CACHE.get(key)
    if cached is None:
        groups = _group_members(params)
        group_of = {name: members for members in groups for name in members}
        all_hosts = _host_names(params)
        remote_of = {
            id(members): [o for o in all_hosts if o not in members]
            for members in groups
        }
        schedules = {
            name: _schedule(
                seed, name, group_of[name], remote_of[id(group_of[name])], params
            )
            for name in all_hosts
        }
        expected = {name: 0 for name in all_hosts}
        for entries in schedules.values():
            for _t, dst, _msg_id, _nbytes in entries:
                expected[dst] += 1
        cached = (schedules, expected)
        _SCHEDULE_CACHE.clear()
        _SCHEDULE_CACHE[key] = cached
    return cached


def _prepare(seed: int, params: Dict[str, Any]) -> None:
    _schedules(seed, params)


def _build(sim, local: List[str], all_hosts: List[str], params: Dict[str, Any]):
    fabric = Fabric(sim)
    local_set = set(local)
    for name in all_hosts:
        if name not in local_set:
            fabric.attach_boundary(name)
    schedules, expected = _schedules(sim.seed, params)
    nodes = {}
    for name in local:
        port = fabric.attach(name)
        node = _Node(name, port, schedules[name], expected[name])
        port.receive = node.on_receive
        nodes[name] = node
        sim.spawn(node.run(sim, fabric, params["poll_gap_ns"]), name=f"mesh.{name}")
    return fabric, {"nodes": nodes, "fabric": fabric}


def _report(state) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for name, node in state["nodes"].items():
        digest = hashlib.sha256("\n".join(node.log).encode()).hexdigest()
        out[name] = {
            "sent": node.sent,
            "served": node.served,
            "acked": node.acked,
            "finish_ns": node.finish_ns,
            "digest": digest,
            "tx": node.port.tx_messages,
            "tx_bytes": node.port.tx_bytes,
            "rx": node.port.rx_messages,
        }
    return out


def _merge(reports: List[Dict[str, Any]]) -> Dict[str, Any]:
    merged: Dict[str, Any] = {}
    for report in reports:
        merged.update(report)  # hosts are disjoint across shards
    return merged


def _render(report: Dict[str, Any], params: Dict[str, Any]) -> str:
    columns = ["host", "sent", "served", "acked", "finish_ns", "tx_bytes", "digest"]
    rows = []
    for name in sorted(report):
        row = report[name]
        rows.append(
            [
                name,
                row["sent"],
                row["served"],
                row["acked"],
                row["finish_ns"],
                row["tx_bytes"],
                row["digest"][:12],
            ]
        )
    title = (
        f"mesh hosts={params['hosts']} messages={params['messages']} "
        f"group={params.get('group_size', 1)} "
        f"remote={params.get('remote_permille', 100)}/1000 "
        f"gap={params['gap_min_ns']}-{params['gap_max_ns']}ns"
    )
    table = format_table(title, columns, rows)
    global_digest = hashlib.sha256(
        "\n".join(report[name]["digest"] for name in sorted(report)).encode()
    ).hexdigest()
    return f"{table}\nglobal digest: {global_digest}"


MESH_PROGRAM = ShardProgram(
    name="mesh",
    cliques=_cliques,
    build=_build,
    report=_report,
    merge=_merge,
    render=_render,
    prepare=_prepare,
)
