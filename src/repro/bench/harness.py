"""Benchmark harness: recorders, runners, and table formatting.

Every experiment in ``benchmarks/`` is expressed with these pieces:
build a cluster, spawn client tasks that record per-op latencies into
a :class:`LatencyRecorder`, drive the simulation with
:func:`run_until`, and print paper-style rows with
:func:`format_table`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..sim import MS, Simulator
from .sketch import SKETCH_THRESHOLD, PercentileSketch

__all__ = [
    "LatencyRecorder",
    "LatencyStats",
    "merge_stats",
    "stats_from_sketch",
    "run_until",
    "format_table",
    "CpuMeter",
]


@dataclass
class LatencyStats:
    """Summary statistics of a latency sample, in microseconds."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    def row(self) -> Dict[str, float]:
        return {
            "n": self.count,
            "avg_us": round(self.mean, 2),
            "p50_us": round(self.p50, 2),
            "p95_us": round(self.p95, 2),
            "p99_us": round(self.p99, 2),
        }


class LatencyRecorder:
    """Collects per-operation latencies (nanoseconds in, µs out).

    ``stats()`` sorts at most once per batch of new samples: the sorted
    µs array is cached and reused across calls (and across the five
    percentile extractions within one call), and the running integer
    sum keeps ``mean`` O(1) and exact regardless of recording order.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.samples_ns: List[int] = []
        self._sum_ns = 0
        self._sorted_us: Optional[List[float]] = None

    def record(self, latency_ns: int) -> None:
        self.samples_ns.append(latency_ns)
        self._sum_ns += latency_ns
        self._sorted_us = None

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's samples into this one.

        Sample-exact: stats of the merged recorder equal stats of one
        recorder fed every sample, in any merge order.
        """
        self.samples_ns.extend(other.samples_ns)
        self._sum_ns += other._sum_ns
        self._sorted_us = None

    def __len__(self) -> int:
        return len(self.samples_ns)

    @staticmethod
    def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
        """Linear-interpolated percentile (same convention as numpy)."""
        if not sorted_values:
            return math.nan
        if len(sorted_values) == 1:
            return sorted_values[0]
        rank = fraction * (len(sorted_values) - 1)
        low = int(math.floor(rank))
        high = min(low + 1, len(sorted_values) - 1)
        weight = rank - low
        # a + (b - a) * w rather than a*(1-w) + b*w: exact when a == b,
        # so percentiles stay monotone under floating point.
        return sorted_values[low] + (sorted_values[high] - sorted_values[low]) * weight

    def stats(self) -> LatencyStats:
        """Summarize (µs). Raises if nothing was recorded."""
        if not self.samples_ns:
            raise ValueError(f"recorder {self.name!r} has no samples")
        values = self._sorted_us
        if values is None or len(values) != len(self.samples_ns):
            values = self._sorted_us = sorted(
                sample / 1000.0 for sample in self.samples_ns
            )
        # Integer ns sum (exact in any order), one float division.
        return LatencyStats(
            count=len(values),
            mean=self._sum_ns / 1000.0 / len(values),
            p50=self._percentile(values, 0.50),
            p95=self._percentile(values, 0.95),
            p99=self._percentile(values, 0.99),
            minimum=values[0],
            maximum=values[-1],
        )

    def ship(self, threshold: int = SKETCH_THRESHOLD):
        """What a worker process sends home: ``(samples_ns, sketch)``.

        Small runs (≤ ``threshold`` samples) ship the raw array and
        ``None`` — downstream merging stays sample-exact. Larger runs
        ship an empty array plus a
        :class:`~repro.bench.sketch.PercentileSketch` dict, a few
        hundred floats no matter how many operations ran.
        """
        if len(self.samples_ns) <= threshold:
            return list(self.samples_ns), None
        return [], PercentileSketch.from_samples(self.samples_ns).to_dict()


def merge_stats(parts: Iterable[LatencyStats]) -> LatencyStats:
    """Combine per-run :class:`LatencyStats` into one summary.

    ``count``, ``mean``, ``minimum`` and ``maximum`` are exact.
    Percentiles cannot be recovered exactly from summaries, so they are
    count-weighted means of the per-run percentiles — exact when the
    runs are homogeneous, an approximation otherwise (merge at the
    :class:`LatencyRecorder` level when samples are available).

    Order-independent by construction: every reduction is either
    ``min``/``max`` or an exactly-rounded :func:`math.fsum` over inputs
    sorted before summing.
    """
    stats = sorted(parts, key=lambda s: (s.count, s.mean, s.p50, s.p95, s.p99))
    if not stats:
        raise ValueError("merge_stats() needs at least one LatencyStats")
    total = sum(s.count for s in stats)
    if total <= 0:
        raise ValueError("merge_stats() needs at least one sample")

    def weighted(extract: Callable[[LatencyStats], float]) -> float:
        return math.fsum(s.count * extract(s) for s in stats) / total

    return LatencyStats(
        count=total,
        mean=weighted(lambda s: s.mean),
        p50=weighted(lambda s: s.p50),
        p95=weighted(lambda s: s.p95),
        p99=weighted(lambda s: s.p99),
        minimum=min(s.minimum for s in stats),
        maximum=max(s.maximum for s in stats),
    )


def stats_from_sketch(sketch: PercentileSketch) -> LatencyStats:
    """Summarize a (merged) sketch as :class:`LatencyStats` (µs).

    ``count``/``mean``/``minimum``/``maximum`` are exact (the sketch
    tracks them outside the centroids); percentiles are the sketch's
    interpolated estimates.
    """
    if sketch.count == 0:
        raise ValueError("sketch has no samples")
    return LatencyStats(
        count=sketch.count,
        mean=sketch.mean / 1000.0,
        p50=sketch.percentile(0.50) / 1000.0,
        p95=sketch.percentile(0.95) / 1000.0,
        p99=sketch.percentile(0.99) / 1000.0,
        minimum=sketch.minimum / 1000.0,
        maximum=sketch.maximum / 1000.0,
    )


class CpuMeter:
    """Utilization of a set of OSes over a measurement window."""

    def __init__(self, oses):
        self.oses = list(oses)
        self._t0 = None
        self._busy0 = None

    def start(self, sim: Simulator) -> None:
        self._t0 = sim.now
        self._busy0 = [os_.busy_ns for os_ in self.oses]

    def utilization(self, sim: Simulator) -> float:
        """Mean core utilization across the metered hosts since start."""
        elapsed = sim.now - self._t0
        if elapsed <= 0:
            return 0.0
        total = 0.0
        for os_, busy0 in zip(self.oses, self._busy0):
            enabled = sum(1 for core in os_.cores if core.enabled)
            total += (os_.busy_ns - busy0) / (elapsed * enabled)
        return total / len(self.oses)


def run_until(
    sim: Simulator,
    done: Callable[[], bool],
    deadline_ms: int = 10_000,
    chunk_ms: float = 5.0,
) -> None:
    """Advance the simulation until ``done()`` or the deadline.

    Long-lived background processes (stress tenants, daemons) never
    drain the event queue, so experiments advance in chunks and stop
    as soon as the workload completes.
    """
    deadline = sim.now + deadline_ms * MS
    chunk = int(chunk_ms * MS)
    while not done() and sim.now < deadline:
        sim.run(until=min(sim.now + chunk, deadline))
    if not done():
        raise TimeoutError(
            f"experiment did not complete within {deadline_ms} ms of virtual time"
        )


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Iterable[Sequence],
) -> str:
    """Render an aligned text table (paper-style output)."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(col) for col in columns]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
