"""Benchmark harness: recorders, runners, and table formatting.

Every experiment in ``benchmarks/`` is expressed with these pieces:
build a cluster, spawn client tasks that record per-op latencies into
a :class:`LatencyRecorder`, drive the simulation with
:func:`run_until`, and print paper-style rows with
:func:`format_table`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence

from ..sim import MS, Simulator

__all__ = [
    "LatencyRecorder",
    "LatencyStats",
    "run_until",
    "format_table",
    "CpuMeter",
]


@dataclass
class LatencyStats:
    """Summary statistics of a latency sample, in microseconds."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    def row(self) -> Dict[str, float]:
        return {
            "n": self.count,
            "avg_us": round(self.mean, 2),
            "p50_us": round(self.p50, 2),
            "p95_us": round(self.p95, 2),
            "p99_us": round(self.p99, 2),
        }


class LatencyRecorder:
    """Collects per-operation latencies (nanoseconds in, µs out)."""

    def __init__(self, name: str = ""):
        self.name = name
        self.samples_ns: List[int] = []

    def record(self, latency_ns: int) -> None:
        self.samples_ns.append(latency_ns)

    def __len__(self) -> int:
        return len(self.samples_ns)

    @staticmethod
    def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
        """Linear-interpolated percentile (same convention as numpy)."""
        if not sorted_values:
            return math.nan
        if len(sorted_values) == 1:
            return sorted_values[0]
        rank = fraction * (len(sorted_values) - 1)
        low = int(math.floor(rank))
        high = min(low + 1, len(sorted_values) - 1)
        weight = rank - low
        # a + (b - a) * w rather than a*(1-w) + b*w: exact when a == b,
        # so percentiles stay monotone under floating point.
        return sorted_values[low] + (sorted_values[high] - sorted_values[low]) * weight

    def stats(self) -> LatencyStats:
        """Summarize (µs). Raises if nothing was recorded."""
        if not self.samples_ns:
            raise ValueError(f"recorder {self.name!r} has no samples")
        values = sorted(sample / 1000.0 for sample in self.samples_ns)
        return LatencyStats(
            count=len(values),
            mean=sum(values) / len(values),
            p50=self._percentile(values, 0.50),
            p95=self._percentile(values, 0.95),
            p99=self._percentile(values, 0.99),
            minimum=values[0],
            maximum=values[-1],
        )


class CpuMeter:
    """Utilization of a set of OSes over a measurement window."""

    def __init__(self, oses):
        self.oses = list(oses)
        self._t0 = None
        self._busy0 = None

    def start(self, sim: Simulator) -> None:
        self._t0 = sim.now
        self._busy0 = [os_.busy_ns for os_ in self.oses]

    def utilization(self, sim: Simulator) -> float:
        """Mean core utilization across the metered hosts since start."""
        elapsed = sim.now - self._t0
        if elapsed <= 0:
            return 0.0
        total = 0.0
        for os_, busy0 in zip(self.oses, self._busy0):
            enabled = sum(1 for core in os_.cores if core.enabled)
            total += (os_.busy_ns - busy0) / (elapsed * enabled)
        return total / len(self.oses)


def run_until(
    sim: Simulator,
    done: Callable[[], bool],
    deadline_ms: int = 10_000,
    chunk_ms: float = 5.0,
) -> None:
    """Advance the simulation until ``done()`` or the deadline.

    Long-lived background processes (stress tenants, daemons) never
    drain the event queue, so experiments advance in chunks and stop
    as soon as the workload completes.
    """
    deadline = sim.now + deadline_ms * MS
    chunk = int(chunk_ms * MS)
    while not done() and sim.now < deadline:
        sim.run(until=min(sim.now + chunk, deadline))
    if not done():
        raise TimeoutError(
            f"experiment did not complete within {deadline_ms} ms of virtual time"
        )


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Iterable[Sequence],
) -> str:
    """Render an aligned text table (paper-style output)."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(col) for col in columns]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
