"""Mergeable percentile sketch for cross-process latency shipping.

Sweep and shard workers used to pickle every raw latency sample back
to the coordinator (``MicrobenchResult.samples_ns``); at shard-count ×
seed × config scale that is megabytes of ints per sweep. This module
is the classic t-digest construction (Dunning & Ertl) reduced to what
the harness needs: a deterministic, mergeable summary whose tail
percentiles are accurate to a fraction of a percent of rank.

Policy (wired in :mod:`repro.bench.harness` /
:mod:`repro.bench.parallel`): runs with at most
:data:`SKETCH_THRESHOLD` samples still ship the raw array and merge
sample-exactly; larger runs ship a sketch and the merged summary is a
sketch merge. Either way the merge is performed in spec order — sketch
merging is deterministic but not associative, so a fixed fold order is
what keeps a sweep's merged stats independent of worker count.

No randomness anywhere: compression is a single pass over
weight-sorted centroids with the standard ``4·N·δ·q(1−q)`` size bound,
so the same samples always produce byte-identical sketches.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Sequence, Tuple

__all__ = ["PercentileSketch", "SKETCH_THRESHOLD"]

SKETCH_THRESHOLD = 8192
"""Sample-count ceiling for shipping raw arrays. At or below it the
exact path is cheap and stays bit-exact; above it workers ship a
sketch (~100 centroids) instead of the array."""

_DEFAULT_DELTA = 0.01


class PercentileSketch:
    """A t-digest-style summary of a sample distribution.

    Centroids are ``(mean, weight)`` pairs kept sorted by mean; a
    centroid near quantile ``q`` may hold at most ``4·N·δ·q(1−q)``
    samples, so resolution concentrates at the tails — exactly where
    the paper's plots (p95/p99) live. ``count``/``sum``/``min``/``max``
    are tracked exactly, so means are never approximated.
    """

    __slots__ = ("delta", "centroids", "count", "total", "minimum", "maximum")

    def __init__(self, delta: float = _DEFAULT_DELTA):
        if not 0 < delta < 1:
            raise ValueError(f"delta must be in (0, 1), got {delta}")
        self.delta = delta
        self.centroids: List[Tuple[float, int]] = []
        self.count = 0
        self.total = 0
        self.minimum = math.inf
        self.maximum = -math.inf

    # -- construction ------------------------------------------------------

    @classmethod
    def from_samples(
        cls, samples: Sequence[int], delta: float = _DEFAULT_DELTA
    ) -> "PercentileSketch":
        sketch = cls(delta)
        sketch.add_samples(samples)
        return sketch

    def add_samples(self, samples: Sequence[int]) -> None:
        """Fold raw samples in (sorted internally; order-insensitive)."""
        if not samples:
            return
        self.count += len(samples)
        self.total += sum(samples)
        ordered = sorted(samples)
        if ordered[0] < self.minimum:
            self.minimum = ordered[0]
        if ordered[-1] > self.maximum:
            self.maximum = ordered[-1]
        self.centroids = self._compress(
            _merge_sorted(self.centroids, [(float(v), 1) for v in ordered]),
            self.count,
        )

    def merge(self, other: "PercentileSketch") -> None:
        """Fold another sketch into this one.

        Deterministic but **not associative**: callers that need
        reproducible merged output must fold parts in a fixed order
        (the harness always uses spec/result order).
        """
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        self.centroids = self._compress(
            _merge_sorted(self.centroids, other.centroids), self.count
        )

    def _compress(
        self, centroids: List[Tuple[float, int]], count: int
    ) -> List[Tuple[float, int]]:
        """One merge pass over mean-sorted centroids.

        Adjacent centroids combine while the union stays under the
        quantile-scaled size bound. Pure function of the input order,
        so identical inputs give identical sketches on every platform.
        """
        if not centroids:
            return centroids
        out: List[Tuple[float, int]] = []
        cur_mean, cur_weight = centroids[0]
        cumulative = 0  # samples fully to the left of the current centroid
        for mean, weight in centroids[1:]:
            q = (cumulative + (cur_weight + weight) / 2.0) / count
            limit = 4.0 * count * self.delta * q * (1.0 - q)
            if cur_weight + weight <= max(limit, 1.0):
                merged = cur_weight + weight
                cur_mean += (mean - cur_mean) * (weight / merged)
                cur_weight = merged
            else:
                out.append((cur_mean, cur_weight))
                cumulative += cur_weight
                cur_mean, cur_weight = mean, weight
        out.append((cur_mean, cur_weight))
        return out

    # -- queries -----------------------------------------------------------

    def percentile(self, fraction: float) -> float:
        """Estimate the ``fraction`` quantile (0 ≤ fraction ≤ 1).

        Linear interpolation between centroid midpoints, clamped to
        the exact observed min/max so extreme quantiles never
        extrapolate.
        """
        if self.count == 0:
            return math.nan
        if self.count == 1 or len(self.centroids) == 1:
            return self.centroids[0][0]
        target = fraction * self.count
        cumulative = 0.0
        prev_mid = 0.0
        prev_mean = float(self.minimum)
        for mean, weight in self.centroids:
            mid = cumulative + weight / 2.0
            if target <= mid:
                span = mid - prev_mid
                t = (target - prev_mid) / span if span > 0 else 0.0
                value = prev_mean + (mean - prev_mean) * t
                return min(max(value, self.minimum), self.maximum)
            cumulative += weight
            prev_mid = mid
            prev_mean = mean
        return float(self.maximum)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def __len__(self) -> int:
        return len(self.centroids)

    # -- transport ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (pickles/JSONs cleanly; structural equality
        is exactly 'same summary')."""
        return {
            "delta": self.delta,
            "count": self.count,
            "total": self.total,
            "min_ns": self.minimum,
            "max_ns": self.maximum,
            "centroids": [[mean, weight] for mean, weight in self.centroids],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PercentileSketch":
        sketch = cls(data["delta"])
        sketch.count = data["count"]
        sketch.total = data["total"]
        sketch.minimum = data["min_ns"]
        sketch.maximum = data["max_ns"]
        sketch.centroids = [(mean, weight) for mean, weight in data["centroids"]]
        return sketch

    def __repr__(self) -> str:
        return (
            f"<PercentileSketch n={self.count} centroids={len(self.centroids)} "
            f"delta={self.delta}>"
        )


def _merge_sorted(
    a: Iterable[Tuple[float, int]], b: Iterable[Tuple[float, int]]
) -> List[Tuple[float, int]]:
    """Merge two mean-sorted centroid lists into one sorted list."""
    merged = list(a) + list(b)
    merged.sort(key=lambda c: c[0])
    return merged
