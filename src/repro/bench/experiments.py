"""Experiment builders for every table and figure in the paper (§6).

Each function builds the full scenario — cluster, background tenants,
system under test, workload — runs it to completion, and returns the
same metrics the paper plots. The ``benchmarks/`` suite is a thin
layer over these, printing paper-style rows and asserting the *shape*
(who wins, by roughly what factor).

Scale note: operation counts default to simulation-friendly values
(thousands rather than the paper's 10k-16M); every function takes the
count as a parameter so a longer run is one argument away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..baseline import NaiveGroup
from ..core import HyperLoopGroup
from ..hw import Cluster, Host
from ..sim import MS, SECOND, Simulator
from ..storage import MongoServer, ReplicatedKVStore, split_mongo
from ..workloads import WORKLOADS, YcsbWorkload
from .harness import LatencyRecorder, LatencyStats, run_until

__all__ = [
    "MicrobenchResult",
    "microbench_latency",
    "microbench_throughput",
    "fig2_mongodb_motivation",
    "fig11_rocksdb",
    "fig12_mongodb",
    "MESSAGE_SIZES_FIG8",
    "MESSAGE_SIZES_FIG9",
    "EXPERIMENTS",
    "run_experiment",
]

MESSAGE_SIZES_FIG8 = [128, 256, 512, 1024, 2048, 4096, 8192]
MESSAGE_SIZES_FIG9 = [1024, 2048, 4096, 8192, 16384, 32768, 65536]


def _spawn_background(cluster: Cluster, hosts: Sequence[Host], per_core: int) -> None:
    """CPU-bound tenants (stress-ng-style) on the given hosts."""
    for host in hosts:
        for index in range(per_core * len(host.os.cores)):
            host.os.spawn_stress(f"{host.name}.tenant{index}")


def _build_group(
    system: str,
    client: Host,
    replicas: Sequence[Host],
    region_size: int,
    rounds: int,
    durable: bool = True,
):
    """``system``: hyperloop | naive-event | naive-polling."""
    if system == "hyperloop":
        return HyperLoopGroup(
            client,
            replicas,
            region_size=region_size,
            rounds=rounds,
            durable=durable,
            client_mode="polling",
            client_core=0,
            name="sut",
        )
    if system in ("naive-event", "naive-polling"):
        mode = system.split("-")[1]
        return NaiveGroup(
            client,
            replicas,
            region_size=region_size,
            rounds=rounds,
            durable=durable,
            replica_mode=mode,
            replica_cores=[0] * len(replicas),  # pinned, paper's best case
            client_mode="polling",
            client_core=0,
            name="sut",
        )
    raise ValueError(f"unknown system {system!r}")


@dataclass
class MicrobenchResult:
    """One microbenchmark configuration's outcome."""

    system: str
    primitive: str
    message_size: int
    group_size: int
    stats: LatencyStats
    replica_cpu_fraction: float
    throughput_kops: float = 0.0
    errors: List[str] = field(default_factory=list)
    samples_ns: List[int] = field(default_factory=list)
    """Raw per-op latencies (ns). Lets sweep merging be sample-exact
    (:func:`repro.bench.parallel.merge_run_stats`); empty for
    experiments that only measure aggregates (throughput) and for runs
    large enough to ship :attr:`sketch` instead."""
    sketch: Optional[Dict] = None
    """Mergeable percentile sketch (``PercentileSketch.to_dict()``),
    shipped in place of ``samples_ns`` above
    :data:`~repro.bench.sketch.SKETCH_THRESHOLD` samples."""


def microbench_latency(
    system: str,
    primitive: str = "gwrite",
    message_size: int = 1024,
    group_size: int = 3,
    n_ops: int = 2000,
    stress_per_core: int = 3,
    n_cores: int = 16,
    durable: bool = True,
    pipeline_depth: int = 16,
    rounds: int = 4096,
    seed: int = 42,
    deadline_ms: int = 600_000,
) -> MicrobenchResult:
    """§6.1 latency microbenchmark (Figures 8 and 10, Table 2).

    A multi-threaded client process on an unloaded machine (the
    paper's benchmark client) keeps ``pipeline_depth`` operations in
    flight against a chain of ``group_size`` replicas whose hosts
    carry ``stress_per_core`` CPU-bound tenants per core. gCAS
    alternates the compare value per round so every CAS succeeds
    (lock acquire/release pattern).
    """
    if primitive not in ("gwrite", "gmemcpy", "gcas"):
        raise ValueError(f"unknown primitive {primitive!r}")
    from ..sim.shard import maybe_contained

    contained = maybe_contained(
        "repro.bench.experiments:microbench_latency",
        dict(
            system=system,
            primitive=primitive,
            message_size=message_size,
            group_size=group_size,
            n_ops=n_ops,
            stress_per_core=stress_per_core,
            n_cores=n_cores,
            durable=durable,
            pipeline_depth=pipeline_depth,
            rounds=rounds,
            seed=seed,
            deadline_ms=deadline_ms,
        ),
    )
    if contained is not None:
        return contained[0]
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, n_hosts=group_size + 1, n_cores=n_cores)
    replicas = cluster.hosts[1 : group_size + 1]
    _spawn_background(cluster, replicas, stress_per_core)
    region_size = max(1 << 16, message_size * 4)
    group = _build_group(system, cluster[0], replicas, region_size, rounds=rounds, durable=durable)
    recorder = LatencyRecorder(f"{system}/{primitive}/{message_size}")
    state = {"issued": 0, "running": pipeline_depth}

    def worker(worker_index):
        def body(task):
            group.write_local(0, b"\xab" * message_size)
            while state["issued"] < n_ops:
                index = state["issued"]
                state["issued"] += 1
                start = sim.now
                if primitive == "gwrite":
                    yield from group.gwrite(task, 0, message_size)
                elif primitive == "gmemcpy":
                    yield from group.gmemcpy(task, 0, message_size * 2, message_size)
                elif primitive == "gcas":
                    # Each worker alternates acquire/release on its
                    # own lock word so every CAS succeeds; each CAS is
                    # one sample.
                    offset = 8 * worker_index
                    phase = state.setdefault(f"phase{worker_index}", 0)
                    yield from group.gcas(task, offset, phase, 1 - phase)
                    state[f"phase{worker_index}"] = 1 - phase
                else:
                    raise ValueError(f"unknown primitive {primitive!r}")
                recorder.record(sim.now - start)
            state["running"] -= 1

        return body

    time0 = sim.now
    workers = [
        cluster[0].os.spawn(
            worker(worker_index),
            f"bench{worker_index}",
            pinned_core=1 + worker_index % (n_cores - 1),
        )
        for worker_index in range(pipeline_depth)
    ]
    _run_workload(sim, workers, lambda: state["running"] == 0, deadline_ms)
    cpu_fraction = _group_cpu_fraction(group, sim.now - time0)
    samples, sketch = recorder.ship()
    return MicrobenchResult(
        system=system,
        primitive=primitive,
        message_size=message_size,
        group_size=group_size,
        stats=recorder.stats(),
        replica_cpu_fraction=cpu_fraction,
        errors=list(group.errors),
        samples_ns=samples,
        sketch=sketch,
    )


def microbench_throughput(
    system: str,
    message_size: int = 4096,
    total_bytes: int = 32 << 20,
    group_size: int = 3,
    pipeline_depth: int = 16,
    n_cores: int = 16,
    stress_per_core: int = 0,
    seed: int = 43,
    deadline_ms: int = 600_000,
) -> MicrobenchResult:
    """§6.1 throughput benchmark (Figure 9): write ``total_bytes`` in
    ``message_size`` chunks with ``pipeline_depth`` concurrent client
    workers; report Kops/s and replica critical-path CPU."""
    from ..sim.shard import maybe_contained

    contained = maybe_contained(
        "repro.bench.experiments:microbench_throughput",
        dict(
            system=system,
            message_size=message_size,
            total_bytes=total_bytes,
            group_size=group_size,
            pipeline_depth=pipeline_depth,
            n_cores=n_cores,
            stress_per_core=stress_per_core,
            seed=seed,
            deadline_ms=deadline_ms,
        ),
    )
    if contained is not None:
        return contained[0]
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, n_hosts=group_size + 1, n_cores=n_cores)
    replicas = cluster.hosts[1 : group_size + 1]
    _spawn_background(cluster, replicas, stress_per_core)
    region_size = max(1 << 16, message_size * 4)
    group = _build_group(system, cluster[0], replicas, region_size, rounds=2048)
    n_ops = max(1, total_bytes // message_size)
    remaining = {"ops": n_ops, "running": pipeline_depth}
    started = {}

    def worker(task):
        if "t0" not in started:
            started["t0"] = sim.now
        group.write_local(0, b"\xcd" * message_size)
        while remaining["ops"] > 0:
            remaining["ops"] -= 1
            yield from group.gwrite(task, 0, message_size)
        remaining["running"] -= 1
        if remaining["running"] == 0:
            # Record the true finish time: run_until advances the
            # clock in chunks, which would otherwise inflate elapsed.
            started["t1"] = sim.now
            started["cpu1"] = group.replica_cpu_ns()

    time0 = sim.now
    cpu0 = group.replica_cpu_ns()
    workers = [
        cluster[0].os.spawn(worker, f"tx{index}", pinned_core=1 + index % (n_cores - 1))
        for index in range(pipeline_depth)
    ]
    _run_workload(sim, workers, lambda: remaining["running"] == 0, deadline_ms)
    elapsed = started["t1"] - started.get("t0", time0)
    kops = n_ops / (elapsed / SECOND) / 1000.0
    if elapsed <= 0:
        cpu_fraction = 0.0
    else:
        cpu_fraction = (started["cpu1"] - cpu0) / elapsed / group.group_size
    stats = LatencyStats(n_ops, 0, 0, 0, 0, 0, 0)
    return MicrobenchResult(
        system=system,
        primitive="gwrite",
        message_size=message_size,
        group_size=group_size,
        stats=stats,
        replica_cpu_fraction=cpu_fraction,
        throughput_kops=kops,
        errors=list(group.errors),
    )


def _run_workload(sim, workers, done, deadline_ms) -> None:
    """run_until that surfaces a dead worker's exception immediately
    instead of waiting out the deadline."""

    def finished():
        if done():
            return True
        return any(w.process.triggered and not w.process.ok for w in workers)

    run_until(sim, finished, deadline_ms=deadline_ms)
    for worker in workers:
        if worker.process.triggered and not worker.process.ok:
            raise worker.process.value


def _replica_busy(replicas: Sequence[Host]) -> int:
    return sum(host.os.busy_ns for host in replicas)


def _group_replica_cpu(group) -> int:
    return group.replica_cpu_ns()


def _group_cpu_fraction(group, elapsed: int) -> float:
    """Replica CPU consumed by the replication system per unit time,
    as a fraction of one core (the paper's 'critical path CPU')."""
    if elapsed <= 0:
        return 0.0
    return group.replica_cpu_ns() / elapsed / group.group_size


# ---------------------------------------------------------------------------
# Figure 2: vanilla MongoDB motivation study
# ---------------------------------------------------------------------------


@dataclass
class Fig2Result:
    """One Figure 2 configuration."""

    replica_sets: int
    n_cores: int
    stats: LatencyStats
    context_switches: int


def fig2_mongodb_motivation(
    n_replica_sets: int,
    n_cores: int = 16,
    ops_per_set: int = 60,
    load_docs: int = 20,
    value_size: int = 512,
    seed: int = 44,
    deadline_ms: int = 2_000_000,
) -> Fig2Result:
    """§2.2 / Figure 2: vanilla MongoDB replica-sets on 3 servers.

    Each replica-set is a native primary process (RPC + CPU-driven
    chain) plus two backup daemons; primaries rotate across servers.
    YCSB-A clients on 3 unloaded machines drive every set
    concurrently. Returns latency stats over all operations plus the
    servers' total context switches.
    """
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, n_hosts=6, n_cores=n_cores)
    servers = cluster.hosts[0:3]
    clients = cluster.hosts[3:6]
    for server in servers:
        server.os.set_enabled_cores(n_cores)
    deployments = []
    for index in range(n_replica_sets):
        primary = servers[index % 3]
        backups = [servers[(index + 1) % 3], servers[(index + 2) % 3]]
        server = MongoServer(
            primary,
            backups,
            region_size=1 << 17,
            rounds=64,
            replica_mode="event",
            server_mode="event",
            parse_ns=60_000,
            name=f"rs{index}",
        )
        client = server.connect(clients[index % 3])
        deployments.append((server, client))
    recorder = LatencyRecorder("fig2")
    finished = {"n": 0}

    def ycsb_body(index, client):
        workload = YcsbWorkload(WORKLOADS["A"], record_count=load_docs, value_size=value_size, seed=seed + index)

        def body(task):
            for key in workload.load_keys():
                yield from client.insert(
                    task, f"u{key:06d}".encode(), {"field0": b"\x11" * value_size}
                )
            for op in workload.operations(ops_per_set):
                doc_id = f"u{op.key:06d}".encode()
                start = sim.now
                if op.kind == "read":
                    yield from client.read(task, doc_id)
                elif op.kind == "update":
                    yield from client.update(
                        task, doc_id, {"field0": b"\x22" * value_size}
                    )
                recorder.record(sim.now - start)
            finished["n"] += 1

        return body

    switches0 = sum(server.os.context_switches for server in servers)
    for index, (server, client) in enumerate(deployments):
        clients[index % 3].os.spawn(ycsb_body(index, client), f"ycsb{index}")
    run_until(sim, lambda: finished["n"] == n_replica_sets, deadline_ms=deadline_ms)
    switches = sum(server.os.context_switches for server in servers) - switches0
    return Fig2Result(
        replica_sets=n_replica_sets,
        n_cores=n_cores,
        stats=recorder.stats(),
        context_switches=switches,
    )


# ---------------------------------------------------------------------------
# Figure 11: replicated RocksDB under multi-tenancy
# ---------------------------------------------------------------------------


def fig11_rocksdb(
    system: str,
    n_ops: int = 1200,
    n_records: int = 200,
    value_size: int = 1024,
    stress_per_core: int = 10,
    n_cores: int = 8,
    app_threads: int = 8,
    rounds: int = 4096,
    seed: int = 45,
    deadline_ms: int = 2_000_000,
) -> LatencyStats:
    """§6.2 / Figure 11: update latency of replicated RocksDB.

    The store's backups run on servers carrying a 10:1 process:core
    multi-tenant load (the paper co-locates I/O-intensive instances;
    CPU-bound tenants exercise the same scheduler contention). The
    application itself is multi-threaded ("the number of application
    threads on each socket is 10x the number of its CPU cores");
    ``app_threads`` tasks issue operations concurrently, serialized at
    the WAL mutex like real RocksDB writers. Only update operations
    are timed, per the paper ("traces from YCSB workload A ...
    latencies of update operations").
    """
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, n_hosts=4, n_cores=n_cores)
    replicas = cluster.hosts[1:4]
    _spawn_background(cluster, replicas, stress_per_core)
    group = _build_group(system, cluster[0], replicas, region_size=1 << 21, rounds=rounds)
    kv = ReplicatedKVStore(group, sync_interval=5 * MS)
    workload = YcsbWorkload(WORKLOADS["A"], record_count=n_records, value_size=value_size, seed=seed)
    operations = list(workload.operations(n_ops))
    recorder = LatencyRecorder(f"fig11/{system}")
    state = {"cursor": 0, "running": app_threads, "loaded": False}

    def loader(task):
        value = b"\x33" * value_size
        for key in workload.load_keys():
            yield from kv.put(task, f"user{key:08d}".encode(), value)
        state["loaded"] = True

    def worker(task):
        value = b"\x33" * value_size
        # Wait for the load phase to finish.
        while not state["loaded"]:
            yield from task.sleep(100_000)
        while state["cursor"] < len(operations):
            op = operations[state["cursor"]]
            state["cursor"] += 1
            key = f"user{op.key:08d}".encode()
            if op.kind == "update":
                start = sim.now
                yield from kv.put(task, key, value)
                recorder.record(sim.now - start)
            else:
                yield from kv.get(task, key)
        state["running"] -= 1

    workers = [cluster[0].os.spawn(loader, "load", pinned_core=1)]
    workers.extend(
        cluster[0].os.spawn(
            worker, f"ycsb{index}", pinned_core=1 + index % (n_cores - 1)
        )
        for index in range(app_threads)
    )
    _run_workload(sim, workers, lambda: state["running"] == 0, deadline_ms)
    return recorder.stats()


# ---------------------------------------------------------------------------
# Figure 12: MongoDB with native vs HyperLoop replication, YCSB A/B/D/E/F
# ---------------------------------------------------------------------------


def fig12_mongodb(
    offloaded: bool,
    workload_name: str,
    n_ops: int = 500,
    n_records: int = 150,
    value_size: int = 1024,
    stress_per_core: int = 10,
    n_cores: int = 8,
    max_scan: int = 20,
    rounds: int = 512,
    seed: int = 46,
    deadline_ms: int = 4_000_000,
) -> LatencyStats:
    """§6.2 / Figure 12: the split MongoDB (front end on the client)
    over the HyperLoop or Naïve-polling backend, per YCSB workload."""
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, n_hosts=4, n_cores=n_cores)
    replicas = cluster.hosts[1:4]
    _spawn_background(cluster, replicas, stress_per_core)
    store = split_mongo(
        cluster[0],
        replicas,
        offloaded=offloaded,
        region_size=1 << 21,
        rounds=rounds,
        replica_mode="polling",
        parse_ns=60_000,
        name="m",
    )
    mix = WORKLOADS[workload_name]
    if mix.max_scan_length > max_scan:
        mix = type(mix)(
            name=mix.name,
            read=mix.read,
            update=mix.update,
            insert=mix.insert,
            modify=mix.modify,
            scan=mix.scan,
            distribution=mix.distribution,
            max_scan_length=max_scan,
        )
    workload = YcsbWorkload(mix, record_count=n_records, value_size=value_size, seed=seed)
    recorder = LatencyRecorder(f"fig12/{workload_name}/{offloaded}")
    done = {}

    def body(task):
        payload = b"\x44" * value_size
        for key in workload.load_keys():
            yield from store.insert(task, f"user{key:08d}".encode(), {"field0": payload})
        for op in workload.operations(n_ops):
            doc_id = f"user{op.key:08d}".encode()
            start = sim.now
            if op.kind == "read":
                yield from store.read(task, doc_id, replica=op.key % 3)
            elif op.kind == "update":
                yield from store.update(task, doc_id, {"field0": payload})
            elif op.kind == "insert":
                yield from store.insert(task, doc_id, {"field0": payload})
            elif op.kind == "modify":
                yield from store.modify(task, doc_id, {"field0": payload})
            elif op.kind == "scan":
                yield from store.scan(task, doc_id, op.scan_length, replica=op.key % 3)
            recorder.record(sim.now - start)
        done["y"] = True

    cluster[0].os.spawn(body, "ycsb", pinned_core=1)
    run_until(sim, lambda: "y" in done, deadline_ms=deadline_ms)
    return recorder.stats()


# ---------------------------------------------------------------------------
# Registry — names the parallel runner and the CLI can address.
# ---------------------------------------------------------------------------

EXPERIMENTS = {
    "latency": microbench_latency,
    "throughput": microbench_throughput,
    "fig2": fig2_mongodb_motivation,
    "fig11": fig11_rocksdb,
    "fig12": fig12_mongodb,
}
"""Every experiment addressable by name.

The :mod:`repro.bench.parallel` runner ships ``(name, params, seed)``
triples to worker processes, so entries must be importable module-level
callables whose parameters and return values pickle cleanly.
"""


def run_experiment(name: str, **kwargs):
    """Run a registered experiment by name."""
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ValueError(f"unknown experiment {name!r} (known: {known})") from None
    return fn(**kwargs)
