"""HyperLoop reproduction: group-based NIC-offloading for replicated
transactions, on a simulated RDMA/NVM/CPU substrate.

Quick tour
----------
>>> from repro import Simulator, Cluster, HyperLoopGroup
>>> sim = Simulator(seed=1)
>>> cluster = Cluster(sim, n_hosts=4)
>>> group = HyperLoopGroup(cluster[0], cluster.hosts[1:4])

Layers (bottom-up):

* :mod:`repro.sim` — discrete-event kernel (integer-ns clock).
* :mod:`repro.hw` — CPU/OS scheduler, memory/NVM, network fabric,
  and the RNIC with WAIT chaining and in-memory WQE rings.
* :mod:`repro.rdma` — verbs layer (MRs, QPs, CQs, the modified
  driver), one-sided reads, RPC.
* :mod:`repro.core` — **the paper's contribution**: HyperLoop groups
  with gWRITE / gMEMCPY / gCAS / gFLUSH.
* :mod:`repro.baseline` — Naïve-RDMA (CPU-forwarded) and fan-out
  comparison points.
* :mod:`repro.storage` — replicated WAL, group locks, KV store
  (RocksDB-like), document store (MongoDB-like), failure recovery.
* :mod:`repro.workloads` — YCSB.
* :mod:`repro.bench` — experiment builders for every paper figure.
"""

from .baseline import FanoutGroup, NaiveGroup
from .core import HyperLoopGroup
from .hw import Cluster, Host
from .sim import MS, SECOND, Simulator, US

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "Cluster",
    "Host",
    "HyperLoopGroup",
    "NaiveGroup",
    "FanoutGroup",
    "US",
    "MS",
    "SECOND",
    "__version__",
]
