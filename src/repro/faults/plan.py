"""Declarative fault plans and the injector that executes them.

A :class:`FaultPlan` is pure data: a list of :class:`FaultEvent`
records. A :class:`FaultInjector` binds a plan to one simulation —
installing itself as the fabric's fault filter (which arms the NICs'
RC retransmission path) and scheduling node-level events on the sim
clock. All randomness comes from one named RNG stream derived from
the simulator seed, so a plan replays bit-for-bit.

Triggers
--------
* ``at_ms`` — fire once at a virtual time (node actions), or activate
  from that time on (message rules).
* ``at_op`` — fire once when the workload reports that many completed
  operations via :meth:`FaultInjector.notify_op` (the "at-op-count"
  trigger; the scenario runner calls it after every acked op).
* ``at_phase`` — fire once when the scenario reports entering a named
  control-path phase via :meth:`FaultInjector.notify_phase` (e.g.
  ``"repair"`` when :class:`~repro.storage.recovery.ChainRepair`
  starts), ``phase_delay_ms`` after the notification. This is how
  compound scenarios land a fault *inside* a recovery window whose
  absolute time depends on detection latency.
* ``probability`` — message rules only: each matching wire message is
  hit with this probability, drawn from the named RNG stream.

Message rules (``drop``, ``delay``, ``duplicate``, ``corrupt``) stay
active from their trigger point until ``until_ms`` (forever when
unset). Node actions (``partition``, ``heal``, ``nic_stall``,
``nic_resume``, ``nic_crash``, ``host_crash``, ``host_restart``,
``host_power_failure``) fire exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..hw.host import Host
from ..hw.network import Fabric, FaultVerdict
from ..obs.trace import TRACER
from ..sim import MS, Simulator

__all__ = ["ACTIONS", "FaultEvent", "FaultPlan", "FaultInjector"]


MESSAGE_ACTIONS = ("drop", "delay", "duplicate", "corrupt")
NODE_ACTIONS = (
    "partition",
    "heal",
    "nic_stall",
    "nic_resume",
    "nic_crash",
    "host_crash",
    "host_restart",
    "host_power_failure",
)
ACTIONS = MESSAGE_ACTIONS + NODE_ACTIONS


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Parameters
    ----------
    action:
        One of :data:`ACTIONS`.
    at_ms / until_ms:
        Activation window in virtual milliseconds. ``at_ms`` defaults
        to 0 (active from the start) for message rules and is required
        for timed node actions.
    at_op:
        Alternative trigger: fire when the workload has completed this
        many operations (reported via ``notify_op``).
    at_phase / phase_delay_ms:
        Alternative trigger for node actions: fire
        ``phase_delay_ms`` after the scenario reports entering the
        named phase (via ``notify_phase``).
    probability:
        Message rules: per-message hit probability in [0, 1].
    target:
        Host name for node actions; for message rules, restrict the
        rule to messages with this host as source or destination.
    pair:
        ``(host_a, host_b)`` for ``partition``/``heal``, or to scope a
        message rule to one bidirectional host pair.
    extra_delay_ns:
        ``delay`` rules: added latency per hit message.
    duplicates:
        ``duplicate`` rules: extra copies per hit message.
    """

    action: str
    at_ms: Optional[float] = None
    until_ms: Optional[float] = None
    at_op: Optional[int] = None
    at_phase: Optional[str] = None
    phase_delay_ms: float = 0.0
    probability: float = 0.0
    target: Optional[str] = None
    pair: Optional[Tuple[str, str]] = None
    extra_delay_ns: int = 0
    duplicates: int = 1

    def __post_init__(self):
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability {self.probability} outside [0, 1]")
        if self.action in ("partition", "heal") and self.pair is None:
            raise ValueError(f"{self.action} needs a host pair")
        if self.action in NODE_ACTIONS[2:] and self.target is None:
            raise ValueError(f"{self.action} needs a target host")
        if self.action in MESSAGE_ACTIONS and self.at_phase is not None:
            raise ValueError("at_phase triggers apply to node actions only")
        if (
            self.action in NODE_ACTIONS
            and self.at_ms is None
            and self.at_op is None
            and self.at_phase is None
        ):
            raise ValueError(f"{self.action} needs an at_ms, at_op or at_phase trigger")

    def describe(self) -> str:
        """Deterministic one-line rendering (shrunk-plan reports)."""
        where = self.target or (self.pair and "|".join(sorted(self.pair))) or "*"
        if self.at_op is not None:
            when = f"at_op={self.at_op}"
        elif self.at_phase is not None:
            when = f"at_phase={self.at_phase}+{self.phase_delay_ms}ms"
        elif self.at_ms is not None:
            when = f"at_ms={self.at_ms}"
            if self.until_ms is not None:
                when += f"..{self.until_ms}"
        else:
            when = "always"
        extra = ""
        if self.action in MESSAGE_ACTIONS:
            extra = f" p={self.probability}"
            if self.action == "delay":
                extra += f" +{self.extra_delay_ns}ns"
            elif self.action == "duplicate":
                extra += f" x{self.duplicates}"
        return f"{self.action}@{where} {when}{extra}"


@dataclass
class FaultPlan:
    """An ordered collection of fault events (pure data)."""

    events: List[FaultEvent] = field(default_factory=list)
    label: str = "faults"

    def add(self, action: str, **kwargs: Any) -> "FaultPlan":
        """Append an event; returns self for chaining."""
        self.events.append(FaultEvent(action, **kwargs))
        return self

    def message_rules(self) -> List[FaultEvent]:
        return [e for e in self.events if e.action in MESSAGE_ACTIONS]

    def node_events(self) -> List[FaultEvent]:
        return [e for e in self.events if e.action in NODE_ACTIONS]

    def subset(self, indices: Iterable[int]) -> "FaultPlan":
        """A new plan keeping only the events at ``indices`` (in plan order).

        The shrinker replays candidate sub-plans this way: because every
        event keeps its own trigger and the RNG stream is named by
        ``label``, a subset is itself a valid, deterministic plan.
        """
        keep = sorted(set(indices))
        return FaultPlan(
            events=[self.events[i] for i in keep if 0 <= i < len(self.events)],
            label=self.label,
        )

    def describe(self) -> List[str]:
        """Deterministic per-event renderings, in plan order."""
        return [f"[{i}] {e.describe()}" for i, e in enumerate(self.events)]


class FaultInjector:
    """Executes a :class:`FaultPlan` against one simulation.

    Construction installs the injector as ``fabric``'s fault filter
    (marking the fabric lossy — NICs arm RC retransmission from then
    on) and schedules every timed node event with ``sim.call_at``.
    Op-count-triggered events fire from :meth:`notify_op`.
    """

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        hosts: Mapping[str, Host],
        plan: FaultPlan,
    ):
        self.sim = sim
        self.fabric = fabric
        self.hosts = dict(hosts)
        self.plan = plan
        self.rng = sim.rng(f"faults/{plan.label}")
        self.partitions: set = set()
        self.counters: Dict[str, int] = {}
        self.op_count = 0
        self.fired: List[Tuple[int, str]] = []  # (sim_ns, description)
        self._rules = plan.message_rules()
        self._op_events = sorted(
            (e for e in plan.node_events() if e.at_op is not None),
            key=lambda e: e.at_op,
        )
        self._phase_events: Dict[str, List[FaultEvent]] = {}
        for event in plan.node_events():
            if event.at_ms is not None:
                sim.call_at(int(event.at_ms * MS), self._fire, event)
            elif event.at_phase is not None:
                self._phase_events.setdefault(event.at_phase, []).append(event)
        fabric.install_fault_filter(self._filter)

    # -- fabric filter -----------------------------------------------------

    def _filter(
        self, src: str, dst: str, payload: Any, nbytes: int
    ) -> Optional[FaultVerdict]:
        if self.partitions and frozenset((src, dst)) in self.partitions:
            self._count("partition_drop")
            return FaultVerdict(drop=True)
        now = self.sim.now
        for rule in self._rules:
            if rule.at_ms is not None and now < rule.at_ms * MS:
                continue
            if rule.until_ms is not None and now >= rule.until_ms * MS:
                continue
            if rule.target is not None and rule.target not in (src, dst):
                continue
            if rule.pair is not None and frozenset(rule.pair) != frozenset((src, dst)):
                continue
            if rule.probability < 1.0 and self.rng.random() >= rule.probability:
                continue
            self._count(rule.action)
            if rule.action == "drop":
                return FaultVerdict(drop=True)
            if rule.action == "delay":
                return FaultVerdict(extra_delay_ns=rule.extra_delay_ns)
            if rule.action == "duplicate":
                return FaultVerdict(duplicates=rule.duplicates)
            return FaultVerdict(corrupt=True)
        return None

    # -- node events -------------------------------------------------------

    def notify_op(self, completed: int = 1) -> None:
        """Report workload progress; fires pending at-op-count events."""
        self.op_count += completed
        while self._op_events and self._op_events[0].at_op <= self.op_count:
            self._fire(self._op_events.pop(0))

    def notify_phase(self, name: str) -> None:
        """Report entering a named control-path phase.

        Each pending ``at_phase == name`` event is scheduled once,
        ``phase_delay_ms`` of virtual time after this call. Only the
        first notification of a given phase arms its events — repeated
        phases (e.g. two repairs) fire the plan's events once, which
        keeps replays of a shrunk plan unambiguous.
        """
        events = self._phase_events.pop(name, ())
        for event in events:
            self.sim.call_in(int(event.phase_delay_ms * MS), self._fire, event)

    def _fire(self, event: FaultEvent) -> None:
        action = event.action
        self._count(action)
        self.fired.append((self.sim.now, self._describe(event)))
        if TRACER.enabled:
            TRACER.record(
                self.sim.now,
                "i",
                "fault",
                f"plan.{action}",
                pid="faults",
                args={"target": event.target, "pair": event.pair},
            )
            TRACER.count(f"fault.plan.{action}")
        if action == "partition":
            self.partitions.add(frozenset(event.pair))
            return
        if action == "heal":
            self.partitions.discard(frozenset(event.pair))
            return
        host = self.hosts[event.target]
        if action == "nic_stall":
            host.nic.stall()
        elif action == "nic_resume":
            host.nic.resume()
        elif action == "nic_crash":
            host.nic.crash()
        elif action == "host_crash":
            host.crash()
        elif action == "host_restart":
            host.restart()
        elif action == "host_power_failure":
            host.power_failure()

    def _describe(self, event: FaultEvent) -> str:
        where = event.target or (event.pair and "|".join(sorted(event.pair))) or "*"
        return f"{event.action}@{where}"

    def _count(self, name: str) -> None:
        self.counters[name] = self.counters.get(name, 0) + 1

    def summary(self) -> Dict[str, int]:
        """Injected-fault counters, merged with the fabric's view."""
        merged = dict(sorted(self.counters.items()))
        merged["fabric_dropped"] = self.fabric.dropped_messages
        merged["fabric_corrupted"] = self.fabric.corrupted_messages
        merged["fabric_duplicated"] = self.fabric.duplicated_messages
        merged["fabric_delayed"] = self.fabric.delayed_messages
        return merged
