"""Chaos scenarios: a workload, a fault plan, and invariants.

Each scenario builds a fresh cluster, installs a
:class:`~repro.faults.plan.FaultInjector`, drives a workload (gWRITE
streams, the mixed-primitive chaos generator, a YCSB-keyed update
stream, or the replicated KV store), and checks the paper's guarantees
afterwards. ``python -m repro chaos`` runs the registered matrix.

Everything here is deterministic in ``(scenario, seed)``: operation
streams and payloads come from named ``sim.rng`` streams, fault timing
from the virtual clock, and reports contain no wall-clock state — the
CI chaos job runs the matrix twice and diffs the output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..bench.harness import run_until
from ..core.group import HyperLoopGroup
from ..hw.host import Cluster
from ..sim import MS, Simulator
from ..storage.kvstore import ReplicatedKVStore
from ..storage.recovery import ChainRepair, ClientReattach, HeartbeatMonitor
from ..workloads.ycsb import WORKLOADS, YcsbWorkload
from .invariants import (
    InvariantResult,
    check_acked_writes,
    check_model_match,
    check_no_errors,
    check_no_serialization_anomaly,
    check_read_your_writes,
    check_replicas_identical,
    check_suspicion_bound,
    check_txn_acked_writes,
    check_wal_recovery,
)
from .plan import FaultInjector, FaultPlan

__all__ = [
    "COMPOUND_SCENARIOS",
    "SCENARIOS",
    "ScenarioReport",
    "run_scenario",
    "run_matrix",
    "render_matrix",
]


@dataclass
class ScenarioReport:
    """Deterministic outcome of one chaos scenario run."""

    name: str
    seed: int
    passed: bool
    ops: int
    sim_ms: float
    faults: Dict[str, int]
    invariants: List[InvariantResult]
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = [
            f"=== {self.name} (seed {self.seed}): {status}",
            f"    ops={self.ops} sim_time={self.sim_ms:.3f}ms",
        ]
        active = [f"{key}={value}" for key, value in sorted(self.faults.items()) if value]
        lines.append("    faults: " + (" ".join(active) if active else "none"))
        for result in self.invariants:
            lines.append("    " + result.render())
        for note in self.notes:
            lines.append("    note: " + note)
        return "\n".join(lines)


def _finish(name, seed, sim, injector, ops, invariants, notes=()) -> ScenarioReport:
    return ScenarioReport(
        name=name,
        seed=seed,
        passed=all(result.ok for result in invariants),
        ops=ops,
        sim_ms=sim.now / MS,
        faults=injector.summary(),
        invariants=list(invariants),
        notes=list(notes),
    )


def _exercised(injector: FaultInjector, *keys: str) -> InvariantResult:
    """The plan actually fired — scenarios must not pass vacuously."""
    detail = " ".join(f"{key}={injector.counters.get(key, 0)}" for key in keys)
    total = sum(injector.counters.get(key, 0) for key in keys)
    return InvariantResult("fault-exercised", total > 0, detail)


# -- gWRITE-stream scenarios (drop / partition / stall) ----------------------------


def _gwrite_scenario(
    name: str,
    seed: int,
    plan: FaultPlan,
    exercised: Sequence[str],
    n_ops: int = 50,
    pace_ns: int = 0,
    deadline_ms: int = 5_000,
) -> ScenarioReport:
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, n_hosts=4, n_cores=4)
    region_size = 1 << 14
    group = HyperLoopGroup(
        cluster[0], cluster.hosts[1:4], region_size=region_size, rounds=16, name=name
    )
    injector = FaultInjector(
        sim, cluster.fabric, {host.name: host for host in cluster.hosts}, plan
    )
    rng = sim.rng("chaos-ops")
    slot = 256
    ops = []
    for _ in range(n_ops):
        offset = rng.randrange(region_size // slot) * slot
        size = rng.randrange(16, slot)
        ops.append((offset, bytes([rng.randrange(1, 256)]) * size))

    model = bytearray(region_size)
    acked: Dict[int, bytes] = {}
    done: List[bool] = []

    def body(task):
        for offset, data in ops:
            group.write_local(offset, data)
            model[offset : offset + len(data)] = data
            yield from group.gwrite(task, offset, len(data))
            acked[offset] = data
            injector.notify_op()
            if pace_ns:
                yield from task.sleep(pace_ns)
        done.append(True)

    cluster[0].os.spawn(body, name=f"{name}.writer")
    run_until(sim, lambda: bool(done), deadline_ms=deadline_ms)
    sim.run(until=sim.now + 2 * MS)  # drain stragglers (duplicates, late acks)

    invariants = [
        _exercised(injector, *exercised),
        check_acked_writes(group, acked),
        check_model_match(group, model),
        check_replicas_identical(group),
        check_no_errors(group),
    ]
    return _finish(name, seed, sim, injector, len(ops), invariants)


def _scenario_drop(seed: int) -> ScenarioReport:
    plan = FaultPlan(label="drop").add("drop", probability=0.03)
    return _gwrite_scenario("drop", seed, plan, ["drop"])


def _scenario_partition(seed: int) -> ScenarioReport:
    plan = (
        FaultPlan(label="partition")
        .add("partition", pair=("host1", "host2"), at_ms=1.0)
        .add("heal", pair=("host1", "host2"), at_ms=4.0)
    )
    return _gwrite_scenario(
        "partition",
        seed,
        plan,
        ["partition", "heal", "partition_drop"],
        n_ops=40,
        pace_ns=100_000,
    )


def _scenario_stall(seed: int) -> ScenarioReport:
    plan = (
        FaultPlan(label="stall")
        .add("nic_stall", target="host2", at_ms=0.5)
        .add("nic_resume", target="host2", at_ms=2.0)
    )
    return _gwrite_scenario(
        "stall", seed, plan, ["nic_stall", "nic_resume"], n_ops=40, pace_ns=50_000
    )


# -- mixed-primitive lossy scenario ------------------------------------------------


def _scenario_lossy(seed: int) -> ScenarioReport:
    """Corruption, duplication, reordering-by-delay and a trickle of
    drops under all three primitives at once (the chaos-consistency
    generator, now on a lossy wire)."""
    name = "lossy"
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, n_hosts=4, n_cores=4)
    region_size = 1 << 14
    group = HyperLoopGroup(
        cluster[0], cluster.hosts[1:4], region_size=region_size, rounds=16, name=name
    )
    plan = (
        FaultPlan(label=name)
        .add("drop", probability=0.01)
        .add("corrupt", probability=0.01)
        .add("duplicate", probability=0.02, duplicates=1)
        .add("delay", probability=0.05, extra_delay_ns=2_000)
    )
    injector = FaultInjector(
        sim, cluster.fabric, {host.name: host for host in cluster.hosts}, plan
    )
    model = bytearray(region_size)
    n_workers = 2
    ops_per_worker = 18
    rng = sim.rng("chaos-ops")
    slab = region_size // (n_workers + 1)

    def make_plan(worker):
        base = slab * worker
        ops = []
        phase = 0
        for _ in range(ops_per_worker):
            kind = rng.choice(["gwrite", "gwrite", "gmemcpy", "gcas"])
            if kind == "gwrite":
                offset = base + rng.randrange(0, slab // 2)
                size = rng.randrange(1, 300)
                ops.append(("gwrite", offset, bytes([rng.randrange(256)]) * size))
            elif kind == "gmemcpy":
                src = base + rng.randrange(0, slab // 4)
                dst = base + slab // 2 + rng.randrange(0, slab // 4)
                ops.append(("gmemcpy", src, dst, rng.randrange(1, 200)))
            else:
                lock = slab * n_workers + worker * 8
                ops.append(("gcas", lock, phase, 1 - phase))
                phase = 1 - phase
        return ops

    plans = [make_plan(worker) for worker in range(n_workers)]
    finished: List[int] = []
    cas_mismatches: List[str] = []

    def worker_body(worker):
        ops = plans[worker]

        def body(task):
            for op in ops:
                if op[0] == "gwrite":
                    _, offset, data = op
                    group.write_local(offset, data)
                    model[offset : offset + len(data)] = data
                    yield from group.gwrite(task, offset, len(data))
                elif op[0] == "gmemcpy":
                    _, src, dst, size = op
                    model[dst : dst + size] = model[src : src + size]
                    yield from group.gmemcpy(task, src, dst, size)
                else:
                    _, lock, compare, swap = op
                    model[lock : lock + 8] = swap.to_bytes(8, "little")
                    result = yield from group.gcas(task, lock, compare, swap)
                    if any(value != compare for value in result):
                        cas_mismatches.append(f"w{worker}@{lock}: {result}")
                injector.notify_op()
            finished.append(worker)

        return body

    for worker in range(n_workers):
        cluster[0].os.spawn(worker_body(worker), name=f"{name}.w{worker}")
    run_until(sim, lambda: len(finished) == n_workers, deadline_ms=10_000)
    sim.run(until=sim.now + 2 * MS)

    invariants = [
        _exercised(injector, "corrupt", "duplicate", "delay", "drop"),
        InvariantResult(
            "gcas-linearizable",
            not cas_mismatches,
            cas_mismatches[0] if cas_mismatches else f"{n_workers} lock words",
        ),
        check_model_match(group, model),
        check_replicas_identical(group),
        check_no_errors(group),
    ]
    return _finish(
        name, seed, sim, injector, n_workers * ops_per_worker, invariants
    )


# -- failover scenarios (NIC crash / host crash -> detect -> repair) ----------------


def _failover_scenario(
    name: str,
    seed: int,
    action: str,
    extra_events: Sequence[Dict] = (),
    extra_exercised: Sequence[str] = (),
) -> ScenarioReport:
    """Kill the mid-chain replica during a YCSB-keyed update stream;
    the heartbeat monitor must suspect it, ChainRepair must splice in
    the spare, and writes must resume with nothing acked lost.

    ``extra_events`` are appended to the fault plan (keyword dicts for
    :meth:`FaultPlan.add`); ``at_phase="repair"`` events fire relative
    to the moment repair starts — that is how the compound
    partition-during-repair scenario lands its partition inside the
    catch-up window."""
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, n_hosts=5, n_cores=4)
    client = cluster[0]
    replicas = cluster.hosts[1:4]
    spare = cluster[4]
    region_size = 1 << 14
    generation = [0]

    def factory(members):
        generation[0] += 1
        return HyperLoopGroup(
            client,
            members,
            region_size=region_size,
            rounds=16,
            name=f"{name}.g{generation[0]}",
        )

    group = HyperLoopGroup(
        client, replicas, region_size=region_size, rounds=16, name=f"{name}.g0"
    )
    crash_at_op = 25
    plan = FaultPlan(label=name).add(action, target="host2", at_op=crash_at_op)
    for event in extra_events:
        plan.add(**event)
    injector = FaultInjector(
        sim, cluster.fabric, {host.name: host for host in cluster.hosts}, plan
    )
    monitor = HeartbeatMonitor(
        client, replicas, interval=2 * MS, miss_threshold=3, name=f"{name}.hb"
    )
    repairer = ChainRepair(client, group, factory, on_phase=injector.notify_phase)

    # Update stream keyed by YCSB workload A over fixed-size slots.
    slots = 48
    slot_bytes = region_size // slots
    value_bytes = 192
    workload = YcsbWorkload(WORKLOADS["A"], record_count=slots, value_size=value_bytes, seed=seed)
    data_rng = sim.rng("failover-data")
    n_ops = 50
    ops = []
    for _ in range(n_ops):
        op = workload.next_operation()
        offset = (op.key % slots) * slot_bytes
        ops.append((offset, bytes([data_rng.randrange(1, 256)]) * value_bytes))

    model = bytearray(region_size)
    acked: Dict[int, bytes] = {}
    progress: Dict[str, object] = {
        "done": False,
        "repaired": False,
        "detect_ns": None,
        "failed_index": None,
        "reissued": 0,
    }

    def one_shot(target_group, offset, size):
        def body(task):
            yield from target_group.gwrite(task, offset, size)

        return body

    def writer(task):
        for index, (offset, data) in enumerate(ops):
            while True:
                while repairer.paused:
                    yield from task.sleep(100_000)
                current = repairer.group
                current.write_local(offset, data)
                sub = client.os.spawn(
                    one_shot(current, offset, len(data)), name=f"{name}.op{index}"
                )
                while (
                    not sub.process.triggered
                    and repairer.group is current
                    and not repairer.paused
                ):
                    yield from task.sleep(50_000)
                if sub.process.triggered:
                    break
                # The chain died under this op: it was never acked, so
                # replay it on the repaired group (the abandoned probe
                # task stays parked on the dead chain's ack event).
                progress["reissued"] += 1
            model[offset : offset + len(data)] = data
            acked[offset] = data
            injector.notify_op()
        progress["done"] = True

    def detector(task):
        index = yield from monitor.wait_for_suspicion(task)
        progress["detect_ns"] = sim.now
        progress["failed_index"] = index
        monitor.stop_beats(index)
        yield from repairer.repair(
            task, index, spare, copy_from=0 if index != 0 else 1
        )
        progress["repaired"] = True

    client.os.spawn(writer, name=f"{name}.writer")
    client.os.spawn(detector, name=f"{name}.detector")
    run_until(
        sim,
        lambda: progress["done"] and progress["repaired"],
        deadline_ms=5_000,
    )
    sim.run(until=sim.now + 5 * MS)  # quiesce: drain the repaired chain

    final = repairer.group
    crash_ns = injector.fired[0][0] if injector.fired else 0
    invariants = [
        _exercised(injector, action, *extra_exercised),
        InvariantResult(
            "failed-replica-detected",
            progress["failed_index"] == 1,
            f"suspected index {progress['failed_index']}",
        ),
        check_suspicion_bound(monitor, crash_ns, progress["detect_ns"]),
        InvariantResult(
            "repair-completed",
            repairer.repairs == 1 and final is not group,
            f"repairs={repairer.repairs} membership="
            + ",".join(host.name for host in final.replicas),
        ),
        check_acked_writes(final, acked),
        check_model_match(final, model),
        check_replicas_identical(final),
        check_no_errors(final),
    ]
    notes = [f"writes re-issued after failure: {progress['reissued']}"]
    return _finish(name, seed, sim, injector, n_ops, invariants, notes)


def _scenario_nic_crash(seed: int) -> ScenarioReport:
    return _failover_scenario("nic-crash", seed, "nic_crash")


def _scenario_host_crash(seed: int) -> ScenarioReport:
    return _failover_scenario("host-crash", seed, "host_crash")


# -- compound scenarios (overlapping failures) --------------------------------------


def _scenario_partition_repair(seed: int) -> ScenarioReport:
    """Host crash -> repair, with a client<->survivor partition landing
    the moment catch-up starts and healing 2ms in. The repair preads
    and the chain rebuild must ride out the window on RC
    retransmission — §5.1 recovery under the very faults it recovers
    from."""
    extra = [
        dict(action="partition", pair=("host0", "host1"), at_phase="repair"),
        dict(
            action="heal",
            pair=("host0", "host1"),
            at_phase="repair",
            phase_delay_ms=2.0,
        ),
    ]
    return _failover_scenario(
        "partition-repair",
        seed,
        "host_crash",
        extra_events=extra,
        extra_exercised=["partition", "heal", "partition_drop"],
    )


def _scenario_stall_lossy(seed: int) -> ScenarioReport:
    """NIC stall layered on a lossy fabric: while host2's NIC is dark,
    drops/delays/duplicates keep hitting every other link — the
    retransmission path must absorb both at once."""
    plan = (
        FaultPlan(label="stall-lossy")
        .add("drop", probability=0.02)
        .add("delay", probability=0.05, extra_delay_ns=2_000)
        .add("duplicate", probability=0.02, duplicates=1)
        .add("nic_stall", target="host2", at_ms=0.5)
        .add("nic_resume", target="host2", at_ms=2.0)
    )
    return _gwrite_scenario(
        "stall-lossy",
        seed,
        plan,
        ["drop", "delay", "duplicate", "nic_stall"],
        n_ops=40,
        pace_ns=50_000,
        deadline_ms=10_000,
    )


def _scenario_double_crash(seed: int) -> ScenarioReport:
    """Cascading failures: a second replica dies after the first
    repair completes. Two full detect -> repair -> re-issue rounds must
    each land within the suspicion bound with nothing acked lost."""
    name = "double-crash"
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, n_hosts=6, n_cores=4)
    client = cluster[0]
    replicas = cluster.hosts[1:4]
    spares = [cluster[4], cluster[5]]
    region_size = 1 << 14
    generation = [0]

    def factory(members):
        generation[0] += 1
        return HyperLoopGroup(
            client,
            members,
            region_size=region_size,
            rounds=16,
            name=f"{name}.g{generation[0]}",
        )

    group = HyperLoopGroup(
        client, replicas, region_size=region_size, rounds=16, name=f"{name}.g0"
    )
    plan = (
        FaultPlan(label=name)
        .add("host_crash", target="host2", at_op=15)
        .add("host_crash", target="host3", at_op=30)
    )
    injector = FaultInjector(
        sim, cluster.fabric, {host.name: host for host in cluster.hosts}, plan
    )
    # The first spare joins after repair 1, so it is monitored from the
    # start (idle beats are harmless and never suspected).
    candidates = list(replicas) + [spares[0]]
    monitor = HeartbeatMonitor(
        client, candidates, interval=2 * MS, miss_threshold=3, name=f"{name}.hb"
    )
    repairer = ChainRepair(client, group, factory, on_phase=injector.notify_phase)

    rng = sim.rng("chaos-ops")
    slot = 256
    n_ops = 45
    ops = []
    for _ in range(n_ops):
        offset = rng.randrange(region_size // slot) * slot
        size = rng.randrange(16, slot)
        ops.append((offset, bytes([rng.randrange(1, 256)]) * size))

    model = bytearray(region_size)
    acked: Dict[int, bytes] = {}
    progress: Dict[str, object] = {
        "done": False,
        "detects": [],
        "failed_hosts": [],
        "reissued": 0,
    }

    def one_shot(target_group, offset, size):
        def body(task):
            yield from target_group.gwrite(task, offset, size)

        return body

    def writer(task):
        for index, (offset, data) in enumerate(ops):
            while True:
                while repairer.paused:
                    yield from task.sleep(100_000)
                current = repairer.group
                current.write_local(offset, data)
                sub = client.os.spawn(
                    one_shot(current, offset, len(data)), name=f"{name}.op{index}"
                )
                while (
                    not sub.process.triggered
                    and repairer.group is current
                    and not repairer.paused
                ):
                    yield from task.sleep(50_000)
                if sub.process.triggered:
                    break
                progress["reissued"] += 1
            model[offset : offset + len(data)] = data
            acked[offset] = data
            injector.notify_op()
        progress["done"] = True

    def detector(task):
        handled = set()
        for round_ in range(2):
            while True:
                found = None
                for index in range(len(candidates)):
                    if index not in handled and monitor.suspected(index):
                        found = index
                        break
                if found is not None:
                    break
                yield from task.sleep(monitor.interval)
            handled.add(found)
            progress["detects"].append(sim.now)
            failed_host = candidates[found]
            progress["failed_hosts"].append(failed_host.name)
            monitor.stop_beats(found)
            current = repairer.group
            failed_index = current.replicas.index(failed_host)
            yield from repairer.repair(
                task,
                failed_index,
                spares[round_],
                copy_from=0 if failed_index != 0 else 1,
            )

    client.os.spawn(writer, name=f"{name}.writer")
    client.os.spawn(detector, name=f"{name}.detector")
    run_until(
        sim,
        lambda: progress["done"] and repairer.repairs == 2,
        deadline_ms=5_000,
    )
    sim.run(until=sim.now + 5 * MS)

    final = repairer.group
    crash_times = [when for when, _ in injector.fired]
    suspicion = [
        check_suspicion_bound(
            monitor,
            crash_times[index] if index < len(crash_times) else 0,
            progress["detects"][index] if index < len(progress["detects"]) else 0,
            name=f"suspicion-bound-{index + 1}",
        )
        for index in range(2)
    ]
    invariants = [
        _exercised(injector, "host_crash"),
        InvariantResult(
            "both-crashes-fired",
            injector.counters.get("host_crash", 0) == 2,
            f"host_crash fired {injector.counters.get('host_crash', 0)}x",
        ),
        InvariantResult(
            "failed-replicas-detected",
            progress["failed_hosts"] == ["host2", "host3"],
            "detected " + ",".join(progress["failed_hosts"]),
        ),
        *suspicion,
        InvariantResult(
            "repairs-completed",
            repairer.repairs == 2
            and [host.name for host in final.replicas]
            == ["host1", "host4", "host5"],
            f"repairs={repairer.repairs} membership="
            + ",".join(host.name for host in final.replicas),
        ),
        check_acked_writes(final, acked),
        check_model_match(final, model),
        check_replicas_identical(final),
        check_no_errors(final),
    ]
    notes = [f"writes re-issued after failures: {progress['reissued']}"]
    return _finish(name, seed, sim, injector, n_ops, invariants, notes)


def _scenario_client_crash(seed: int) -> ScenarioReport:
    """The coordinator itself crashes mid-stream and restarts 1ms
    later: :class:`ClientReattach` rebuilds the read path over fresh
    QPs, pulls the image from the chain head, and re-installs it
    through a fresh group. The writer re-issues the op that died with
    the client."""
    name = "client-crash"
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, n_hosts=4, n_cores=4)
    client = cluster[0]
    region_size = 1 << 14
    generation = [0]

    def factory(members):
        generation[0] += 1
        return HyperLoopGroup(
            client,
            members,
            region_size=region_size,
            rounds=16,
            name=f"{name}.g{generation[0]}",
        )

    group = HyperLoopGroup(
        client, cluster.hosts[1:4], region_size=region_size, rounds=16, name=f"{name}.g0"
    )
    # The crash must land while a gwrite is *in flight* (an op-count
    # trigger fires synchronously between ops), so it hangs off a
    # phase the writer notifies right after posting op 15; the restart
    # hangs off a phase the recoverer reports when it notices the
    # outage.
    plan = (
        FaultPlan(label=name)
        .add("host_crash", target="host0", at_phase="mid-op")
        .add(
            "host_restart",
            target="host0",
            at_phase="client-down",
            phase_delay_ms=1.0,
        )
    )
    injector = FaultInjector(
        sim, cluster.fabric, {host.name: host for host in cluster.hosts}, plan
    )
    reattacher = ClientReattach(client, group, factory)

    rng = sim.rng("chaos-ops")
    slot = 256
    n_ops = 30
    ops = []
    for _ in range(n_ops):
        offset = rng.randrange(region_size // slot) * slot
        size = rng.randrange(16, slot)
        ops.append((offset, bytes([rng.randrange(1, 256)]) * size))

    model = bytearray(region_size)
    acked: Dict[int, bytes] = {}
    progress: Dict[str, object] = {
        "done": False,
        "outage": False,
        "reattached": False,
        "reissued": 0,
    }

    def one_shot(target_group, offset, size):
        def body(task):
            yield from target_group.gwrite(task, offset, size)

        return body

    def writer(task):
        for index, (offset, data) in enumerate(ops):
            while True:
                while client.down or progress["outage"]:
                    yield from task.sleep(100_000)
                current = reattacher.group
                current.write_local(offset, data)
                sub = client.os.spawn(
                    one_shot(current, offset, len(data)), name=f"{name}.op{index}"
                )
                if index == 15:
                    injector.notify_phase("mid-op")  # crash lands on this op
                while (
                    not sub.process.triggered
                    and reattacher.group is current
                    and not client.down
                ):
                    yield from task.sleep(50_000)
                if sub.process.triggered:
                    break
                # The op died with the client (never acked): replay it
                # once the re-attached group is up.
                progress["reissued"] += 1
            model[offset : offset + len(data)] = data
            acked[offset] = data
            injector.notify_op()
        progress["done"] = True

    def recoverer(task):
        while not client.down:
            yield from task.sleep(200_000)
        progress["outage"] = True
        injector.notify_phase("client-down")  # arms the planned restart
        while client.down:
            yield from task.sleep(200_000)
        yield from reattacher.reattach(task)
        progress["reattached"] = True
        progress["outage"] = False

    client.os.spawn(writer, name=f"{name}.writer")
    client.os.spawn(recoverer, name=f"{name}.recover")
    run_until(
        sim,
        lambda: progress["done"] and progress["reattached"],
        deadline_ms=5_000,
    )
    sim.run(until=sim.now + 2 * MS)

    final = reattacher.group
    invariants = [
        _exercised(injector, "host_crash", "host_restart"),
        InvariantResult(
            "reattach-completed",
            reattacher.reattaches == 1 and final is not group,
            f"reattaches={reattacher.reattaches}",
        ),
        check_acked_writes(final, acked),
        check_model_match(final, model),
        check_replicas_identical(final),
        check_no_errors(final),
    ]
    notes = [f"writes re-issued after client crash: {progress['reissued']}"]
    return _finish(name, seed, sim, injector, n_ops, invariants, notes)


# -- power-failure durability scenario ---------------------------------------------


def _scenario_power_failure(seed: int) -> ScenarioReport:
    """Replicated KV store loses power on a replica after the last
    commit; its durable WAL + checkpoint must reconstruct every
    committed operation (gFLUSH closed each durability window)."""
    name = "power-failure"
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, n_hosts=4, n_cores=4)
    region_size = 1 << 15
    group = HyperLoopGroup(
        cluster[0], cluster.hosts[1:4], region_size=region_size, rounds=16, name=name
    )
    n_ops = 24
    plan = FaultPlan(label=name).add(
        "host_power_failure", target="host2", at_op=n_ops
    )
    injector = FaultInjector(
        sim, cluster.fabric, {host.name: host for host in cluster.hosts}, plan
    )
    store = ReplicatedKVStore(group, start_sync_tasks=False, name=f"{name}.kv")
    committed: Dict[bytes, bytes] = {}
    value_rng = sim.rng("pf-values")
    done: List[bool] = []

    def body(task):
        for index in range(n_ops):
            key = f"key{index:03d}".encode()
            if index % 5 == 4 and index >= 2:
                victim = f"key{index - 2:03d}".encode()
                yield from store.delete(task, victim)
                committed.pop(victim, None)
            value = bytes([value_rng.randrange(1, 256)]) * 64
            yield from store.put(task, key, value)
            committed[key] = value
            if index == n_ops // 2:
                yield from store.checkpoint(task)
            injector.notify_op()
        done.append(True)

    cluster[0].os.spawn(body, name=f"{name}.writer")
    run_until(sim, lambda: bool(done), deadline_ms=5_000)

    invariants = [
        _exercised(injector, "host_power_failure"),
        check_wal_recovery(store, 1, committed, name="wal-recovery-failed-replica"),
        check_wal_recovery(store, 0, committed, name="wal-recovery-survivor"),
        check_replicas_identical(group),
        check_no_errors(group),
    ]
    notes = [f"committed keys at failure: {len(committed)}"]
    return _finish(name, seed, sim, injector, n_ops, invariants, notes)


# -- transaction-layer scenarios (repro.txn under faults) ---------------------------


def _txn_spec_runner(coordinator, spec, outcome):
    """A one-shot task body running one transaction spec.

    Spawned as a probe sub-task so the caller can abandon it if its
    chain dies mid-commit (the coordinator's epoch guard keeps the
    zombie from committing after failover)."""
    from ..txn import TxnAborted

    def bump(value):
        current = int.from_bytes(value or b"\x00", "little")
        return ((current + 1) & 0xFFFFFFFF).to_bytes(8, "little")

    def body(task):
        txn = yield from coordinator.begin(task)
        try:
            if spec[0] == "init":
                for key in spec[1]:
                    coordinator.write(txn, key, (1).to_bytes(8, "little"))
            elif spec[0] == "rmw":
                value = yield from coordinator.read(task, txn, spec[1])
                coordinator.write(txn, spec[1], bump(value))
            elif spec[0] == "insert":
                coordinator.insert(txn, spec[1], (1).to_bytes(8, "little"))
            elif spec[0] == "scan":
                yield from coordinator.scan(task, txn, spec[1], spec[2])
            else:  # transfer
                first = yield from coordinator.read(task, txn, spec[1])
                second = yield from coordinator.read(task, txn, spec[2])
                coordinator.write(txn, spec[1], bump(first))
                coordinator.write(txn, spec[2], bump(second))
            yield from coordinator.commit(task, txn)
            outcome["result"] = "committed"
        except TxnAborted as exc:
            outcome["result"] = f"aborted:{exc.reason}"

    return body


def _scenario_txn_failover(seed: int) -> ScenarioReport:
    """A replica of a transaction participant group dies while commits
    are flowing: the heartbeat monitor suspects it, ChainRepair splices
    in the spare, the coordinator's failover reset aborts the parked
    epoch and drains the WAL, and the workload resumes — with the
    committed history still anomaly-free, snapshot reads never stale,
    and every published version durable on the repaired chain."""
    from ..txn import AvailabilityTracker, TxnCoordinator, VersionedGroupStore
    from ..storage.transactions import TransactionManager

    name = "txn-failover"
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, n_hosts=8, n_cores=4)
    client = cluster[0]
    group_a_hosts = cluster.hosts[1:4]
    group_b_hosts = cluster.hosts[4:7]
    spare = cluster[7]
    region_size = 1 << 14
    generation = [0]

    def factory(members):
        generation[0] += 1
        return HyperLoopGroup(
            client,
            members,
            region_size=region_size,
            rounds=16,
            name=f"{name}.a{generation[0]}",
        )

    group_a = HyperLoopGroup(
        client, group_a_hosts, region_size=region_size, rounds=16, name=f"{name}.a0"
    )
    group_b = HyperLoopGroup(
        client, group_b_hosts, region_size=region_size, rounds=16, name=f"{name}.b"
    )
    stores = [
        VersionedGroupStore(TransactionManager(group_a, writer_id=1), name=f"{name}.s0"),
        VersionedGroupStore(TransactionManager(group_b, writer_id=2), name=f"{name}.s1"),
    ]
    tracker = AvailabilityTracker()
    coordinator = TxnCoordinator(stores, mode="ssi", tracker=tracker, name=name)

    crash_at_op = 6
    plan = FaultPlan(label=name).add("host_crash", target="host2", at_op=crash_at_op)
    injector = FaultInjector(
        sim, cluster.fabric, {host.name: host for host in cluster.hosts}, plan
    )
    monitor = HeartbeatMonitor(
        client, group_a_hosts, interval=2 * MS, miss_threshold=3, name=f"{name}.hb"
    )
    pause_hook = tracker.on_repair_phase(0)

    def on_phase(phase):
        pause_hook(phase)
        injector.notify_phase(phase)

    repairer = ChainRepair(client, group_a, factory, on_phase=on_phase)

    keys = [f"k{index:02d}".encode() for index in range(8)]
    rng = sim.rng("chaos-ops")
    n_ops = 18
    specs = [("init", tuple(keys))]
    for _ in range(n_ops - 1):
        if rng.random() < 0.5:
            specs.append(("rmw", rng.choice(keys)))
        else:
            first, second = rng.sample(keys, 2)
            specs.append(("transfer", first, second))

    progress: Dict[str, object] = {
        "done": False,
        "repaired": False,
        "rebound": False,
        "failed_index": None,
        "drained": None,
        "reissued": 0,
        "retried": 0,
    }

    def writer(task):
        for index, spec in enumerate(specs):
            while True:
                while repairer.paused or (
                    repairer.repairs > 0 and not progress["rebound"]
                ):
                    yield from task.sleep(100_000)
                current = repairer.group
                outcome: Dict[str, str] = {}
                sub = client.os.spawn(
                    _txn_spec_runner(coordinator, spec, outcome),
                    name=f"{name}.t{index}",
                )
                while (
                    not sub.process.triggered
                    and repairer.group is current
                    and not repairer.paused
                ):
                    yield from task.sleep(50_000)
                if sub.process.triggered:
                    result = outcome.get("result", "")
                    if result in ("aborted:failover", "aborted:stale-epoch"):
                        progress["retried"] += 1
                        continue  # epoch casualty — replay on the new chain
                    break
                # The chain died under this transaction (commit parked
                # on a dead ack, never acknowledged): abandon the probe
                # and replay once the coordinator has rebound.
                progress["reissued"] += 1
            injector.notify_op()
        progress["done"] = True

    def detector(task):
        index = yield from monitor.wait_for_suspicion(task)
        progress["failed_index"] = index
        monitor.stop_beats(index)
        yield from repairer.repair(
            task, index, spare, copy_from=0 if index != 0 else 1
        )
        progress["repaired"] = True
        drained = yield from coordinator.reset_after_failover(
            task, 0, repairer.group
        )
        progress["drained"] = drained
        progress["rebound"] = True

    client.os.spawn(writer, name=f"{name}.writer")
    client.os.spawn(detector, name=f"{name}.detector")
    run_until(
        sim,
        lambda: progress["done"] and progress["rebound"],
        deadline_ms=10_000,
    )
    sim.run(until=sim.now + 5 * MS)

    invariants = [
        _exercised(injector, "host_crash"),
        InvariantResult(
            "failed-replica-detected",
            progress["failed_index"] == 1,
            f"suspected index {progress['failed_index']}",
        ),
        InvariantResult(
            "repair-completed",
            repairer.repairs == 1 and progress["rebound"] is True,
            f"repairs={repairer.repairs} wal_drained={progress['drained']}",
        ),
        check_no_serialization_anomaly(coordinator),
        check_read_your_writes(coordinator),
        check_txn_acked_writes(coordinator),
        check_no_errors(group_b, name="no-group-errors-b"),
    ]
    notes = [
        f"committed={coordinator.commits} "
        f"failover_aborts={coordinator.aborts_failover} "
        f"reissued={progress['reissued']} retried={progress['retried']} "
        f"read_failovers={tracker.failovers}"
    ]
    return _finish(name, seed, sim, injector, len(specs), invariants, notes)


def _scenario_txn_insert(seed: int) -> ScenarioReport:
    """A replica dies under an insert-bearing commit install: the
    in-flight insert's slot assignment survives as an orphan the epoch
    guard keeps unpublished, the heartbeat/repair/reset path splices in
    the spare, and the replayed insert commits on the repaired chain —
    with scans over the mixed keyspace staying anomaly-free and every
    acked insert durable."""
    from ..txn import AvailabilityTracker, TxnCoordinator, VersionedGroupStore
    from ..storage.transactions import TransactionManager

    name = "txn-insert"
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, n_hosts=8, n_cores=4)
    client = cluster[0]
    group_a_hosts = cluster.hosts[1:4]
    group_b_hosts = cluster.hosts[4:7]
    spare = cluster[7]
    region_size = 1 << 14
    generation = [0]

    def factory(members):
        generation[0] += 1
        return HyperLoopGroup(
            client,
            members,
            region_size=region_size,
            rounds=16,
            name=f"{name}.a{generation[0]}",
        )

    group_a = HyperLoopGroup(
        client, group_a_hosts, region_size=region_size, rounds=16, name=f"{name}.a0"
    )
    group_b = HyperLoopGroup(
        client, group_b_hosts, region_size=region_size, rounds=16, name=f"{name}.b"
    )
    stores = [
        VersionedGroupStore(TransactionManager(group_a, writer_id=1), name=f"{name}.s0"),
        VersionedGroupStore(TransactionManager(group_b, writer_id=2), name=f"{name}.s1"),
    ]
    tracker = AvailabilityTracker()
    coordinator = TxnCoordinator(stores, mode="ssi", tracker=tracker, name=name)

    # The crash fires when the sixth spec's notify lands, so spec 6 —
    # an insert by construction of the kind cycle below — finds the
    # replica dead while its commit install is on the wire.
    crash_at_op = 6
    plan = FaultPlan(label=name).add("host_crash", target="host2", at_op=crash_at_op)
    injector = FaultInjector(
        sim, cluster.fabric, {host.name: host for host in cluster.hosts}, plan
    )
    monitor = HeartbeatMonitor(
        client, group_a_hosts, interval=2 * MS, miss_threshold=3, name=f"{name}.hb"
    )
    pause_hook = tracker.on_repair_phase(0)

    def on_phase(phase):
        pause_hook(phase)
        injector.notify_phase(phase)

    repairer = ChainRepair(client, group_a, factory, on_phase=on_phase)

    keys = [f"k{index:02d}".encode() for index in range(6)]
    rng = sim.rng("chaos-ops")
    n_ops = 16
    specs = [("init", tuple(keys))]
    inserted = 0
    for index in range(1, n_ops):
        kind = ("scan", "rmw", "insert")[index % 3]  # index 6 -> insert
        if kind == "insert":
            specs.append(("insert", f"n{inserted:02d}".encode()))
            inserted += 1
        elif kind == "scan":
            specs.append(("scan", rng.choice(keys), 4))
        else:
            specs.append(("rmw", rng.choice(keys)))

    progress: Dict[str, object] = {
        "done": False,
        "repaired": False,
        "rebound": False,
        "failed_index": None,
        "drained": None,
        "reissued": 0,
        "retried": 0,
    }

    def writer(task):
        for index, spec in enumerate(specs):
            while True:
                while repairer.paused or (
                    repairer.repairs > 0 and not progress["rebound"]
                ):
                    yield from task.sleep(100_000)
                current = repairer.group
                outcome: Dict[str, str] = {}
                sub = client.os.spawn(
                    _txn_spec_runner(coordinator, spec, outcome),
                    name=f"{name}.t{index}",
                )
                while (
                    not sub.process.triggered
                    and repairer.group is current
                    and not repairer.paused
                ):
                    yield from task.sleep(50_000)
                if sub.process.triggered:
                    result = outcome.get("result", "")
                    if result in ("aborted:failover", "aborted:stale-epoch"):
                        progress["retried"] += 1
                        continue  # epoch casualty — replay on the new chain
                    break
                # The chain died under this commit (an insert's install
                # parked on a dead ack): abandon the probe — the epoch
                # guard keeps its orphan slot unpublished — and replay
                # once the coordinator has rebound.
                progress["reissued"] += 1
            injector.notify_op()
        progress["done"] = True

    def detector(task):
        index = yield from monitor.wait_for_suspicion(task)
        progress["failed_index"] = index
        monitor.stop_beats(index)
        yield from repairer.repair(
            task, index, spare, copy_from=0 if index != 0 else 1
        )
        progress["repaired"] = True
        drained = yield from coordinator.reset_after_failover(
            task, 0, repairer.group
        )
        progress["drained"] = drained
        progress["rebound"] = True

    client.os.spawn(writer, name=f"{name}.writer")
    client.os.spawn(detector, name=f"{name}.detector")
    run_until(
        sim,
        lambda: progress["done"] and progress["rebound"],
        deadline_ms=10_000,
    )
    sim.run(until=sim.now + 5 * MS)

    committed_inserts = sum(
        1
        for txn in coordinator.history
        if any(key.startswith(b"n") for key in txn.writes)
    )
    invariants = [
        _exercised(injector, "host_crash"),
        InvariantResult(
            "failed-replica-detected",
            progress["failed_index"] == 1,
            f"suspected index {progress['failed_index']}",
        ),
        InvariantResult(
            "repair-completed",
            repairer.repairs == 1 and progress["rebound"] is True,
            f"repairs={repairer.repairs} wal_drained={progress['drained']}",
        ),
        InvariantResult(
            "inserts-replayed",
            committed_inserts >= 1,
            f"insert-bearing commits: {committed_inserts}",
        ),
        check_no_serialization_anomaly(coordinator),
        check_read_your_writes(coordinator),
        check_txn_acked_writes(coordinator),
        check_no_errors(group_b, name="no-group-errors-b"),
    ]
    notes = [
        f"committed={coordinator.commits} inserts={committed_inserts} "
        f"failover_aborts={coordinator.aborts_failover} "
        f"phantom_aborts={coordinator.aborts_phantom} "
        f"reissued={progress['reissued']} retried={progress['retried']} "
        f"read_failovers={tracker.failovers}"
    ]
    return _finish(name, seed, sim, injector, len(specs), invariants, notes)


def _scenario_txn_chaos(seed: int) -> ScenarioReport:
    """The SSI workload — concurrent mixed transactions plus one
    rendezvoused write-skew pair — on a lossy fabric (drops, delays,
    duplicates). RC retransmission must absorb the noise; the committed
    history must stay anomaly-free and every version durable, and the
    write skew must still be caught."""
    from ..txn import TxnAborted, TxnCoordinator, VersionedGroupStore
    from ..storage.transactions import TransactionManager

    name = "txn-chaos"
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, n_hosts=4, n_cores=4)
    client = cluster[0]
    region_size = 1 << 14
    groups = [
        HyperLoopGroup(
            client,
            cluster.hosts[1:4],
            region_size=region_size,
            rounds=16,
            name=f"{name}.g{index}",
        )
        for index in range(2)
    ]
    stores = [
        VersionedGroupStore(
            TransactionManager(group, writer_id=index + 1), name=f"{name}.s{index}"
        )
        for index, group in enumerate(groups)
    ]
    coordinator = TxnCoordinator(stores, mode="ssi", name=name)

    plan = (
        FaultPlan(label=name)
        .add("drop", probability=0.01)
        .add("delay", probability=0.04, extra_delay_ns=2_000)
        .add("duplicate", probability=0.02, duplicates=1)
    )
    injector = FaultInjector(
        sim, cluster.fabric, {host.name: host for host in cluster.hosts}, plan
    )

    keys = [f"k{index:02d}".encode() for index in range(8)]
    skew_x, skew_y = b"wsx", b"wsy"
    rng = sim.rng("chaos-ops")
    n_workers = 2
    ops_per_worker = 6
    plans = []
    for _ in range(n_workers):
        ops = []
        for _ in range(ops_per_worker):
            if rng.random() < 0.5:
                ops.append(("rmw", rng.choice(keys)))
            else:
                first, second = rng.sample(keys, 2)
                ops.append(("transfer", first, second))
        plans.append(ops)

    progress: Dict[str, object] = {"init": False, "workers": 0, "pairs": 0}
    rendezvous = [False, False]

    def init_body(task):
        outcome: Dict[str, str] = {}
        yield from _txn_spec_runner(
            coordinator, ("init", tuple(keys) + (skew_x, skew_y)), outcome
        )(task)
        progress["init"] = True

    def worker_body(worker):
        def body(task):
            for spec in plans[worker]:
                outcome: Dict[str, str] = {}
                yield from _txn_spec_runner(coordinator, spec, outcome)(task)
                injector.notify_op()
            progress["workers"] += 1

        return body

    def skew_body(side):
        def body(task):
            txn = yield from coordinator.begin(task)
            try:
                yield from coordinator.read(task, txn, skew_x)
                yield from coordinator.read(task, txn, skew_y)
                rendezvous[side] = True
                while not (rendezvous[0] and rendezvous[1]):
                    yield from task.sleep(5_000)
                coordinator.write(
                    txn, skew_y if side == 0 else skew_x, (0).to_bytes(8, "little")
                )
                yield from coordinator.commit(task, txn)
            except TxnAborted:
                pass
            progress["pairs"] += 1

        return body

    client.os.spawn(init_body, name=f"{name}.init")
    run_until(sim, lambda: progress["init"], deadline_ms=10_000)
    for worker in range(n_workers):
        client.os.spawn(worker_body(worker), name=f"{name}.w{worker}")
    for side in range(2):
        client.os.spawn(skew_body(side), name=f"{name}.ws{side}")
    run_until(
        sim,
        lambda: progress["workers"] == n_workers and progress["pairs"] == 2,
        deadline_ms=10_000,
    )
    sim.run(until=sim.now + 2 * MS)

    invariants = [
        _exercised(injector, "drop", "delay", "duplicate"),
        InvariantResult(
            "write-skew-caught",
            coordinator.aborts_ssi >= 1,
            f"ssi aborts={coordinator.aborts_ssi}",
        ),
        check_no_serialization_anomaly(coordinator),
        check_read_your_writes(coordinator),
        check_txn_acked_writes(coordinator),
        *[
            check_no_errors(group, name=f"no-group-errors-{index}")
            for index, group in enumerate(groups)
        ],
    ]
    notes = [
        f"committed={coordinator.commits} "
        f"aborts_ssi={coordinator.aborts_ssi} aborts_ww={coordinator.aborts_ww}"
    ]
    return _finish(
        name, seed, sim, injector, 1 + n_workers * ops_per_worker + 2, invariants, notes
    )


def _scenario_txn_double_failover(seed: int) -> ScenarioReport:
    """Overlapping failovers: one replica of *each* participant group
    dies at the same workload op. Two detector/repair pipelines run
    concurrently, rendezvous once both chains are spliced, and then
    both groups sit inside ``reset_after_failover`` at the same time —
    the epoch bumps twice, every parked commit is cleared, and the
    committed history must still be anomaly-free with nothing acked
    lost and no snapshot read served stale."""
    from ..txn import AvailabilityTracker, TxnCoordinator, VersionedGroupStore
    from ..storage.transactions import TransactionManager

    name = "txn-double-failover"
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, n_hosts=10, n_cores=4)
    client = cluster[0]
    group_hosts = [cluster.hosts[1:4], cluster.hosts[4:7]]
    spares = [cluster[7], cluster[8]]
    region_size = 1 << 14
    generation = [0]

    def factory(members):
        generation[0] += 1
        return HyperLoopGroup(
            client,
            members,
            region_size=region_size,
            rounds=16,
            name=f"{name}.r{generation[0]}",
        )

    groups = [
        HyperLoopGroup(
            client,
            hosts,
            region_size=region_size,
            rounds=16,
            name=f"{name}.g{index}",
        )
        for index, hosts in enumerate(group_hosts)
    ]
    stores = [
        VersionedGroupStore(
            TransactionManager(group, writer_id=index + 1), name=f"{name}.s{index}"
        )
        for index, group in enumerate(groups)
    ]
    tracker = AvailabilityTracker()
    coordinator = TxnCoordinator(stores, mode="ssi", tracker=tracker, name=name)

    # Both crashes trigger off the same op count, so the two failure
    # windows open together and the repairs genuinely overlap.
    crash_at_op = 6
    plan = (
        FaultPlan(label=name)
        .add("host_crash", target="host2", at_op=crash_at_op)
        .add("host_crash", target="host5", at_op=crash_at_op)
    )
    injector = FaultInjector(
        sim, cluster.fabric, {host.name: host for host in cluster.hosts}, plan
    )
    monitors = [
        HeartbeatMonitor(
            client, hosts, interval=2 * MS, miss_threshold=3, name=f"{name}.hb{index}"
        )
        for index, hosts in enumerate(group_hosts)
    ]
    repairers = []
    for index, group in enumerate(groups):
        pause_hook = tracker.on_repair_phase(index)

        def on_phase(phase, hook=pause_hook):
            hook(phase)
            injector.notify_phase(phase)

        repairers.append(ChainRepair(client, group, factory, on_phase=on_phase))

    keys = [f"k{index:02d}".encode() for index in range(8)]
    rng = sim.rng("chaos-ops")
    n_ops = 14
    specs = [("init", tuple(keys))]
    for _ in range(n_ops - 1):
        if rng.random() < 0.5:
            specs.append(("rmw", rng.choice(keys)))
        else:
            first, second = rng.sample(keys, 2)
            specs.append(("transfer", first, second))

    progress: Dict[str, object] = {
        "done": False,
        "failed": [None, None],
        "repaired": [False, False],
        "rebound": [False, False],
        "drained": [None, None],
        "reset_span": [[None, None], [None, None]],
        "reissued": 0,
        "retried": 0,
    }

    def blocked() -> bool:
        return any(repairer.paused for repairer in repairers) or any(
            repairers[g].repairs > 0 and not progress["rebound"][g]
            for g in range(2)
        )

    def writer(task):
        for index, spec in enumerate(specs):
            while True:
                while blocked():
                    yield from task.sleep(100_000)
                current = tuple(repairer.group for repairer in repairers)
                outcome: Dict[str, str] = {}
                sub = client.os.spawn(
                    _txn_spec_runner(coordinator, spec, outcome),
                    name=f"{name}.t{index}",
                )
                while (
                    not sub.process.triggered
                    and tuple(r.group for r in repairers) == current
                    and not any(r.paused for r in repairers)
                ):
                    yield from task.sleep(50_000)
                if sub.process.triggered:
                    result = outcome.get("result", "")
                    if result in ("aborted:failover", "aborted:stale-epoch"):
                        progress["retried"] += 1
                        continue  # epoch casualty — replay post-reset
                    break
                progress["reissued"] += 1  # chain died under the probe
            injector.notify_op()
        progress["done"] = True

    def detector(g: int):
        monitor, repairer = monitors[g], repairers[g]

        def body(task):
            index = yield from monitor.wait_for_suspicion(task)
            progress["failed"][g] = index
            monitor.stop_beats(index)
            yield from repairer.repair(
                task, index, spares[g], copy_from=0 if index != 0 else 1
            )
            progress["repaired"][g] = True
            # Rendezvous: both chains spliced before either resets, so
            # the two reset_after_failover calls are in flight at once.
            # Fine-grained poll: a reset only lasts tens of µs, so a
            # coarse wakeup would let one finish before the other starts.
            while not all(progress["repaired"]):
                yield from task.sleep(5_000)
            progress["reset_span"][g][0] = sim.now
            drained = yield from coordinator.reset_after_failover(
                task, g, repairer.group
            )
            progress["reset_span"][g][1] = sim.now
            progress["drained"][g] = drained
            progress["rebound"][g] = True

        return body

    client.os.spawn(writer, name=f"{name}.writer")
    for g in range(2):
        client.os.spawn(detector(g), name=f"{name}.detector{g}")
    run_until(
        sim,
        lambda: progress["done"] and all(progress["rebound"]),
        deadline_ms=15_000,
    )
    sim.run(until=sim.now + 5 * MS)

    spans = progress["reset_span"]
    complete = all(span[0] is not None and span[1] is not None for span in spans)
    overlap_ns = (
        min(span[1] for span in spans) - max(span[0] for span in spans)
        if complete
        else -1
    )
    invariants = [
        _exercised(injector, "host_crash"),
        InvariantResult(
            "both-replicas-detected",
            progress["failed"] == [1, 1],
            f"suspected indices {progress['failed']}",
        ),
        InvariantResult(
            "both-repairs-completed",
            all(repairer.repairs == 1 for repairer in repairers)
            and all(progress["rebound"]),
            f"repairs={[r.repairs for r in repairers]} "
            f"drained={progress['drained']}",
        ),
        InvariantResult(
            "resets-overlapped",
            complete and overlap_ns >= 0,
            f"overlap={overlap_ns / MS:.3f}ms" if complete else "incomplete",
        ),
        check_no_serialization_anomaly(coordinator),
        check_read_your_writes(coordinator),
        check_txn_acked_writes(coordinator),
    ]
    notes = [
        f"committed={coordinator.commits} epoch={coordinator.epoch} "
        f"failover_aborts={coordinator.aborts_failover} "
        f"reissued={progress['reissued']} retried={progress['retried']} "
        f"read_failovers={tracker.failovers}"
    ]
    return _finish(name, seed, sim, injector, len(specs), invariants, notes)


def _scenario_txn_reset_crash(seed: int) -> ScenarioReport:
    """A crash lands *inside* ``reset_after_failover``: the first
    failover's reset is draining the repaired chain's WAL when a
    surviving replica of that same chain dies, parking the reset on a
    dead ack forever. A second detect/repair round must splice again,
    break the parked reset's stale lock, and finish the drain — with
    the history anomaly-free and every acked write durable."""
    from ..txn import AvailabilityTracker, TxnCoordinator, VersionedGroupStore
    from ..storage.transactions import TransactionManager

    name = "txn-reset-crash"
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, n_hosts=10, n_cores=4)
    client = cluster[0]
    replicas = cluster.hosts[1:4]
    group_b_hosts = cluster.hosts[4:7]
    spares = [cluster[7], cluster[8]]
    region_size = 1 << 14
    generation = [0]

    def factory(members):
        generation[0] += 1
        return HyperLoopGroup(
            client,
            members,
            region_size=region_size,
            rounds=16,
            name=f"{name}.a{generation[0]}",
        )

    group_a = HyperLoopGroup(
        client, replicas, region_size=region_size, rounds=16, name=f"{name}.a0"
    )
    group_b = HyperLoopGroup(
        client, group_b_hosts, region_size=region_size, rounds=16, name=f"{name}.b"
    )
    stores = [
        VersionedGroupStore(TransactionManager(group_a, writer_id=1), name=f"{name}.s0"),
        VersionedGroupStore(TransactionManager(group_b, writer_id=2), name=f"{name}.s1"),
    ]
    tracker = AvailabilityTracker()
    coordinator = TxnCoordinator(stores, mode="ssi", tracker=tracker, name=name)

    # host2 dies mid-commit; host3 (a survivor carried into the
    # repaired chain) dies the moment the first reset starts — the
    # detector reports the "reset" phase right before calling it, and
    # zero phase delay lands the crash inside the WAL drain.
    plan = (
        FaultPlan(label=name)
        .add("host_crash", target="host2", at_op=5)
        .add("host_crash", target="host3", at_phase="reset", phase_delay_ms=0.0)
    )
    injector = FaultInjector(
        sim, cluster.fabric, {host.name: host for host in cluster.hosts}, plan
    )
    candidates = list(replicas) + [spares[0]]
    monitor = HeartbeatMonitor(
        client, candidates, interval=2 * MS, miss_threshold=3, name=f"{name}.hb"
    )
    pause_hook = tracker.on_repair_phase(0)

    def on_phase(phase):
        pause_hook(phase)
        injector.notify_phase(phase)

    repairer = ChainRepair(client, group_a, factory, on_phase=on_phase)

    keys = [f"k{index:02d}".encode() for index in range(8)]
    rng = sim.rng("chaos-ops")
    n_ops = 14
    specs = [("init", tuple(keys))]
    for _ in range(n_ops - 1):
        if rng.random() < 0.5:
            specs.append(("rmw", rng.choice(keys)))
        else:
            first, second = rng.sample(keys, 2)
            specs.append(("transfer", first, second))

    progress: Dict[str, object] = {
        "done": False,
        "failed_hosts": [],
        "resets_started": 0,
        "resets_done": [],
        "rebound": False,
        "reissued": 0,
        "retried": 0,
    }

    def writer(task):
        for index, spec in enumerate(specs):
            while True:
                while repairer.paused or (
                    repairer.repairs > 0 and not progress["rebound"]
                ):
                    yield from task.sleep(100_000)
                current = repairer.group
                outcome: Dict[str, str] = {}
                sub = client.os.spawn(
                    _txn_spec_runner(coordinator, spec, outcome),
                    name=f"{name}.t{index}",
                )
                while (
                    not sub.process.triggered
                    and repairer.group is current
                    and not repairer.paused
                ):
                    yield from task.sleep(50_000)
                if sub.process.triggered:
                    result = outcome.get("result", "")
                    if result in ("aborted:failover", "aborted:stale-epoch"):
                        progress["retried"] += 1
                        continue
                    break
                progress["reissued"] += 1
            injector.notify_op()
        progress["done"] = True

    def reset_probe(round_: int):
        def body(task):
            drained = yield from coordinator.reset_after_failover(
                task, 0, repairer.group
            )
            progress["resets_done"].append((round_, drained))
            progress["rebound"] = True

        return body

    def detector(task):
        handled = set()
        for round_ in range(2):
            while True:
                found = None
                for index in range(len(candidates)):
                    if index not in handled and monitor.suspected(index):
                        found = index
                        break
                if found is not None:
                    break
                yield from task.sleep(monitor.interval)
            handled.add(found)
            failed_host = candidates[found]
            progress["failed_hosts"].append(failed_host.name)
            monitor.stop_beats(found)
            current = repairer.group
            failed_index = current.replicas.index(failed_host)
            yield from repairer.repair(
                task,
                failed_index,
                spares[round_],
                copy_from=0 if failed_index != 0 else 1,
            )
            # The reset runs as an abandonable probe: round 1's parks
            # forever on the freshly-crashed survivor's ack (the
            # "reset" phase fires host3's crash with zero delay), and
            # this task must stay free to run the second round.
            injector.notify_phase("reset")
            progress["resets_started"] += 1
            client.os.spawn(reset_probe(round_), name=f"{name}.reset{round_}")

    client.os.spawn(writer, name=f"{name}.writer")
    client.os.spawn(detector, name=f"{name}.detector")
    run_until(
        sim,
        lambda: progress["done"] and progress["rebound"],
        deadline_ms=20_000,
    )
    sim.run(until=sim.now + 5 * MS)

    invariants = [
        _exercised(injector, "host_crash"),
        InvariantResult(
            "crashes-in-order",
            progress["failed_hosts"] == ["host2", "host3"],
            f"failed hosts {progress['failed_hosts']}",
        ),
        InvariantResult(
            "first-reset-interrupted",
            progress["resets_started"] == 2
            and [round_ for round_, _ in progress["resets_done"]] == [1],
            f"started={progress['resets_started']} "
            f"completed={progress['resets_done']}",
        ),
        InvariantResult(
            "two-repair-rounds",
            repairer.repairs == 2 and progress["rebound"] is True,
            f"repairs={repairer.repairs}",
        ),
        check_no_serialization_anomaly(coordinator),
        check_read_your_writes(coordinator),
        check_txn_acked_writes(coordinator),
        check_no_errors(group_b, name="no-group-errors-b"),
    ]
    notes = [
        f"committed={coordinator.commits} epoch={coordinator.epoch} "
        f"failover_aborts={coordinator.aborts_failover} "
        f"reissued={progress['reissued']} retried={progress['retried']} "
        f"read_failovers={tracker.failovers}"
    ]
    return _finish(name, seed, sim, injector, len(specs), invariants, notes)


# -- registry and matrix ------------------------------------------------------------


@dataclass(frozen=True)
class _Scenario:
    run: Callable[[int], ScenarioReport]
    description: str


SCENARIOS: Dict[str, _Scenario] = {
    "drop": _Scenario(_scenario_drop, "3% message loss under a gWRITE stream"),
    "lossy": _Scenario(
        _scenario_lossy, "corrupt+duplicate+delay+drop under all three primitives"
    ),
    "partition": _Scenario(
        _scenario_partition, "3ms bidirectional mid-chain partition, then heal"
    ),
    "stall": _Scenario(_scenario_stall, "mid-chain NIC stalls 1.5ms, then resumes"),
    "nic-crash": _Scenario(
        _scenario_nic_crash, "mid-chain NIC crash -> heartbeat -> chain repair"
    ),
    "host-crash": _Scenario(
        _scenario_host_crash, "mid-chain host crash -> heartbeat -> chain repair"
    ),
    "power-failure": _Scenario(
        _scenario_power_failure, "replica power loss; WAL recovery from durable NVM"
    ),
    "partition-repair": _Scenario(
        _scenario_partition_repair,
        "host crash -> repair with a partition landing mid-catch-up",
    ),
    "double-crash": _Scenario(
        _scenario_double_crash, "two replicas die in sequence; two repair rounds"
    ),
    "stall-lossy": _Scenario(
        _scenario_stall_lossy, "NIC stall layered on drop+delay+duplicate fabric"
    ),
    "client-crash": _Scenario(
        _scenario_client_crash, "coordinator crash -> restart -> re-attach + catch-up"
    ),
    "txn-failover": _Scenario(
        _scenario_txn_failover,
        "replica crash mid-commit -> repair -> txn epoch reset + replay",
    ),
    "txn-insert": _Scenario(
        _scenario_txn_insert,
        "replica crash under an insert-bearing commit install -> replay",
    ),
    "txn-chaos": _Scenario(
        _scenario_txn_chaos,
        "SSI transaction mix + write skew on a drop+delay+duplicate fabric",
    ),
    "txn-double-failover": _Scenario(
        _scenario_txn_double_failover,
        "both txn groups lose a replica at once; overlapping repair + reset",
    ),
    "txn-reset-crash": _Scenario(
        _scenario_txn_reset_crash,
        "survivor crash lands mid-reset_after_failover; second round recovers",
    ),
}

COMPOUND_SCENARIOS = (
    "partition-repair",
    "double-crash",
    "stall-lossy",
    "client-crash",
    "txn-insert",
    "txn-chaos",
    "txn-double-failover",
    "txn-reset-crash",
)
"""The overlapping-failure subset — the default sweep matrix."""


def run_scenario(name: str, seed: int) -> ScenarioReport:
    """Run one registered scenario with the given seed."""
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; have {', '.join(sorted(SCENARIOS))}"
        ) from None
    return scenario.run(seed)


def run_matrix(seed: int, names: Optional[Sequence[str]] = None) -> List[ScenarioReport]:
    """Run the full matrix (or a subset) with one seed."""
    return [run_scenario(name, seed) for name in (names or list(SCENARIOS))]


def render_matrix(reports: Sequence[ScenarioReport]) -> str:
    """Deterministic text report for a matrix run."""
    passed = sum(1 for report in reports if report.passed)
    lines = [f"chaos matrix: {passed}/{len(reports)} scenarios passed", ""]
    for report in reports:
        lines.append(report.render())
        lines.append("")
    lines.append(
        "RESULT: PASS" if passed == len(reports) else "RESULT: FAIL"
    )
    return "\n".join(lines)
