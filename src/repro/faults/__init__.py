"""repro.faults — deterministic fault injection + failover verification.

The robustness pillar: HyperLoop's replication guarantees only matter
under failure, so this package makes failures schedulable, seeded and
reproducible bit-for-bit:

* :class:`FaultEvent` / :class:`FaultPlan` — a declarative schedule of
  faults (message drop / extra delay / duplication / corruption,
  host-pair partitions, NIC stall/crash, host crash/power-failure),
  triggered at a sim time, at an operation count, or probabilistically
  per message from a named :meth:`~repro.sim.Simulator.rng` stream.
* :class:`FaultInjector` — the live object wiring a plan into the
  hardware: it installs itself as the fabric's fault filter and
  schedules node-level events on the sim clock.
* :class:`ChaosScenario` machinery (:func:`run_scenario`,
  :func:`run_matrix`) — pairs a workload with a plan and a set of
  invariant checkers; ``python -m repro chaos`` runs the matrix.
* :mod:`repro.faults.invariants` — the checks every scenario must
  hold: no acknowledged gWRITE lost, surviving replicas byte-identical,
  WAL recovery restores every committed operation, heartbeat suspicion
  within its bound.

Determinism contract: a scenario's report depends only on ``(scenario,
seed)``. Probabilistic draws come from ``sim.rng("faults/<label>")``,
timed events from the virtual clock, and reports never include host
wall-clock state — two runs with the same seed render byte-identical
reports (the CI chaos job asserts this).
"""

from .plan import (
    ACTIONS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)
from .invariants import InvariantResult, check_model_match, check_replicas_identical
from .scenario import (
    COMPOUND_SCENARIOS,
    SCENARIOS,
    ScenarioReport,
    render_matrix,
    run_matrix,
    run_scenario,
)
from .sweep import (
    SWEEP_SCENARIOS,
    SweepReport,
    generate_plan,
    run_generated,
    run_replay,
    run_sweep,
    shrink_failure,
)

__all__ = [
    "ACTIONS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "InvariantResult",
    "check_model_match",
    "check_replicas_identical",
    "COMPOUND_SCENARIOS",
    "SCENARIOS",
    "ScenarioReport",
    "run_scenario",
    "run_matrix",
    "render_matrix",
    "SWEEP_SCENARIOS",
    "SweepReport",
    "generate_plan",
    "run_generated",
    "run_replay",
    "run_sweep",
    "shrink_failure",
]
