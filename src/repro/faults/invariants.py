"""Invariant checkers chaos scenarios assert after running.

Each checker returns an :class:`InvariantResult` — a named pass/fail
with a short deterministic detail string (offsets and counts, never
wall-clock state), so scenario reports render byte-identical across
runs with the same seed.

The invariants come straight from the paper's guarantees:

* *No acknowledged gWRITE lost* — once the tail ACK reached the
  client, the bytes exist on every (surviving) replica.
* *Replicas byte-identical* — after repair and quiesce, chain
  replication leaves no divergence.
* *WAL recovery restores committed operations* — a replica's durable
  log + checkpoint reconstruct exactly the committed table (§5.1).
* *Suspicion within bound* — a crashed replica is suspected within
  ``miss_threshold`` beat intervals plus detection slack (§5.1).

The transaction layer (``repro.txn``) adds three more:

* *No serialization anomaly* — the committed history's full
  serialization graph (ww + wr + rw edges) is acyclic, checked offline
  and independently of whatever the online SSI rules claimed.
* *Read-your-writes across failover* — every snapshot read observed
  exactly the version its snapshot timestamp entitles it to, and every
  own-write read returned the buffered value, even when the read
  failed over to a surviving replica.
* *No acked txn write lost* — the newest published version of every
  key is durably present (and identical) on every surviving replica of
  its owning group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

__all__ = [
    "InvariantResult",
    "check_model_match",
    "check_replicas_identical",
    "check_no_errors",
    "check_acked_writes",
    "check_suspicion_bound",
    "check_wal_recovery",
    "check_no_serialization_anomaly",
    "check_read_your_writes",
    "check_txn_acked_writes",
    "tally_invariants",
]


@dataclass(frozen=True)
class InvariantResult:
    """Outcome of one invariant check."""

    name: str
    ok: bool
    detail: str = ""

    def render(self) -> str:
        state = "PASS" if self.ok else "FAIL"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{state}] {self.name}{suffix}"


def check_model_match(group, model: bytes, name: str = "model-match") -> InvariantResult:
    """Every replica's region equals the client-side model, byte for byte."""
    model = bytes(model)
    diverged = []
    for replica in range(group.group_size):
        actual = group.read_replica(replica, 0, group.region_size)
        if actual != model:
            first = next(
                index for index in range(len(model)) if actual[index] != model[index]
            )
            diverged.append(f"r{replica}@+{first}")
    if diverged:
        return InvariantResult(name, False, "diverged: " + ", ".join(diverged))
    return InvariantResult(name, True, f"{group.group_size} replicas x {len(model)}B")


def check_replicas_identical(group, name: str = "replicas-identical") -> InvariantResult:
    """All replica regions are pairwise identical."""
    reference = group.read_replica(0, 0, group.region_size)
    for replica in range(1, group.group_size):
        actual = group.read_replica(replica, 0, group.region_size)
        if actual != reference:
            first = next(
                index
                for index in range(len(reference))
                if actual[index] != reference[index]
            )
            return InvariantResult(name, False, f"r{replica} differs from r0 at +{first}")
    return InvariantResult(name, True, f"{group.group_size} replicas")


def check_no_errors(group, name: str = "no-group-errors") -> InvariantResult:
    """The group surfaced no completion errors."""
    if group.errors:
        return InvariantResult(name, False, f"{len(group.errors)}: {group.errors[0]}")
    return InvariantResult(name, True)


def check_acked_writes(
    group, acked: Mapping[int, bytes], name: str = "no-acked-write-lost"
) -> InvariantResult:
    """Every acknowledged write's bytes are present on every replica.

    ``acked`` maps region offset to the *latest* acknowledged contents
    at that offset (the caller keeps only the newest write per slab, so
    overwrites don't false-positive).
    """
    missing: List[str] = []
    for offset in sorted(acked):
        data = acked[offset]
        for replica in range(group.group_size):
            actual = group.read_replica(replica, offset, len(data))
            if actual != data:
                missing.append(f"r{replica}@{offset}")
    if missing:
        return InvariantResult(
            name, False, f"{len(missing)} lost: " + ", ".join(missing[:4])
        )
    return InvariantResult(name, True, f"{len(acked)} acked writes verified")


def check_suspicion_bound(
    monitor, crash_ns: int, detect_ns: int, slack_intervals: int = 3,
    name: str = "suspicion-bound",
) -> InvariantResult:
    """Detection latency stays within the configured heartbeat bound.

    A replica that crashes right after beating is suspected at worst
    ``(miss_threshold + 1)`` intervals later; polling adds up to one
    more. ``slack_intervals`` covers both.
    """
    bound = (monitor.miss_threshold + slack_intervals) * monitor.interval
    latency = detect_ns - crash_ns
    detail = f"{latency}ns <= {bound}ns"
    if latency < 0:
        return InvariantResult(name, False, f"suspected before the crash: {latency}ns")
    if latency > bound:
        return InvariantResult(name, False, detail.replace("<=", ">"))
    return InvariantResult(name, True, detail)


def check_wal_recovery(
    store, replica: int, expected: Mapping[bytes, bytes], name: str = "wal-recovery"
) -> InvariantResult:
    """Recovering from one replica's durable state yields the committed table."""
    recovered: Dict[bytes, bytes] = store.recover_from_replica(replica)
    expected = dict(expected)
    if recovered == expected:
        return InvariantResult(name, True, f"r{replica}: {len(expected)} keys")
    missing = sorted(key for key in expected if key not in recovered)
    wrong = sorted(
        key for key in expected if key in recovered and recovered[key] != expected[key]
    )
    extra = sorted(key for key in recovered if key not in expected)
    parts = []
    if missing:
        parts.append(f"missing={len(missing)} first={missing[0]!r}")
    if wrong:
        parts.append(f"wrong={len(wrong)} first={wrong[0]!r}")
    if extra:
        parts.append(f"extra={len(extra)} first={extra[0]!r}")
    return InvariantResult(name, False, f"r{replica}: " + ", ".join(parts))


def check_no_serialization_anomaly(
    coordinator, name: str = "no-serialization-anomaly"
) -> InvariantResult:
    """The committed history's serialization graph is acyclic.

    Reconstructed offline from ww + wr + rw edges over the version
    order — independent of the online SSI bookkeeping, so a bug in the
    pivot rule (or a history that slipped past it during failover)
    fails here.
    """
    from ..txn.ssi import describe_cycle

    anomaly = describe_cycle(coordinator.history)
    if anomaly != "none":
        return InvariantResult(name, False, anomaly)
    return InvariantResult(
        name, True, f"{len(coordinator.history)} committed, acyclic"
    )


def check_read_your_writes(
    coordinator, name: str = "read-your-writes-failover"
) -> InvariantResult:
    """Every read observed exactly what its snapshot entitles it to.

    Three sub-checks over the coordinator's observation log and
    committed history:

    * no snapshot read was served from a durable copy *behind* the
      version chain (``stale`` flag — the Available-Copies rules must
      keep unwritten-since-recovery replicas out of rotation);
    * each committed transaction's recorded read versions match an
      independent reconstruction from the history (newest commit at or
      before its snapshot);
    * own-write reads only ever happened for keys the transaction
      actually wrote.
    """
    stale = [
        obs for obs in coordinator.observations if obs["stale"]
    ]
    if stale:
        first = stale[0]
        return InvariantResult(
            name,
            False,
            f"{len(stale)} stale reads, first T{first['txid']} "
            f"{first['key']!r} from r{first['replica']}",
        )
    by_txid = {txn.txid: txn for txn in coordinator.history}
    mismatches: List[str] = []
    for txn in coordinator.history:
        for key, seen_ts in txn.reads.items():
            expected = max(
                (
                    other.commit_ts
                    for other in coordinator.history
                    if key in other.writes and other.commit_ts <= txn.begin_ts
                ),
                default=0,
            )
            if seen_ts != expected:
                mismatches.append(
                    f"T{txn.txid} {key!r} saw ts={seen_ts} expected {expected}"
                )
    for obs in coordinator.observations:
        if obs["kind"] != "own-write":
            continue
        txn = by_txid.get(obs["txid"])
        if txn is not None and obs["key"] not in txn.writes:
            mismatches.append(
                f"T{obs['txid']} own-write read of unwritten {obs['key']!r}"
            )
    if mismatches:
        return InvariantResult(
            name, False, f"{len(mismatches)}: " + "; ".join(mismatches[:2])
        )
    reads = sum(1 for obs in coordinator.observations if obs["kind"] != "own-write")
    return InvariantResult(name, True, f"{reads} reads consistent")


def check_txn_acked_writes(
    coordinator, name: str = "no-acked-write-lost"
) -> InvariantResult:
    """The newest published version of every key is durable everywhere.

    For each key, every surviving replica of the owning group must
    hold a slot record at least as new as the newest *published*
    version (a strictly newer record is a legal orphan of an
    unfinished commit; an older one means an acknowledged commit's
    bytes were lost).
    """
    lost: List[str] = []
    checked = 0
    for store in coordinator.stores:
        group = store.group
        for key in sorted(store.versions):
            latest = store.latest(key)
            if latest is None:
                continue
            for replica in range(group.group_size):
                if group.replicas[replica].down:
                    continue
                checked += 1
                durable = store.read_durable_offline(replica, key)
                if durable is None or durable[0] < latest.commit_ts:
                    lost.append(f"{store.name}:r{replica}:{key!r}")
                elif durable[0] == latest.commit_ts and durable[3] != latest.value:
                    lost.append(f"{store.name}:r{replica}:{key!r} (corrupt)")
    if lost:
        return InvariantResult(
            name, False, f"{len(lost)} lost: " + ", ".join(lost[:4])
        )
    return InvariantResult(name, True, f"{checked} replica slots verified")


def tally_invariants(
    runs: Iterable[Sequence[Mapping]],
) -> Dict[str, Tuple[int, int]]:
    """Fold many runs' invariant lists into ``{name: (passed, failed)}``.

    Accepts the normalized (dict) form sweep results travel in —
    each run is a sequence of ``{"name": ..., "ok": ...}`` mappings —
    and preserves first-seen order, so the aggregate renders
    deterministically regardless of which worker produced which run.
    """
    tally: Dict[str, Tuple[int, int]] = {}
    for run in runs:
        for result in run:
            name, ok = result["name"], result["ok"]
            passed, failed = tally.get(name, (0, 0))
            tally[name] = (passed + (1 if ok else 0), failed + (0 if ok else 1))
    return tally
