"""Invariant checkers chaos scenarios assert after running.

Each checker returns an :class:`InvariantResult` — a named pass/fail
with a short deterministic detail string (offsets and counts, never
wall-clock state), so scenario reports render byte-identical across
runs with the same seed.

The invariants come straight from the paper's guarantees:

* *No acknowledged gWRITE lost* — once the tail ACK reached the
  client, the bytes exist on every (surviving) replica.
* *Replicas byte-identical* — after repair and quiesce, chain
  replication leaves no divergence.
* *WAL recovery restores committed operations* — a replica's durable
  log + checkpoint reconstruct exactly the committed table (§5.1).
* *Suspicion within bound* — a crashed replica is suspected within
  ``miss_threshold`` beat intervals plus detection slack (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

__all__ = [
    "InvariantResult",
    "check_model_match",
    "check_replicas_identical",
    "check_no_errors",
    "check_acked_writes",
    "check_suspicion_bound",
    "check_wal_recovery",
    "tally_invariants",
]


@dataclass(frozen=True)
class InvariantResult:
    """Outcome of one invariant check."""

    name: str
    ok: bool
    detail: str = ""

    def render(self) -> str:
        state = "PASS" if self.ok else "FAIL"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{state}] {self.name}{suffix}"


def check_model_match(group, model: bytes, name: str = "model-match") -> InvariantResult:
    """Every replica's region equals the client-side model, byte for byte."""
    model = bytes(model)
    diverged = []
    for replica in range(group.group_size):
        actual = group.read_replica(replica, 0, group.region_size)
        if actual != model:
            first = next(
                index for index in range(len(model)) if actual[index] != model[index]
            )
            diverged.append(f"r{replica}@+{first}")
    if diverged:
        return InvariantResult(name, False, "diverged: " + ", ".join(diverged))
    return InvariantResult(name, True, f"{group.group_size} replicas x {len(model)}B")


def check_replicas_identical(group, name: str = "replicas-identical") -> InvariantResult:
    """All replica regions are pairwise identical."""
    reference = group.read_replica(0, 0, group.region_size)
    for replica in range(1, group.group_size):
        actual = group.read_replica(replica, 0, group.region_size)
        if actual != reference:
            first = next(
                index
                for index in range(len(reference))
                if actual[index] != reference[index]
            )
            return InvariantResult(name, False, f"r{replica} differs from r0 at +{first}")
    return InvariantResult(name, True, f"{group.group_size} replicas")


def check_no_errors(group, name: str = "no-group-errors") -> InvariantResult:
    """The group surfaced no completion errors."""
    if group.errors:
        return InvariantResult(name, False, f"{len(group.errors)}: {group.errors[0]}")
    return InvariantResult(name, True)


def check_acked_writes(
    group, acked: Mapping[int, bytes], name: str = "no-acked-write-lost"
) -> InvariantResult:
    """Every acknowledged write's bytes are present on every replica.

    ``acked`` maps region offset to the *latest* acknowledged contents
    at that offset (the caller keeps only the newest write per slab, so
    overwrites don't false-positive).
    """
    missing: List[str] = []
    for offset in sorted(acked):
        data = acked[offset]
        for replica in range(group.group_size):
            actual = group.read_replica(replica, offset, len(data))
            if actual != data:
                missing.append(f"r{replica}@{offset}")
    if missing:
        return InvariantResult(
            name, False, f"{len(missing)} lost: " + ", ".join(missing[:4])
        )
    return InvariantResult(name, True, f"{len(acked)} acked writes verified")


def check_suspicion_bound(
    monitor, crash_ns: int, detect_ns: int, slack_intervals: int = 3,
    name: str = "suspicion-bound",
) -> InvariantResult:
    """Detection latency stays within the configured heartbeat bound.

    A replica that crashes right after beating is suspected at worst
    ``(miss_threshold + 1)`` intervals later; polling adds up to one
    more. ``slack_intervals`` covers both.
    """
    bound = (monitor.miss_threshold + slack_intervals) * monitor.interval
    latency = detect_ns - crash_ns
    detail = f"{latency}ns <= {bound}ns"
    if latency < 0:
        return InvariantResult(name, False, f"suspected before the crash: {latency}ns")
    if latency > bound:
        return InvariantResult(name, False, detail.replace("<=", ">"))
    return InvariantResult(name, True, detail)


def check_wal_recovery(
    store, replica: int, expected: Mapping[bytes, bytes], name: str = "wal-recovery"
) -> InvariantResult:
    """Recovering from one replica's durable state yields the committed table."""
    recovered: Dict[bytes, bytes] = store.recover_from_replica(replica)
    expected = dict(expected)
    if recovered == expected:
        return InvariantResult(name, True, f"r{replica}: {len(expected)} keys")
    missing = sorted(key for key in expected if key not in recovered)
    wrong = sorted(
        key for key in expected if key in recovered and recovered[key] != expected[key]
    )
    extra = sorted(key for key in recovered if key not in expected)
    parts = []
    if missing:
        parts.append(f"missing={len(missing)} first={missing[0]!r}")
    if wrong:
        parts.append(f"wrong={len(wrong)} first={wrong[0]!r}")
    if extra:
        parts.append(f"extra={len(extra)} first={extra[0]!r}")
    return InvariantResult(name, False, f"r{replica}: " + ", ".join(parts))


def tally_invariants(
    runs: Iterable[Sequence[Mapping]],
) -> Dict[str, Tuple[int, int]]:
    """Fold many runs' invariant lists into ``{name: (passed, failed)}``.

    Accepts the normalized (dict) form sweep results travel in —
    each run is a sequence of ``{"name": ..., "ok": ...}`` mappings —
    and preserves first-seen order, so the aggregate renders
    deterministically regardless of which worker produced which run.
    """
    tally: Dict[str, Tuple[int, int]] = {}
    for run in runs:
        for result in run:
            name, ok = result["name"], result["ok"]
            passed, failed = tally.get(name, (0, 0))
            tally[name] = (passed + (1 if ok else 0), failed + (0 if ok else 1))
    return tally
