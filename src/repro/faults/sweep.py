"""Seeded chaos sweeps: fuzz the fault plane, aggregate, shrink.

The sweep harness closes the loop PR 3 opened: instead of hand-written
plans only, a *generator* samples random recoverable
:class:`~repro.faults.plan.FaultPlan`s — event types, windows,
probabilities — from one named RNG stream, runs N seeds × M scenarios
through the :mod:`repro.bench.parallel` pool, and folds per-invariant
pass/fail into one :class:`SweepReport`.

Determinism rules (the whole design hangs on these):

* The generator stream is ``random.Random(f"{seed}/faults/sweep-gen")``
  — exactly the construction :meth:`repro.sim.Simulator.rng` uses for
  a named stream, so ``generate_plan(seed)`` is a pure function of the
  seed and never touches global RNG state.
* A sweep point is a pure function of ``(scenario, seed)``; per-point
  seeds come from :func:`~repro.bench.parallel.derive_seed`. Results
  come back in spec order whatever the worker count, and
  :class:`SweepReport` contains no wall-clock state — its rendering is
  byte-identical for 1 worker and 16.
* Shrinking replays ``(seed, index-subset)`` — never a mutated plan
  object — so a shrunk failure is reproducible from its replay command
  alone: ``python -m repro chaos --replay generated:SEED:i0,i1``.

Generated plans contain only *recoverable* faults (message rules,
stall/resume pairs, partition/heal pairs); crash/repair flows live in
the hand-written compound scenarios, which the sweep runs alongside
the generated stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..bench.harness import run_until
from ..bench.parallel import RunResult, RunSpec, derive_seed, run_parallel
from ..core.group import HyperLoopGroup
from ..hw.host import Cluster
from ..sim import MS, Simulator
from .invariants import (
    InvariantResult,
    check_acked_writes,
    check_model_match,
    check_no_errors,
    check_replicas_identical,
    tally_invariants,
)
from .plan import FaultInjector, FaultPlan
from .scenario import (
    COMPOUND_SCENARIOS,
    ScenarioReport,
    _finish,
    run_scenario,
)

__all__ = [
    "GENERATED",
    "SABOTAGES",
    "SWEEP_SCENARIOS",
    "SweepReport",
    "generate_plan",
    "run_generated",
    "run_chaos_point",
    "run_sweep",
    "build_report",
    "shrink_failure",
    "parse_replay",
    "run_replay",
    "replay_command",
]


GENERATED = "generated"
SWEEP_SCENARIOS: Tuple[str, ...] = COMPOUND_SCENARIOS + (GENERATED,)
"""Default sweep matrix: every compound scenario plus the fuzzer."""


# -- fault-plan generator -----------------------------------------------------------


_GEN_HOSTS = ("host0", "host1", "host2", "host3")
_GEN_STREAM = "faults/sweep-gen"


def generate_plan(seed: int) -> FaultPlan:
    """Sample a random recoverable fault plan; pure in ``seed``.

    2–6 events drawn from one named stream. Message rules get bounded
    probabilities and optional activation windows; stall and partition
    faults are always emitted as (fault, recovery) pairs whose windows
    close before the scenario's drain, so every generated plan is
    survivable by design — failures indicate harness bugs, not
    unsatisfiable plans.
    """
    rng = random.Random(f"{seed}/{_GEN_STREAM}")
    plan = FaultPlan(label=f"gen-{seed}")
    for _ in range(rng.randint(2, 6)):
        kind = rng.choice(
            ["drop", "delay", "duplicate", "corrupt", "stall", "partition"]
        )
        if kind in ("drop", "delay", "duplicate", "corrupt"):
            at_ms: Optional[float] = None
            until_ms: Optional[float] = None
            if rng.random() < 0.5:
                at_ms = round(rng.uniform(0.0, 2.0), 3)
                until_ms = round(at_ms + rng.uniform(0.5, 2.0), 3)
            target = rng.choice(_GEN_HOSTS) if rng.random() < 0.3 else None
            if kind == "drop":
                plan.add(
                    "drop",
                    probability=round(rng.uniform(0.005, 0.03), 4),
                    at_ms=at_ms,
                    until_ms=until_ms,
                    target=target,
                )
            elif kind == "delay":
                plan.add(
                    "delay",
                    probability=round(rng.uniform(0.01, 0.1), 4),
                    extra_delay_ns=rng.randrange(500, 5_000),
                    at_ms=at_ms,
                    until_ms=until_ms,
                    target=target,
                )
            elif kind == "duplicate":
                plan.add(
                    "duplicate",
                    probability=round(rng.uniform(0.005, 0.03), 4),
                    duplicates=rng.randint(1, 2),
                    at_ms=at_ms,
                    until_ms=until_ms,
                    target=target,
                )
            else:
                plan.add(
                    "corrupt",
                    probability=round(rng.uniform(0.005, 0.02), 4),
                    at_ms=at_ms,
                    until_ms=until_ms,
                    target=target,
                )
        elif kind == "stall":
            start = round(rng.uniform(0.2, 1.5), 3)
            length = round(rng.uniform(0.3, 1.5), 3)
            target = rng.choice(_GEN_HOSTS[1:])  # never the client
            plan.add("nic_stall", target=target, at_ms=start)
            plan.add("nic_resume", target=target, at_ms=round(start + length, 3))
        else:
            pair = tuple(rng.sample(_GEN_HOSTS, 2))
            start = round(rng.uniform(0.2, 1.5), 3)
            length = round(rng.uniform(0.5, 2.0), 3)
            plan.add("partition", pair=pair, at_ms=start)
            plan.add("heal", pair=pair, at_ms=round(start + length, 3))
    return plan


# -- sabotage hooks (intentionally-broken invariants, for shrink tests) -------------


def _sabotage_corrupt_fired(injector: FaultInjector) -> InvariantResult:
    hits = injector.counters.get("corrupt", 0)
    return InvariantResult(
        "sabotage-corrupt-fired", hits == 0, f"corrupt={hits}"
    )


def _sabotage_drop_fired(injector: FaultInjector) -> InvariantResult:
    hits = injector.counters.get("drop", 0)
    return InvariantResult("sabotage-drop-fired", hits == 0, f"drop={hits}")


def _sabotage_any_fault(injector: FaultInjector) -> InvariantResult:
    total = sum(injector.counters.values())
    return InvariantResult("sabotage-any-fault", total == 0, f"fired={total}")


SABOTAGES = {
    "corrupt-fired": _sabotage_corrupt_fired,
    "drop-fired": _sabotage_drop_fired,
    "any-fault": _sabotage_any_fault,
}
"""Named broken invariants: each fails iff a fault class actually hit.

These exist to *test the shrinker* (and demo it end-to-end): sabotage
``corrupt-fired`` and the minimal reproducing plan is exactly the
corrupt rule(s) whose hits made it fire.
"""


# -- the generated-plan scenario ----------------------------------------------------


def run_generated(
    seed: int,
    keep: Optional[Sequence[int]] = None,
    sabotage: Optional[str] = None,
) -> ScenarioReport:
    """Run one generated plan against the gWRITE-stream harness.

    ``keep`` replays an index subset of the generated plan (the
    shrinker's replay path); ``sabotage`` appends a deliberately
    broken invariant from :data:`SABOTAGES`. No ``fault-exercised``
    check here: a generated plan whose windows fall after the stream
    legitimately fires nothing.
    """
    plan = generate_plan(seed)
    if keep is not None:
        plan = plan.subset(keep)
    name = GENERATED
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, n_hosts=4, n_cores=4)
    region_size = 1 << 12
    group = HyperLoopGroup(
        cluster[0], cluster.hosts[1:4], region_size=region_size, rounds=16, name=name
    )
    injector = FaultInjector(
        sim, cluster.fabric, {host.name: host for host in cluster.hosts}, plan
    )
    rng = sim.rng("chaos-ops")
    slot = 128
    n_ops = 20
    ops = []
    for _ in range(n_ops):
        offset = rng.randrange(region_size // slot) * slot
        size = rng.randrange(16, slot)
        ops.append((offset, bytes([rng.randrange(1, 256)]) * size))

    model = bytearray(region_size)
    acked: Dict[int, bytes] = {}
    done: List[bool] = []

    def body(task):
        for offset, data in ops:
            group.write_local(offset, data)
            model[offset : offset + len(data)] = data
            yield from group.gwrite(task, offset, len(data))
            acked[offset] = data
            injector.notify_op()
            yield from task.sleep(100_000)  # pace ops across fault windows
        done.append(True)

    cluster[0].os.spawn(body, name=f"{name}.writer")
    hang = None
    try:
        run_until(sim, lambda: bool(done), deadline_ms=10_000)
    except TimeoutError:
        # A hang is a *finding*, not a crash: report it as a failed
        # invariant so the sweep aggregates it and the shrinker can
        # minimize the plan that caused it (e.g. an orphaned stall in
        # a hand-replayed subset).
        hang = f"workload stuck after {len(acked)}/{n_ops} acked ops"
    # Drain past the largest generated window (heals land by ~3.5ms)
    # plus retransmission tails.
    sim.run(until=max(sim.now, int(4.0 * MS)) + 2 * MS)

    invariants = [
        InvariantResult("no-hang", hang is None, hang or f"{n_ops} ops completed"),
        check_acked_writes(group, acked),
        check_model_match(group, model),
        check_replicas_identical(group),
        check_no_errors(group),
    ]
    if sabotage is not None:
        invariants.append(SABOTAGES[sabotage](injector))
    notes = [f"plan: {'; '.join(plan.describe()) or '(empty)'}"]
    return _finish(name, seed, sim, injector, n_ops, invariants, notes)


# -- pool integration ---------------------------------------------------------------


def run_chaos_point(name: str, seed: int, **kwargs: Any) -> ScenarioReport:
    """The ``chaos`` runner target (see ``repro.bench.parallel.RUNNERS``).

    ``name`` is either a registered scenario or :data:`GENERATED`;
    workers resolve this function by import path, so a sweep ships only
    ``(scenario, seed)`` tuples across the pool.

    With ``REPRO_SHARDS`` set, the point replays in a shard worker
    process under the window-bounded kernel loop (chaos scenarios are
    single replication cliques, so they contain rather than split) and
    the report must byte-match the inline run.
    """
    from ..sim.shard import maybe_contained

    contained = maybe_contained(
        "repro.faults.sweep:run_chaos_point", dict(name=name, seed=seed, **kwargs)
    )
    if contained is not None:
        return contained[0]
    if name == GENERATED:
        return run_generated(seed, **kwargs)
    if kwargs:
        raise ValueError(f"scenario {name!r} takes no extra parameters: {kwargs}")
    return run_scenario(name, seed)


def make_sweep_specs(
    base_seed: int,
    n_seeds: int,
    scenarios: Optional[Sequence[str]] = None,
) -> List[RunSpec]:
    """The sweep's spec list: seeds × scenarios, in deterministic order."""
    names = list(scenarios or SWEEP_SCENARIOS)
    specs: List[RunSpec] = []
    index = 0
    for _ in range(n_seeds):
        for name in names:
            specs.append(
                RunSpec.make(
                    name, derive_seed(base_seed, index), runner="chaos"
                )
            )
            index += 1
    return specs


@dataclass
class SweepReport:
    """Aggregated outcome of one chaos sweep (no wall-clock state)."""

    base_seed: int
    n_seeds: int
    scenarios: List[str]
    runs: int
    passed: int
    per_scenario: Dict[str, Dict[str, Any]]
    failures: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.passed == self.runs

    def render(self) -> str:
        lines = [
            f"chaos sweep: base_seed={self.base_seed} seeds={self.n_seeds} "
            f"scenarios={','.join(self.scenarios)}",
            f"runs: {self.passed}/{self.runs} passed",
            "",
        ]
        for name in self.scenarios:
            agg = self.per_scenario[name]
            lines.append(
                f"  {name}: {agg['passed']}/{agg['runs']} "
                f"(ops={agg['ops']} faults_fired={agg['faults_fired']})"
            )
            for inv_name, (ok_count, fail_count) in agg["invariants"].items():
                marker = "ok " if fail_count == 0 else "FAIL"
                lines.append(
                    f"      [{marker}] {inv_name}: {ok_count} pass"
                    + (f", {fail_count} fail" if fail_count else "")
                )
        if self.failures:
            lines.append("")
            lines.append("failures:")
            for failure in self.failures:
                lines.append(
                    f"  {failure['scenario']} seed={failure['seed']}: "
                    f"{failure['invariant']} ({failure['detail']})"
                )
        lines.append("")
        lines.append("RESULT: PASS" if self.ok else "RESULT: FAIL")
        return "\n".join(lines)


def build_report(
    base_seed: int,
    n_seeds: int,
    scenarios: Sequence[str],
    results: Sequence[RunResult],
) -> SweepReport:
    """Fold pool results (spec order) into a :class:`SweepReport`.

    The fold only touches normalized output dicts in their given
    order, so the report is identical for any worker count.
    """
    names = list(scenarios)
    by_scenario: Dict[str, List[Dict[str, Any]]] = {name: [] for name in names}
    failures: List[Dict[str, Any]] = []
    passed = 0
    for result in results:
        output = result.output
        by_scenario[output["name"]].append(output)
        if output["passed"]:
            passed += 1
        else:
            first_bad = next(
                inv for inv in output["invariants"] if not inv["ok"]
            )
            failures.append(
                {
                    "scenario": output["name"],
                    "seed": output["seed"],
                    "invariant": first_bad["name"],
                    "detail": first_bad["detail"],
                }
            )
    per_scenario: Dict[str, Dict[str, Any]] = {}
    for name in names:
        outputs = by_scenario[name]
        per_scenario[name] = {
            "runs": len(outputs),
            "passed": sum(1 for output in outputs if output["passed"]),
            "ops": sum(output["ops"] for output in outputs),
            "faults_fired": sum(
                sum(output["faults"].values()) for output in outputs
            ),
            "invariants": tally_invariants(
                output["invariants"] for output in outputs
            ),
        }
    return SweepReport(
        base_seed=base_seed,
        n_seeds=n_seeds,
        scenarios=names,
        runs=len(results),
        passed=passed,
        per_scenario=per_scenario,
        failures=failures,
    )


def run_sweep(
    base_seed: int,
    n_seeds: int,
    scenarios: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
) -> SweepReport:
    """Run the full sweep through the parallel pool and aggregate."""
    names = list(scenarios or SWEEP_SCENARIOS)
    specs = make_sweep_specs(base_seed, n_seeds, names)
    results = run_parallel(specs, workers=workers)
    return build_report(base_seed, n_seeds, names, results)


# -- shrinking ----------------------------------------------------------------------


def _shrink_units(plan: FaultPlan) -> List[List[int]]:
    """Partition event indices into atomic shrink units.

    A ``(nic_stall, nic_resume)`` or ``(partition, heal)`` pair is one
    unit: dropping a fault but keeping its recovery is pointless, and
    dropping a recovery but keeping its fault turns a survivable plan
    into a guaranteed hang — the shrinker would "minimize" into a
    different failure than the one under investigation.
    """
    units: List[List[int]] = []
    events = plan.events
    index = 0
    while index < len(events):
        event = events[index]
        nxt = events[index + 1] if index + 1 < len(events) else None
        paired = nxt is not None and (
            (
                event.action == "nic_stall"
                and nxt.action == "nic_resume"
                and event.target == nxt.target
            )
            or (
                event.action == "partition"
                and nxt.action == "heal"
                and event.pair == nxt.pair
            )
        )
        if paired:
            units.append([index, index + 1])
            index += 2
        else:
            units.append([index])
            index += 1
    return units


def shrink_failure(
    seed: int,
    sabotage: Optional[str] = None,
) -> Optional[Tuple[List[int], ScenarioReport]]:
    """Bisect a failing generated plan to a minimal event subset.

    ddmin-style and fully deterministic: first try halves (classic
    bisection), then greedy single-unit removal in fixed order until no
    unit can be dropped. Shrinking operates on :func:`_shrink_units`
    (fault/recovery pairs stay together), and a candidate only counts
    as reproducing when the *same invariant* that failed on the full
    plan fails again — not just any failure. Every candidate is a
    fresh run of ``(seed, subset)`` — nothing is carried over — so the
    final subset reproduces from its replay command alone. Returns
    ``None`` when the full plan does not fail (nothing to shrink);
    otherwise the minimal index list and its failing report.
    """
    plan = generate_plan(seed)
    units = _shrink_units(plan)

    full = run_generated(seed, sabotage=sabotage)
    if full.passed:
        return None
    target = next(result.name for result in full.invariants if not result.ok)

    def failing(keep_units: List[List[int]]) -> Optional[ScenarioReport]:
        keep = [index for unit in keep_units for index in unit]
        report = run_generated(seed, keep=keep, sabotage=sabotage)
        for result in report.invariants:
            if result.name == target and not result.ok:
                return report
        return None

    report = full
    # Phase 1: bisect — keep whichever half still fails.
    while len(units) > 1:
        mid = len(units) // 2
        first = failing(units[:mid])
        if first is not None:
            units, report = units[:mid], first
            continue
        second = failing(units[mid:])
        if second is not None:
            units, report = units[mid:], second
            continue
        break  # failure needs events from both halves
    # Phase 2: greedy single-unit removals to a fixed point.
    changed = True
    while changed and len(units) > 1:
        changed = False
        for unit in list(units):
            candidate = [other for other in units if other is not unit]
            result = failing(candidate)
            if result is not None:
                units, report = candidate, result
                changed = True
    return [index for unit in units for index in unit], report


def replay_command(
    seed: int,
    keep: Optional[Sequence[int]] = None,
    sabotage: Optional[str] = None,
) -> str:
    """The shell command that reproduces a (shrunk) generated failure."""
    spec = f"{GENERATED}:{seed}"
    if keep is not None:
        spec += ":" + ",".join(str(index) for index in keep)
    command = f"python -m repro chaos --replay {spec}"
    if sabotage:
        command += f" --sabotage {sabotage}"
    return command


def parse_replay(spec: str) -> Tuple[str, int, Optional[List[int]]]:
    """Parse ``scenario:seed[:i0,i1,...]`` replay specs."""
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise ValueError(
            f"bad replay spec {spec!r} (want scenario:seed[:i0,i1,...])"
        )
    name, seed = parts[0], int(parts[1])
    keep: Optional[List[int]] = None
    if len(parts) == 3 and parts[2]:
        keep = [int(piece) for piece in parts[2].split(",")]
    if keep is not None and name != GENERATED:
        raise ValueError("event subsets only apply to generated plans")
    return name, seed, keep


def run_replay(
    spec: str, sabotage: Optional[str] = None
) -> ScenarioReport:
    """Re-run a failure from its replay spec.

    Honors ``REPRO_SHARDS`` containment like :func:`run_chaos_point`,
    so ``REPRO_SHARDS=1`` replays the regression corpus under the
    sharded engine's windowed dispatch (see ``nightly.yml``).
    """
    from ..sim.shard import maybe_contained

    contained = maybe_contained(
        "repro.faults.sweep:run_replay", dict(spec=spec, sabotage=sabotage)
    )
    if contained is not None:
        return contained[0]
    name, seed, keep = parse_replay(spec)
    if name == GENERATED:
        return run_generated(seed, keep=keep, sabotage=sabotage)
    if sabotage is not None:
        raise ValueError("--sabotage only applies to generated plans")
    return run_scenario(name, seed)
