"""Versioned key storage over one replica group's WAL path.

Each :class:`VersionedGroupStore` owns the keys placed on one
``HyperLoopGroup``. Durable state rides the existing §5 recipe — a
commit's writes for the group become one WAL record installed through
``TransactionManager.transact`` (gWRITE append, gCAS group lock,
gMEMCPY ExecuteAndAdvance, gCAS unlock) — so every replicated-log
guarantee (atomic record application, redo idempotence, durability
before execution) carries over unchanged.

On top of that, the store keeps the *version chain* snapshot reads
need: an in-memory, coordinator-side history of committed versions per
key (the client is the transaction coordinator; its memory of what it
committed is authoritative, exactly like the replicated log's
client-side head/tail). Each key owns one fixed-size DB slot holding
the newest **installed** version as a self-describing record
(:func:`~repro.storage.encoding.encode_version_record`), so one-sided
replica reads can distinguish a visible version from a newer one — or
from an orphan left by a commit that installed durably but crashed
before publishing.

``rebind``/``recover`` are the failover half: after ``ChainRepair``
splices in a replacement, the store points its manager at the new
group, replaces the WAL mutex (the old one may be held forever by a
task parked on the dead chain's ack), breaks the stale group lock the
crashed commit may have left in the copied image, and drains pending
records so the ring cannot fill with orphans.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from ..hw.cpu import Task
from ..sim import Resource
from ..storage.encoding import decode_version_record, encode_version_record
from ..storage.transactions import TransactionManager

__all__ = ["Version", "VersionedGroupStore", "SlotExhausted"]


class SlotExhausted(RuntimeError):
    """The group's DB area has no free slot for a new key."""


@dataclass(frozen=True)
class Version:
    """One committed version of a key."""

    commit_ts: int
    txid: int
    value: bytes


class VersionedGroupStore:
    """Versioned keys on one replica group.

    Parameters
    ----------
    manager:
        The group's :class:`~repro.storage.transactions.TransactionManager`;
        commit installs ride its ``transact``.
    slot_size:
        Bytes per key slot (version header + key + value must fit).
    """

    def __init__(
        self,
        manager: TransactionManager,
        slot_size: int = 256,
        name: str = "vstore",
    ):
        self.manager = manager
        self.slot_size = slot_size
        self.name = name
        # Mirror the sharded store's convention of reserving the final
        # 16 bytes of the DB area (the 2PC decision slot) so layouts
        # stay interchangeable.
        usable = manager.layout.db_size - 16
        self.n_slots = usable // slot_size
        if self.n_slots < 1:
            raise ValueError("DB area too small for a single version slot")
        self._slots: Dict[bytes, int] = {}  # key -> slot index
        self.versions: Dict[bytes, List[Version]] = {}  # ascending commit_ts
        # Ordered index over published keys: what snapshot scans walk.
        # Maintained at publish time (commits are serialized by the
        # coordinator latch, so insertion order is deterministic).
        self._ordered: List[bytes] = []
        self.installs = 0

    @property
    def group(self):
        return self.manager.group

    # -- placement ---------------------------------------------------------------

    def has_slot(self, key: bytes) -> bool:
        return key in self._slots

    def slot_offset(self, key: bytes) -> int:
        """DB offset of the key's slot, assigning one on first write.

        Assignment is sequential in first-write order — deterministic,
        because commits are serialized by the coordinator.
        """
        index = self._slots.get(key)
        if index is None:
            index = len(self._slots)
            if index >= self.n_slots:
                raise SlotExhausted(
                    f"{self.name}: {self.n_slots} slots exhausted at key {key!r}"
                )
            self._slots[key] = index
        return index * self.slot_size

    # -- commit path ---------------------------------------------------------------

    def install(
        self,
        task: Task,
        items: Sequence[Tuple[bytes, bytes]],
        commit_ts: int,
        txid: int,
    ) -> Generator:
        """Durably install a commit's writes for this group.

        One WAL record carries every slot update, so the group's
        changes apply atomically on all replicas. Visibility is
        separate: callers :meth:`publish` only after *every*
        participant group installed.
        """
        changes = []
        for key, value in items:
            record = encode_version_record(commit_ts, txid, key, value)
            if len(record) > self.slot_size:
                raise ValueError(
                    f"{self.name}: versioned record of {len(record)}B "
                    f"exceeds slot of {self.slot_size}B"
                )
            changes.append((self.slot_offset(key), record))
        yield from self.manager.transact(task, changes)
        self.installs += 1

    def publish(
        self, items: Sequence[Tuple[bytes, bytes]], commit_ts: int, txid: int
    ) -> None:
        """Make installed versions visible to snapshot reads.

        Synchronous (no yields): all of a transaction's versions
        appear atomically with respect to every other task. A key's
        first published version also enters the ordered key index —
        this is how an insert becomes scannable.
        """
        for key, value in items:
            chain = self.versions.setdefault(key, [])
            if not chain:
                insort(self._ordered, key)
            chain.append(Version(commit_ts, txid, value))

    # -- snapshot reads -----------------------------------------------------------

    def version_at(self, key: bytes, ts: int) -> Optional[Version]:
        """Newest published version visible at snapshot ``ts``."""
        chain = self.versions.get(key)
        if not chain:
            return None
        for version in reversed(chain):
            if version.commit_ts <= ts:
                return version
        return None

    def latest(self, key: bytes) -> Optional[Version]:
        """Newest published version of a key (any snapshot)."""
        chain = self.versions.get(key)
        return chain[-1] if chain else None

    def keys_from(self, start: bytes) -> Tuple[bytes, ...]:
        """Published keys ``>= start`` in ascending order, as of now.

        Returns a snapshot slice (a scan yields between key reads, and
        a commit publishing mid-scan must not shift the walk); keys
        whose only versions are newer than the caller's snapshot still
        appear — the caller must skip them, and note the rw edge they
        imply.
        """
        return tuple(self._ordered[bisect_left(self._ordered, start) :])

    def read_durable(self, task: Task, key: bytes, replica: int) -> Generator:
        """One-sided read of the key's slot from a replica.

        Returns the decoded ``(commit_ts, txid, key, value)`` record,
        or ``None`` for an empty/torn slot, a slot the key was never
        assigned, or a record belonging to a different key (possible
        only through corruption — slots are never shared).
        """
        index = self._slots.get(key)
        if index is None:
            return None
        raw = yield from self.group.pread(
            task,
            replica,
            self.manager.layout.db_position(index * self.slot_size),
            self.slot_size,
        )
        decoded = decode_version_record(raw)
        if decoded is None or decoded[2] != key:
            return None
        return decoded

    def read_durable_offline(self, replica: int, key: bytes):
        """Test/invariant hook: decode a replica's slot without the sim."""
        index = self._slots.get(key)
        if index is None:
            return None
        raw = self.group.read_replica(
            replica, self.manager.layout.db_position(index * self.slot_size), self.slot_size
        )
        decoded = decode_version_record(raw)
        if decoded is None or decoded[2] != key:
            return None
        return decoded

    # -- failover ------------------------------------------------------------------

    def rebind(self, new_group) -> None:
        """Point the store at the repaired group.

        The replicated log's client-side state (head/tail/next_lsn) is
        authoritative and survives; the repair installed the full
        region image, so the new client mirror and replica WALs match
        it. The WAL mutex is replaced wholesale — a commit parked on
        the dead chain's ack event may hold the old one forever.
        """
        self.manager.group = new_group
        self.manager.log.group = new_group
        self.manager.log._mutex = Resource(
            new_group.sim, capacity=1, name="wal.mutex"
        )
        self.manager.locks.group = new_group

    def recover(self, task: Task) -> Generator:
        """Post-repair cleanup: break our stale lock, drain the WAL.

        If the dead commit crashed inside the critical section, the
        image copied from the survivor has the group lock word set to
        our writer id — clear it, then execute whatever the client
        mirror says is pending (orphans included; readers ignore them
        by version metadata). Returns the number of records drained.
        """
        manager = self.manager
        raw = yield from self.group.pread(
            task, 0, manager.layout.lock_offset, 8
        )
        holder = int.from_bytes(raw, "little") & 0xFFFF_FFFF
        if holder == manager.writer_id:
            yield from self.group.gcas(task, manager.layout.lock_offset, holder, 0)
        yield from manager.locks.wr_lock(task, manager.writer_id)
        try:
            executed = yield from manager.drain(task)
        finally:
            yield from manager.locks.wr_unlock(task, manager.writer_id)
        return executed

    def __repr__(self) -> str:
        return (
            f"<VersionedGroupStore {self.name} keys={len(self._slots)} "
            f"installs={self.installs}>"
        )
