"""Deterministic multi-group transaction workload (`python -m repro txn`).

Builds N replica groups on one cluster, layers the SSI coordinator
over them, and drives a seeded mix of transaction shapes from
concurrent worker tasks:

* ``rmw`` — read a key, write back a bumped value.
* ``transfer`` — read two keys (usually on different groups), move a
  unit between them; the cross-group commit exercises the sorted
  multi-group install path.
* ``readonly`` — scan a few keys; populates wr/rw edges without ever
  being abortable.
* ``write-skew pairs`` — the SI litmus test: two transactions
  rendezvous so each reads both of a key pair, then each writes the
  *other* key, then both try to commit. Plain SI admits both (the
  offline checker then finds the rw/rw cycle); SSI must abort exactly
  one per pair.

Everything is a pure function of ``(seed, parameters)``: key choices
and values come from named ``sim.rng`` streams, timestamps from the
virtual clock, and the report renders no wall-clock state — CI runs
the workload twice (and across ``REPRO_FAST_DISPATCH`` modes) and
byte-diffs the output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..bench.harness import run_until
from ..core.group import HyperLoopGroup
from ..hw.host import Cluster
from ..sim import MS, Simulator
from ..storage.transactions import TransactionManager
from .available_copies import AvailabilityTracker
from .coordinator import TxnAborted, TxnCoordinator
from .mvcc import VersionedGroupStore
from .retry import RetryStats, make_policy, run_with_retries
from .ssi import describe_cycle

__all__ = ["TxnWorkloadReport", "build_txn_system", "run_txn_workload"]


@dataclass
class TxnWorkloadReport:
    """Deterministic outcome of one workload run."""

    seed: int
    mode: str
    n_groups: int
    attempted: int
    commits: int
    aborts_ww: int
    aborts_ssi: int
    aborts_other: int
    reads: int
    failovers: int
    anomaly: str
    sim_ms: float
    mix: List[Tuple[str, int, int]] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    retry: str = "none"
    retry_attempts: int = 0
    retries: int = 0
    gave_up: int = 0
    backoff_ms: float = 0.0
    amplification: float = 0.0
    retry_by_reason: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def aborts(self) -> int:
        return self.aborts_ww + self.aborts_ssi + self.aborts_other

    def render(self) -> str:
        lines = [
            f"=== txn workload (seed {self.seed}, mode {self.mode}, "
            f"{self.n_groups} groups)",
            f"    attempted={self.attempted} committed={self.commits} "
            f"aborted={self.aborts} "
            f"(ww={self.aborts_ww} ssi={self.aborts_ssi} other={self.aborts_other})",
            f"    reads={self.reads} failovers={self.failovers} "
            f"sim_time={self.sim_ms:.3f}ms",
        ]
        for name, attempts, committed in self.mix:
            rate = 100.0 * (attempts - committed) / attempts if attempts else 0.0
            lines.append(
                f"    mix {name}: {committed}/{attempts} committed "
                f"(abort rate {rate:.1f}%)"
            )
        if self.retry != "none":
            reasons = " ".join(
                f"{reason}={count}" for reason, count in self.retry_by_reason
            )
            lines.append(
                f"    retry {self.retry}: attempts={self.retry_attempts} "
                f"retries={self.retries} gave_up={self.gave_up} "
                f"amplification={self.amplification:.2f} "
                f"backoff={self.backoff_ms:.3f}ms"
                + (f" [{reasons}]" if reasons else "")
            )
        lines.append(f"    serialization anomaly: {self.anomaly}")
        for error in self.errors:
            lines.append(f"    error: {error}")
        return "\n".join(lines)


def build_txn_system(
    sim: Simulator,
    cluster: Cluster,
    n_groups: int = 2,
    region_size: int = 1 << 14,
    mode: str = "ssi",
    name: str = "txn",
    replica_hosts=None,
    install: Optional[str] = None,
) -> TxnCoordinator:
    """Groups + versioned stores + coordinator on an existing cluster.

    All groups share the same replica hosts (partitions-per-server, as
    the sharding layer does); pass ``replica_hosts`` to override.
    """
    hosts = replica_hosts if replica_hosts is not None else cluster.hosts[1:4]
    stores = []
    for index in range(n_groups):
        group = HyperLoopGroup(
            cluster[0],
            hosts,
            region_size=region_size,
            rounds=16,
            name=f"{name}.g{index}",
        )
        manager = TransactionManager(group, writer_id=index + 1)
        stores.append(
            VersionedGroupStore(manager, name=f"{name}.s{index}")
        )
    tracker = AvailabilityTracker()
    return TxnCoordinator(
        stores, mode=mode, tracker=tracker, name=name, install=install
    )


def run_txn_workload(
    seed: int = 7,
    mode: str = "ssi",
    n_groups: int = 2,
    n_txns: int = 24,
    n_workers: int = 3,
    write_skew_pairs: int = 2,
    deadline_ms: int = 10_000,
    retry: str = "none",
    install: Optional[str] = None,
) -> TxnWorkloadReport:
    """Run the full mix; returns the deterministic report.

    ``retry`` picks the policy for the main mix ("none" / "immediate"
    / "backoff"); write-skew litmus pairs never retry — the point is
    that exactly one per pair aborts. ``install`` forwards to
    :class:`TxnCoordinator` (parallel vs sequential commit installs);
    ``retry="none", install="sequential"`` reproduces the PR 7
    workload byte-for-byte.
    """
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, n_hosts=4, n_cores=4)
    coordinator = build_txn_system(
        sim, cluster, n_groups=n_groups, mode=mode, install=install
    )
    policy = make_policy(retry, rng=sim.rng("txn-retry"))
    retry_stats = RetryStats()

    keys = [f"k{index:02d}".encode() for index in range(12)]
    skew_keys = [
        (f"ws{pair}x".encode(), f"ws{pair}y".encode())
        for pair in range(write_skew_pairs)
    ]
    rng = sim.rng("txn-ops")

    # Per-worker op plans, drawn up-front from one named stream.
    plans: List[List[Tuple]] = []
    per_worker = max(1, n_txns // n_workers)
    for _ in range(n_workers):
        plan = []
        for _ in range(per_worker):
            kind = rng.choice(["rmw", "rmw", "transfer", "readonly"])
            if kind == "rmw":
                plan.append(("rmw", rng.choice(keys)))
            elif kind == "transfer":
                first, second = rng.sample(keys, 2)
                plan.append(("transfer", first, second))
            else:
                plan.append(("readonly", tuple(rng.sample(keys, 3))))
        plans.append(plan)

    mix_attempts: Dict[str, int] = {}
    mix_commits: Dict[str, int] = {}
    errors: List[str] = []
    progress = {"init": False, "workers": 0, "pairs": 0}

    def bump(value: Optional[bytes]) -> bytes:
        current = int.from_bytes(value or b"\x00", "little")
        return ((current + 1) & 0xFFFFFFFF).to_bytes(8, "little")

    def init_body(task):
        txn = yield from coordinator.begin(task)
        for key in keys:
            coordinator.write(txn, key, (1).to_bytes(8, "little"))
        for x_key, y_key in skew_keys:
            coordinator.write(txn, x_key, (1).to_bytes(8, "little"))
            coordinator.write(txn, y_key, (1).to_bytes(8, "little"))
        yield from coordinator.commit(task, txn)
        progress["init"] = True

    def attempt_spec(spec):
        name = spec[0]

        def attempt(task):
            txn = yield from coordinator.begin(task)
            if name == "rmw":
                value = yield from coordinator.read(task, txn, spec[1])
                coordinator.write(txn, spec[1], bump(value))
            elif name == "transfer":
                first = yield from coordinator.read(task, txn, spec[1])
                second = yield from coordinator.read(task, txn, spec[2])
                coordinator.write(txn, spec[1], bump(first))
                coordinator.write(txn, spec[2], bump(second))
            else:
                for key in spec[1]:
                    yield from coordinator.read(task, txn, key)
            yield from coordinator.commit(task, txn)

        return attempt

    def run_spec(task, spec):
        name = spec[0]
        mix_attempts[name] = mix_attempts.get(name, 0) + 1
        outcome, _, _ = yield from run_with_retries(
            task, policy, attempt_spec(spec), retry_stats
        )
        if outcome == "committed":
            mix_commits[name] = mix_commits.get(name, 0) + 1

    def worker_body(worker):
        def body(task):
            for spec in plans[worker]:
                yield from run_spec(task, spec)
            progress["workers"] += 1

        return body

    # Write-skew pairs: a tiny rendezvous makes the overlap certain —
    # both sides read both keys before either writes, so the rw cycle
    # exists whenever both commit.
    def skew_body(pair, side):
        x_key, y_key = skew_keys[pair]
        rendezvous = skew_state[pair]

        def body(task):
            mix_attempts["write-skew"] = mix_attempts.get("write-skew", 0) + 1
            txn = yield from coordinator.begin(task)
            try:
                yield from coordinator.read(task, txn, x_key)
                yield from coordinator.read(task, txn, y_key)
                rendezvous[side] = True
                while not (rendezvous[0] and rendezvous[1]):
                    yield from task.sleep(5_000)
                coordinator.write(
                    txn, y_key if side == 0 else x_key, (0).to_bytes(8, "little")
                )
                yield from coordinator.commit(task, txn)
                mix_commits["write-skew"] = mix_commits.get("write-skew", 0) + 1
            except TxnAborted:
                pass
            progress["pairs"] += 1

        return body

    skew_state = [[False, False] for _ in range(write_skew_pairs)]

    cluster[0].os.spawn(init_body, name="txn.init")
    run_until(sim, lambda: progress["init"], deadline_ms=deadline_ms)
    for worker in range(n_workers):
        cluster[0].os.spawn(worker_body(worker), name=f"txn.w{worker}")
    for pair in range(write_skew_pairs):
        for side in range(2):
            cluster[0].os.spawn(
                skew_body(pair, side), name=f"txn.ws{pair}.{side}"
            )
    run_until(
        sim,
        lambda: progress["workers"] == n_workers
        and progress["pairs"] == 2 * write_skew_pairs,
        deadline_ms=deadline_ms,
    )
    sim.run(until=sim.now + 2 * MS)

    for store in coordinator.stores:
        errors.extend(store.group.errors)

    mix = [
        (name, mix_attempts[name], mix_commits.get(name, 0))
        for name in sorted(mix_attempts)
    ]
    return TxnWorkloadReport(
        seed=seed,
        mode=mode,
        n_groups=n_groups,
        attempted=1 + sum(mix_attempts.values()),
        commits=coordinator.commits,
        aborts_ww=coordinator.aborts_ww,
        aborts_ssi=coordinator.aborts_ssi,
        aborts_other=coordinator.aborts_unavailable
        + coordinator.aborts_failover
        + coordinator.aborts_user,
        reads=sum(
            1 for obs in coordinator.observations if obs["kind"] != "own-write"
        ),
        failovers=coordinator.tracker.failovers,
        anomaly=describe_cycle(coordinator.history),
        sim_ms=sim.now / MS,
        mix=mix,
        errors=errors[:3],
        retry=policy.name,
        retry_attempts=retry_stats.attempts,
        retries=retry_stats.retries,
        gave_up=retry_stats.gave_up,
        backoff_ms=retry_stats.backoff_ns / MS,
        amplification=retry_stats.amplification,
        retry_by_reason=sorted(retry_stats.by_reason.items()),
    )
