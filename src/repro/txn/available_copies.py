"""Available-Copies read rules: which replica may serve a snapshot read.

Replicated data stays readable while sites fail, but only from copies
known to be current. The classic Available-Copies discipline (per the
RepCRec exemplars) is implemented against this repo's failure
machinery:

* A **crashed or NIC-halted** replica serves nothing — reads fail
  over to the lowest-index surviving replica.
* A group **mid-ChainRepair** serves nothing — reads block until the
  catch-up window closes (``ChainRepair`` reports ``"repair"`` /
  ``"repair-done"`` through its phase hook).
* A **freshly restarted** replica, and a **freshly rebuilt** chain,
  must be *written since recovery* before serving: a restarted host
  holds whatever NVM kept, a new chain holds the catch-up image, and
  neither is trusted until an acked write has traversed the chain
  (``Chain.last_ack_ns`` vs ``Host.last_restart_ns`` — see
  ``HyperLoopGroup.readable_replicas``). ChainRepair's image install
  is itself acked chain writes, so a completed repair re-validates
  every member, including a restarted host spliced back in.

Reads that find no eligible replica block (bounded) rather than serve
a stale copy; :class:`NoAvailableCopy` surfaces when the bound runs
out, and the transaction aborts instead of reading garbage.
"""

from __future__ import annotations

from typing import Callable, Generator, List

from ..hw.cpu import Task
from ..obs.trace import TRACER
from ..sim import MS

__all__ = ["AvailabilityTracker", "NoAvailableCopy"]


class NoAvailableCopy(RuntimeError):
    """No replica became readable within the blocking bound."""


class AvailabilityTracker:
    """Per-group read-side availability state for the txn layer.

    Stores register with :meth:`attach`; ``ChainRepair``'s phase hook
    is bridged in with :meth:`on_repair_phase` so reads pause during
    catch-up. Counters (``failovers``, ``blocks``) are deterministic
    observables the chaos invariants assert on.
    """

    def __init__(self, poll_ns: int = 100_000, max_wait_ns: int = 500 * MS):
        self._stores: List[object] = []
        self._paused: List[bool] = []
        self.poll_ns = poll_ns
        self.max_wait_ns = max_wait_ns
        self.failovers = 0
        self.blocks = 0

    def attach(self, store) -> int:
        """Register a :class:`VersionedGroupStore`; returns its index."""
        self._stores.append(store)
        self._paused.append(False)
        return len(self._stores) - 1

    def on_repair_phase(self, index: int) -> Callable[[str], None]:
        """A ``ChainRepair.on_phase`` callback pausing group ``index``."""

        def hook(phase: str) -> None:
            if phase == "repair":
                self._paused[index] = True
            elif phase == "repair-done":
                self._paused[index] = False

        return hook

    def paused(self, index: int) -> bool:
        return self._paused[index]

    def readable(self, index: int) -> List[int]:
        """Replica indices of group ``index`` eligible to serve reads."""
        if self._paused[index]:
            return []
        group = self._stores[index].group
        if not group.validated_since_birth:
            return []
        return group.readable_replicas()

    def choose(self, task: Task, index: int) -> Generator:
        """Pick a replica for a snapshot read, blocking while none is
        eligible. Returns the replica index; raises
        :class:`NoAvailableCopy` after ``max_wait_ns`` of blocking."""
        deadline = task.sim.now + self.max_wait_ns
        blocked = False
        while True:
            candidates = self.readable(index)
            if candidates:
                replica = candidates[0]
                if replica != 0:
                    self.failovers += 1
                    if TRACER.enabled:
                        TRACER.count("txn.read_failover")
                return replica
            if not blocked:
                blocked = True
                self.blocks += 1
                if TRACER.enabled:
                    TRACER.count("txn.read_blocked")
            if task.sim.now >= deadline:
                raise NoAvailableCopy(
                    f"group {index}: no readable replica within "
                    f"{self.max_wait_ns}ns"
                )
            yield from task.sleep(self.poll_ns)
