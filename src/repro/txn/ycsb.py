"""Transactional YCSB over N replica groups (`python -m repro txn --ycsb`).

Drives the Cooper et al. mixes (:mod:`repro.workloads.ycsb`) through
the SSI coordinator instead of a plain key-value stub: operations are
grouped into short transactions, Zipfian hot keys create genuine
cross-group contention, and aborted transactions go through the
abort-reason-aware retry policies (:mod:`repro.txn.retry`) rather
than being dropped. This is the scale-out evaluation surface the
SafarDB comparison calls for — commit throughput, abort rate by
reason, and retry amplification per mix.

All six Cooper mixes run here: A (50/50 read/update), B (95/5), C
(read-only), F (read-modify-write), D (95/5 read/insert, "latest"
distribution), and E (95/5 scan/insert). Inserts place previously
unseen keys by the coordinator's consistent hash (DB slots assigned
at commit install); scans are snapshot range reads over the per-group
ordered key indexes, with the covered range feeding SSI's phantom
(``ssi-phantom``) detection. E's scan lengths are drawn from the
workload's seeded scan stream, capped by ``max_scan`` to keep the
simulated read fan-out bounded.

Determinism: the operation stream comes from ``YcsbWorkload``'s own
named streams (pure functions of ``(mix, seed)``), the retry jitter
from ``sim.rng("txn-retry")``, and reports render no wall-clock state.
The suite runs per-mix points through the :mod:`repro.bench.parallel`
pool, so its rendering is byte-identical for 1 worker and 8, across
``REPRO_FAST_DISPATCH`` modes, and under ``REPRO_SHARDS=1``
containment (``run_ycsb_point`` honors ``maybe_contained`` exactly
like the chaos runner).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..bench.harness import run_until
from ..bench.parallel import RunSpec, run_parallel
from ..hw.host import Cluster
from ..sim import MS, Simulator
from ..workloads.ycsb import WORKLOADS, Operation, YcsbWorkload
from .retry import RetryStats, make_policy, run_with_retries
from .ssi import describe_cycle
from .workload import build_txn_system

__all__ = [
    "TXN_MIXES",
    "YcsbTxnReport",
    "YcsbSuiteReport",
    "run_ycsb_mix",
    "run_ycsb_point",
    "run_ycsb",
]


TXN_MIXES: Tuple[str, ...] = ("A", "B", "C", "D", "E", "F")
"""Every Cooper mix, now that inserts and scans are transactional."""


@dataclass
class YcsbTxnReport:
    """Deterministic outcome of one mix run."""

    mix: str
    seed: int
    n_groups: int
    n_keys: int
    n_txns: int
    ops: int
    committed: int
    gave_up: int
    attempts: int
    retries: int
    amplification: float
    backoff_ms: float
    retry: str
    aborts_ww: int
    aborts_ssi: int
    aborts_unavailable: int
    aborts_other: int
    throughput_tps: float
    sim_ms: float
    anomaly: str
    aborts_phantom: int = 0
    inserts: int = 0
    scans: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def aborts(self) -> int:
        return (
            self.aborts_ww
            + self.aborts_ssi
            + self.aborts_phantom
            + self.aborts_unavailable
            + self.aborts_other
        )

    def abort_rate(self) -> float:
        """Aborted attempts per attempt (retries keep the denominator honest)."""
        return self.aborts / self.attempts if self.attempts else 0.0

    def render(self) -> str:
        lines = [
            f"    mix {self.mix}: {self.committed}/{self.n_txns} txns committed "
            f"({self.ops} ops, {self.attempts} attempts)",
            f"        throughput={self.throughput_tps:.0f} txn/s "
            f"abort_rate={100.0 * self.abort_rate():.1f}% "
            f"amplification={self.amplification:.2f}",
            f"        aborts: ww={self.aborts_ww} ssi={self.aborts_ssi} "
            f"phantom={self.aborts_phantom} "
            f"unavailable={self.aborts_unavailable} other={self.aborts_other} "
            f"gave_up={self.gave_up}",
        ]
        if self.inserts or self.scans:
            lines.append(
                f"        inserts={self.inserts} scans={self.scans}"
            )
        lines.append(
            f"        retries={self.retries} backoff={self.backoff_ms:.3f}ms "
            f"sim_time={self.sim_ms:.3f}ms anomaly={self.anomaly}"
        )
        return "\n".join(
            lines + [f"        error: {error}" for error in self.errors]
        )


@dataclass
class YcsbSuiteReport:
    """All requested mixes, one seed, one rendering CI byte-diffs."""

    seed: int
    n_groups: int
    retry: str
    mixes: List[YcsbTxnReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(
            not report.errors and report.anomaly == "none"
            for report in self.mixes
        )

    def render(self) -> str:
        lines = [
            f"=== txn ycsb (seed {self.seed}, {self.n_groups} groups, "
            f"retry {self.retry})"
        ]
        for report in self.mixes:
            lines.append(report.render())
        committed = sum(report.committed for report in self.mixes)
        attempts = sum(report.attempts for report in self.mixes)
        lines.append(
            f"    total: committed={committed} attempts={attempts} "
            f"ok={'yes' if self.ok else 'NO'}"
        )
        return "\n".join(lines)


def _plan_txns(
    workload: YcsbWorkload, n_txns: int, ops_per_txn: int
) -> List[List[Operation]]:
    """Draw the whole operation stream up-front, chunked into txns."""
    stream = list(workload.operations(n_txns * ops_per_txn))
    return [
        stream[index * ops_per_txn : (index + 1) * ops_per_txn]
        for index in range(n_txns)
    ]


def run_ycsb_mix(
    mix: str = "A",
    seed: int = 7,
    n_groups: int = 4,
    n_keys: int = 48,
    n_txns: int = 36,
    n_workers: int = 4,
    ops_per_txn: int = 3,
    value_size: int = 16,
    retry: str = "backoff",
    install: Optional[str] = None,
    deadline_ms: int = 30_000,
    max_scan: int = 12,
) -> YcsbTxnReport:
    """Run one YCSB mix transactionally; returns the deterministic report."""
    try:
        workload_mix = WORKLOADS[mix]
    except KeyError:
        raise ValueError(
            f"unknown YCSB mix {mix!r}; supported mixes are "
            f"{'/'.join(TXN_MIXES)}"
        ) from None
    if workload_mix.max_scan_length > max_scan:
        # Bound E's simulated read fan-out; the draw still comes from
        # the workload's seeded scan stream, so reports stay pinned.
        workload_mix = replace(workload_mix, max_scan_length=max_scan)

    sim = Simulator(seed=seed)
    cluster = Cluster(sim, n_hosts=4, n_cores=4)
    coordinator = build_txn_system(
        sim, cluster, n_groups=n_groups, mode="ssi", name="ycsb", install=install
    )
    policy = make_policy(retry, rng=sim.rng("txn-retry"))
    stats = RetryStats()

    workload = YcsbWorkload(
        workload_mix, record_count=n_keys, value_size=value_size, seed=seed
    )
    txn_plans = _plan_txns(workload, n_txns, ops_per_txn)
    n_inserts = sum(
        1 for plan in txn_plans for op in plan if op.kind == "insert"
    )
    n_scans = sum(
        1 for plan in txn_plans for op in plan if op.kind == "scan"
    )

    def keyname(index: int) -> bytes:
        return f"y{index:04d}".encode()

    keys = [keyname(index) for index in range(n_keys)]

    def payload(key: int, txn_index: int) -> bytes:
        stamp = f"{mix}/{key}/{txn_index}".encode()
        return (stamp * (value_size // len(stamp) + 1))[:value_size]

    progress = {"init": False, "done": 0}

    def init_body(task):
        txn = yield from coordinator.begin(task)
        for index, key in enumerate(keys):
            coordinator.write(txn, key, payload(index, -1))
        yield from coordinator.commit(task, txn)
        progress["init"] = True

    def bump(value: Optional[bytes], key: int, txn_index: int) -> bytes:
        base = payload(key, txn_index)
        counter = (value or b"\x00")[-1] if value else 0
        return base[:-1] + bytes([(counter + 1) & 0xFF])

    def attempt_txn(txn_index: int):
        plan = txn_plans[txn_index]

        def attempt(task):
            txn = yield from coordinator.begin(task)
            for op in plan:
                # Dynamic mixes draw keys from the grown keyspace, so
                # names come straight from the operation index; reads
                # can race an insert's commit and legitimately miss.
                key = keyname(op.key)
                if op.kind == "read":
                    yield from coordinator.read(task, txn, key)
                elif op.kind == "update":
                    coordinator.write(txn, key, payload(op.key, txn_index))
                elif op.kind == "insert":
                    coordinator.insert(
                        txn, key, payload(op.key, txn_index)
                    )
                elif op.kind == "scan":
                    yield from coordinator.scan(
                        task, txn, key, op.scan_length
                    )
                else:  # modify: YCSB's read-modify-write
                    value = yield from coordinator.read(task, txn, key)
                    coordinator.write(txn, key, bump(value, op.key, txn_index))
            yield from coordinator.commit(task, txn)

        return attempt

    def worker_body(worker: int):
        def body(task):
            # Round-robin deal keeps per-worker load even and the
            # txn->worker mapping a pure function of the indices.
            for txn_index in range(worker, n_txns, n_workers):
                yield from run_with_retries(
                    task, policy, attempt_txn(txn_index), stats
                )
            progress["done"] += 1

        return body

    cluster[0].os.spawn(init_body, name="ycsb.init")
    run_until(sim, lambda: progress["init"], deadline_ms=deadline_ms)
    for worker in range(n_workers):
        cluster[0].os.spawn(worker_body(worker), name=f"ycsb.w{worker}")
    run_until(
        sim, lambda: progress["done"] == n_workers, deadline_ms=deadline_ms
    )
    sim.run(until=sim.now + 2 * MS)

    errors: List[str] = []
    for store in coordinator.stores:
        errors.extend(store.group.errors)

    sim_ms = sim.now / MS
    return YcsbTxnReport(
        mix=mix,
        seed=seed,
        n_groups=n_groups,
        n_keys=n_keys,
        n_txns=n_txns,
        ops=n_txns * ops_per_txn,
        committed=stats.committed,
        gave_up=stats.gave_up,
        attempts=stats.attempts,
        retries=stats.retries,
        amplification=stats.amplification,
        backoff_ms=stats.backoff_ns / MS,
        retry=policy.name,
        aborts_ww=coordinator.aborts_ww,
        aborts_ssi=coordinator.aborts_ssi,
        aborts_phantom=coordinator.aborts_phantom,
        inserts=n_inserts,
        scans=n_scans,
        aborts_unavailable=coordinator.aborts_unavailable,
        aborts_other=coordinator.aborts_failover + coordinator.aborts_user,
        throughput_tps=(
            stats.committed / (sim_ms / 1000.0) if sim_ms else 0.0
        ),
        sim_ms=sim_ms,
        anomaly=describe_cycle(coordinator.history),
        errors=errors[:3],
    )


def run_ycsb_point(name: str, seed: int = 7, **params: Any) -> YcsbTxnReport:
    """The ``ycsb`` runner target (see ``repro.bench.parallel.RUNNERS``).

    ``name`` is the mix letter; honors ``REPRO_SHARDS`` containment so
    the nightly sharded-replay lane can byte-compare the suite against
    the inline engine, exactly like the chaos runner.
    """
    from ..sim.shard import maybe_contained

    contained = maybe_contained(
        "repro.txn.ycsb:run_ycsb_point", dict(name=name, seed=seed, **params)
    )
    if contained is not None:
        return contained[0]
    return run_ycsb_mix(mix=name, seed=seed, **params)


def run_ycsb(
    mixes: Sequence[str] = ("A", "B", "C"),
    seed: int = 7,
    workers: Optional[int] = None,
    **params: Any,
) -> YcsbSuiteReport:
    """Run a suite of mixes through the parallel pool; aggregate.

    Results come back in mix order whatever the worker count, so the
    suite rendering is a pure function of ``(mixes, seed, params)``.
    """
    specs = [
        RunSpec.make(mix, seed, runner="ycsb", **params) for mix in mixes
    ]
    results = run_parallel(specs, workers=workers or 1)
    reports: List[YcsbTxnReport] = []
    for result in results:
        output = result.output
        if isinstance(output, dict):  # normalized across the pool
            output = YcsbTxnReport(**output)
        reports.append(output)
    retry = reports[0].retry if reports else str(params.get("retry", "backoff"))
    return YcsbSuiteReport(
        seed=seed,
        n_groups=reports[0].n_groups if reports else 0,
        retry=retry,
        mixes=reports,
    )
