"""Serializable Snapshot Isolation: the serialization graph.

Snapshot isolation alone admits non-serializable histories (write
skew: two transactions each read what the other writes, then both
commit). SSI closes the gap by tracking *rw-antidependencies* — "T1
read a version that T2 later overwrote, so T1 must serialize before
T2" — and aborting, at commit time, any transaction that is the
**pivot** of a dangerous structure: one with both an incoming and an
outgoing rw edge to concurrent transactions (Cahill et al., and the
RepCRec-SSI exemplar this repo follows).

Reads are not only per-key: a ``scan(start, limit)`` reads a
*predicate* — "the first ``limit`` keys at or after ``start``" — and
a write landing **inside that range** changes the predicate's answer
even though the scanner never read the key (a phantom). Range reads
therefore carry their own rw edges, flagged ``phantom`` so the pivot
abort can name ``ssi-phantom`` instead of ``ssi-pivot``; the edge
semantics are otherwise identical.

Two faces of the same graph live here:

* :class:`SerializationGraph` — the online edge set (per-key and
  range/phantom rw edges) the coordinator maintains while
  transactions run; queried at commit for the pivot rule.
* :func:`build_serialization_edges` / :func:`find_cycle` — the
  offline reconstruction over a committed history (ww + wr + rw
  edges, including predicate rw edges from each transaction's
  recorded scan ranges), used by the ``no-serialization-anomaly``
  chaos invariant: a cycle in the committed graph is a
  serializability violation, full stop, whatever the online rules
  claimed.

Everything is deterministic: edges are plain sets ordered on demand,
cycle search visits nodes in sorted order, and nothing reads a clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

__all__ = [
    "CommittedTxn",
    "SerializationGraph",
    "build_serialization_edges",
    "find_cycle",
    "describe_cycle",
    "key_in_range",
]


def key_in_range(
    key: bytes, start: bytes, end: Optional[bytes]
) -> bool:
    """Whether ``key`` falls inside a scan's range.

    A scan that filled its limit covers ``[start, end]`` (``end`` =
    the last key it returned, inclusive); one that ran off the end of
    the keyspace covers ``[start, +inf)`` (``end is None``) — the
    next-key-locking convention: inserting *anywhere* past ``start``
    would have changed its result.
    """
    return key >= start and (end is None or key <= end)


@dataclass(frozen=True)
class CommittedTxn:
    """One committed transaction, as the history records it.

    ``reads`` maps each key read from the store to the commit
    timestamp of the version observed (0 = the initial, never-written
    state). Reads served from the transaction's own write buffer are
    not snapshot observations and do not appear here. ``writes`` is
    the sorted tuple of keys written; values live in the MVCC stores.
    ``scans`` records each range read as ``(start, end)`` — ``end``
    the last key returned (inclusive), or ``None`` for a scan that
    exhausted the keyspace — so the offline checker can reconstruct
    predicate (phantom) rw edges.
    """

    txid: int
    begin_ts: int
    commit_ts: int
    reads: Mapping[bytes, int]
    writes: Tuple[bytes, ...]
    scans: Tuple[Tuple[bytes, Optional[bytes]], ...] = ()


class SerializationGraph:
    """Online rw-antidependency edges among in-flight transactions.

    Edges added with ``phantom=True`` came from a range read (a write
    landing inside a concurrent scanner's range) rather than a
    key-granular observation; the pivot rule treats them identically
    but reports the abort as ``ssi-phantom`` so workloads can count
    predicate conflicts separately.
    """

    def __init__(self) -> None:
        self._in: Dict[int, Set[int]] = {}
        self._out: Dict[int, Set[int]] = {}
        self._phantom: Set[Tuple[int, int]] = set()

    def add_rw(self, reader: int, writer: int, phantom: bool = False) -> None:
        """Record ``reader -rw-> writer`` (reader must precede writer)."""
        if reader == writer:
            return
        self._out.setdefault(reader, set()).add(writer)
        self._in.setdefault(writer, set()).add(reader)
        if phantom:
            self._phantom.add((reader, writer))

    def forget(self, txid: int) -> None:
        """Drop a finished transaction and every edge touching it."""
        for peer in self._out.pop(txid, ()):
            peers = self._in.get(peer)
            if peers is not None:
                peers.discard(txid)
            self._phantom.discard((txid, peer))
        for peer in self._in.pop(txid, ()):
            peers = self._out.get(peer)
            if peers is not None:
                peers.discard(txid)
            self._phantom.discard((peer, txid))

    def pivot(self, txid: int) -> Optional[Tuple[str, str]]:
        """If ``txid`` is the pivot of a dangerous structure, name it.

        The pivot has at least one incoming and one outgoing rw edge;
        SSI aborts it rather than prove the cycle. Returns ``(detail,
        reason)`` — reason ``"ssi-phantom"`` when any of the pivot's
        rw edges is a predicate (range) edge, ``"ssi-pivot"``
        otherwise — or ``None`` when the commit is safe.
        """
        ins = self._in.get(txid)
        outs = self._out.get(txid)
        if not ins or not outs:
            return None
        phantom = any(
            (peer, txid) in self._phantom for peer in ins
        ) or any((txid, peer) in self._phantom for peer in outs)
        detail = f"T{min(ins)} -rw-> T{txid} -rw-> T{min(outs)}"
        return detail, ("ssi-phantom" if phantom else "ssi-pivot")

    def pivot_detail(self, txid: int) -> Optional[str]:
        """:meth:`pivot`'s description alone (compatibility helper)."""
        found = self.pivot(txid)
        return None if found is None else found[0]


# -- offline reconstruction (the anomaly checker) ----------------------------------


def build_serialization_edges(
    history: Sequence[CommittedTxn],
) -> List[Tuple[int, int, str]]:
    """Full serialization graph of a committed history.

    Edge kinds over each key's version order (version = writer's
    commit timestamp):

    * ``ww`` — consecutive writers of the same key, in commit order.
    * ``wr`` — the writer of the version a reader observed precedes
      the reader.
    * ``rw`` — a reader precedes the first writer that installed a
      version newer than the one it observed (later writers are
      reachable through ``ww``). The same kind covers predicate
      reads: a scanner precedes the first writer of any key inside
      one of its recorded ranges whose version the scan could not
      see (a key absent at the snapshot — the phantom case).

    Returns sorted ``(src_txid, dst_txid, kind)`` triples.
    """
    writers_by_key: Dict[bytes, List[CommittedTxn]] = {}
    writer_of_version: Dict[Tuple[bytes, int], int] = {}
    for txn in history:
        for key in txn.writes:
            writers_by_key.setdefault(key, []).append(txn)
            writer_of_version[(key, txn.commit_ts)] = txn.txid
    for writers in writers_by_key.values():
        writers.sort(key=lambda txn: txn.commit_ts)

    edges: Set[Tuple[int, int, str]] = set()
    for writers in writers_by_key.values():
        for earlier, later in zip(writers, writers[1:]):
            if earlier.txid != later.txid:
                edges.add((earlier.txid, later.txid, "ww"))
    for txn in history:
        for key, seen_ts in txn.reads.items():
            if seen_ts:
                writer = writer_of_version.get((key, seen_ts))
                if writer is not None and writer != txn.txid:
                    edges.add((writer, txn.txid, "wr"))
            for overwriter in writers_by_key.get(key, ()):
                if overwriter.commit_ts > seen_ts and overwriter.txid != txn.txid:
                    edges.add((txn.txid, overwriter.txid, "rw"))
                    break
        # Predicate reads: any key a recorded range covers that the
        # scan did not observe per-key was read as *absent* at the
        # snapshot — the first writer to give it a newer version is a
        # phantom the scanner must precede.
        for start, end in txn.scans:
            for key, writers in writers_by_key.items():
                if key in txn.reads or not key_in_range(key, start, end):
                    continue
                for overwriter in writers:
                    if (
                        overwriter.commit_ts > txn.begin_ts
                        and overwriter.txid != txn.txid
                    ):
                        edges.add((txn.txid, overwriter.txid, "rw"))
                        break
    return sorted(edges)


def find_cycle(history: Sequence[CommittedTxn]) -> Optional[List[int]]:
    """Smallest-first cycle in the committed serialization graph.

    Returns the cycle as a list of transaction ids (first repeated at
    the end is implied, not included), or ``None`` for a serializable
    history. Deterministic: nodes and neighbors are visited in sorted
    order, so the same history always names the same cycle.
    """
    adjacency: Dict[int, List[int]] = {}
    for src, dst, _ in build_serialization_edges(history):
        adjacency.setdefault(src, []).append(dst)
    for neighbors in adjacency.values():
        neighbors.sort()

    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[int, int] = {}
    for start in sorted(adjacency):
        if color.get(start, WHITE) != WHITE:
            continue
        stack: List[Tuple[int, int]] = [(start, 0)]
        path: List[int] = []
        color[start] = GRAY
        path.append(start)
        while stack:
            node, cursor = stack[-1]
            neighbors = adjacency.get(node, [])
            if cursor < len(neighbors):
                stack[-1] = (node, cursor + 1)
                nxt = neighbors[cursor]
                state = color.get(nxt, WHITE)
                if state == GRAY:
                    return path[path.index(nxt) :]
                if state == WHITE:
                    color[nxt] = GRAY
                    path.append(nxt)
                    stack.append((nxt, 0))
            else:
                color[node] = BLACK
                path.pop()
                stack.pop()
    return None


def describe_cycle(history: Sequence[CommittedTxn]) -> str:
    """Human-readable anomaly summary ("none" for a clean history)."""
    cycle = find_cycle(history)
    if cycle is None:
        return "none"
    kinds = {
        (src, dst): kind for src, dst, kind in build_serialization_edges(history)
    }
    hops = []
    for index, src in enumerate(cycle):
        dst = cycle[(index + 1) % len(cycle)]
        hops.append(f"T{src} -{kinds.get((src, dst), '?')}-> ")
    return "".join(hops) + f"T{cycle[0]}"
