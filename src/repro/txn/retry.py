"""Abort-reason-aware retry policies for the transaction layer.

A transaction abort is not one thing. SSI pivot aborts and
first-committer-wins conflicts are *contention*: the transaction lost
a race it can win on a later attempt, and hammering the coordinator
immediately just re-creates the race — capped exponential backoff
with jitter is the classic answer (what the SafarDB evaluation calls
retry-amplification is exactly this loop measured). ``unavailable``
aborts are different: the Available-Copies read path already blocked
for its full bounded budget (``AvailabilityTracker.max_wait_ns``)
before giving up, so the wait is built in and a retry only needs a
short re-probe delay. Failover/epoch casualties are the workload
harness's business (replay on the repaired chain), not a policy's —
policies treat them as fatal.

Three policies ship, forming the experiment's control ladder:

* :class:`NoRetry` — the control; aborted transactions are dropped,
  reproducing the PR 7 workload numbers exactly.
* :class:`ImmediateRetry` — retry at once, capped attempts; the
  "naive client" that maximizes retry amplification under contention.
* :class:`ExponentialBackoff` — capped exponential delay with
  *seeded* equal-jitter drawn from a named ``sim.rng`` stream, so a
  backoff schedule replays bit-for-bit from the plan seed.

Determinism: a policy's randomness comes only from the
``random.Random`` handed to it (workloads pass ``sim.rng("txn-retry")``),
never from global state or wall clocks. Attempt accounting is
surfaced through ``repro.obs`` counters (``txn.attempt``,
``txn.retry.<reason>``, ``txn.giveup.<reason>``) and the
:class:`RetryStats` the workload folds into its report.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, Optional

from ..obs.trace import TRACER
from ..sim import MS
from .coordinator import TxnAborted

__all__ = [
    "CONTENTION_REASONS",
    "AVAILABILITY_REASONS",
    "RetryPolicy",
    "NoRetry",
    "ImmediateRetry",
    "ExponentialBackoff",
    "RetryStats",
    "make_policy",
    "run_with_retries",
]


CONTENTION_REASONS = frozenset({"ssi-pivot", "ssi-phantom", "ww-conflict"})
"""Aborts where the transaction lost a race: back off, then retry."""

AVAILABILITY_REASONS = frozenset({"unavailable"})
"""Aborts where the read path already waited out its blocking budget."""


class RetryPolicy:
    """Decides whether (and when) attempt ``n+1`` should follow an abort.

    ``next_delay_ns(attempt, reason)`` returns the virtual-time delay
    before the next attempt, or ``None`` to give up. ``attempt`` is the
    1-based number of the attempt that just aborted, so a policy with
    ``max_attempts=3`` returns ``None`` once ``attempt >= 3``.
    """

    name = "?"

    def next_delay_ns(self, attempt: int, reason: str) -> Optional[int]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<RetryPolicy {self.name}>"


class NoRetry(RetryPolicy):
    """The control: every abort is final (PR 7 behavior)."""

    name = "none"

    def next_delay_ns(self, attempt: int, reason: str) -> Optional[int]:
        return None


class ImmediateRetry(RetryPolicy):
    """Retry contention and availability aborts at once, capped.

    No delay means the next attempt begins on the same virtual
    timestamp the abort cleanup finished — the maximally impatient
    client, useful as the upper bound on retry amplification.
    """

    name = "immediate"

    def __init__(self, max_attempts: int = 4):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts

    def next_delay_ns(self, attempt: int, reason: str) -> Optional[int]:
        if attempt >= self.max_attempts:
            return None
        if reason in CONTENTION_REASONS or reason in AVAILABILITY_REASONS:
            return 0
        return None


class ExponentialBackoff(RetryPolicy):
    """Capped exponential backoff with seeded equal-jitter.

    Contention aborts wait ``base_ns * 2**(attempt-1)`` capped at
    ``cap_ns``, half of it fixed and half drawn uniformly from the
    policy's RNG (equal jitter: bounded below, de-synchronized above).
    ``unavailable`` aborts wait a flat ``availability_delay_ns`` —
    the Available-Copies read already blocked for the full budget, so
    the policy only spaces out re-probes. Everything else is fatal.

    The RNG must be a dedicated stream (``sim.rng("txn-retry")``): the
    schedule is then a pure function of the plan seed and replays
    bit-for-bit, which the regression tests assert.
    """

    name = "backoff"

    def __init__(
        self,
        rng: random.Random,
        base_ns: int = 50_000,
        cap_ns: int = 2 * MS,
        max_attempts: int = 6,
        availability_delay_ns: int = 200_000,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_ns < 1 or cap_ns < base_ns:
            raise ValueError("need 1 <= base_ns <= cap_ns")
        self.rng = rng
        self.base_ns = base_ns
        self.cap_ns = cap_ns
        self.max_attempts = max_attempts
        self.availability_delay_ns = availability_delay_ns

    def next_delay_ns(self, attempt: int, reason: str) -> Optional[int]:
        if attempt >= self.max_attempts:
            return None
        if reason in AVAILABILITY_REASONS:
            return self.availability_delay_ns
        if reason not in CONTENTION_REASONS:
            return None
        window = min(self.cap_ns, self.base_ns * (2 ** (attempt - 1)))
        half = window // 2
        return half + self.rng.randrange(window - half + 1)


def make_policy(
    name: str, rng: Optional[random.Random] = None, **kwargs
) -> RetryPolicy:
    """Build a policy by name (``none`` / ``immediate`` / ``backoff``)."""
    if name == "none":
        return NoRetry()
    if name == "immediate":
        return ImmediateRetry(**kwargs)
    if name == "backoff":
        if rng is None:
            raise ValueError("backoff needs a seeded rng (sim.rng('txn-retry'))")
        return ExponentialBackoff(rng, **kwargs)
    raise ValueError(f"unknown retry policy {name!r}")


@dataclass
class RetryStats:
    """Aggregated attempt accounting across one workload run."""

    attempts: int = 0  # every attempt, first tries included
    retries: int = 0  # attempts after the first
    gave_up: int = 0  # logical transactions abandoned
    committed: int = 0  # logical transactions that committed
    backoff_ns: int = 0  # total virtual time slept between attempts
    by_reason: Dict[str, int] = field(default_factory=dict)  # retried aborts

    def note_retry(self, reason: str, delay_ns: int) -> None:
        self.retries += 1
        self.backoff_ns += delay_ns
        self.by_reason[reason] = self.by_reason.get(reason, 0) + 1

    @property
    def amplification(self) -> float:
        """Attempts per committed transaction (1.0 = no retries needed)."""
        return self.attempts / self.committed if self.committed else 0.0


def run_with_retries(
    task,
    policy: RetryPolicy,
    attempt: Callable[..., Generator],
    stats: Optional[RetryStats] = None,
) -> Generator:
    """Drive one logical transaction through a retry policy.

    ``attempt(task)`` is a generator performing one full
    begin/…/commit attempt and raising
    :class:`~repro.txn.coordinator.TxnAborted` on failure (each
    attempt must open a *fresh* transaction — an aborted one is dead).
    Returns ``("committed", attempts, result)`` or
    ``("aborted:<reason>", attempts, None)`` once the policy gives up.
    """
    number = 0
    while True:
        number += 1
        if stats is not None:
            stats.attempts += 1
        if TRACER.enabled:
            TRACER.count("txn.attempt")
        try:
            result = yield from attempt(task)
        except TxnAborted as exc:
            delay = policy.next_delay_ns(number, exc.reason)
            if delay is None:
                if stats is not None:
                    stats.gave_up += 1
                if TRACER.enabled:
                    TRACER.count(f"txn.giveup.{exc.reason}")
                return (f"aborted:{exc.reason}", number, None)
            if stats is not None:
                stats.note_retry(exc.reason, delay)
            if TRACER.enabled:
                TRACER.count(f"txn.retry.{exc.reason}")
            if delay:
                yield from task.sleep(delay)
            continue
        if stats is not None:
            stats.committed += 1
        return ("committed", number, result)
