"""Cross-group serializable transactions over replicated groups.

``repro.txn`` layers general transactions on the replicated-log /
group-write machinery: MVCC snapshot reads (:mod:`~repro.txn.mvcc`),
an SSI serialization graph with pivot aborts (:mod:`~repro.txn.ssi`),
Available-Copies read placement under failures
(:mod:`~repro.txn.available_copies`), the commit coordinator tying
them together (:mod:`~repro.txn.coordinator`), and a deterministic
workload driver (:mod:`~repro.txn.workload`, ``python -m repro txn``).
"""

from .available_copies import AvailabilityTracker, NoAvailableCopy
from .coordinator import Transaction, TxnAborted, TxnCoordinator
from .mvcc import SlotExhausted, Version, VersionedGroupStore
from .ssi import (
    CommittedTxn,
    SerializationGraph,
    build_serialization_edges,
    describe_cycle,
    find_cycle,
)
from .workload import TxnWorkloadReport, build_txn_system, run_txn_workload

__all__ = [
    "AvailabilityTracker",
    "NoAvailableCopy",
    "Transaction",
    "TxnAborted",
    "TxnCoordinator",
    "SlotExhausted",
    "Version",
    "VersionedGroupStore",
    "CommittedTxn",
    "SerializationGraph",
    "build_serialization_edges",
    "describe_cycle",
    "find_cycle",
    "TxnWorkloadReport",
    "build_txn_system",
    "run_txn_workload",
]
