"""Cross-group serializable transactions over replicated groups.

``repro.txn`` layers general transactions on the replicated-log /
group-write machinery: MVCC snapshot reads (:mod:`~repro.txn.mvcc`),
an SSI serialization graph with pivot aborts (:mod:`~repro.txn.ssi`),
Available-Copies read placement under failures
(:mod:`~repro.txn.available_copies`), the commit coordinator tying
them together (:mod:`~repro.txn.coordinator`), abort-reason-aware
retry policies (:mod:`~repro.txn.retry`), and two deterministic
workload drivers: the shaped mix (:mod:`~repro.txn.workload`,
``python -m repro txn``) and transactional YCSB
(:mod:`~repro.txn.ycsb`, ``python -m repro txn --ycsb``).
"""

from .available_copies import AvailabilityTracker, NoAvailableCopy
from .coordinator import Transaction, TxnAborted, TxnCoordinator
from .mvcc import SlotExhausted, Version, VersionedGroupStore
from .retry import (
    ExponentialBackoff,
    ImmediateRetry,
    NoRetry,
    RetryPolicy,
    RetryStats,
    make_policy,
    run_with_retries,
)
from .ssi import (
    CommittedTxn,
    SerializationGraph,
    build_serialization_edges,
    describe_cycle,
    find_cycle,
    key_in_range,
)
from .workload import TxnWorkloadReport, build_txn_system, run_txn_workload
from .ycsb import (
    YcsbSuiteReport,
    YcsbTxnReport,
    run_ycsb,
    run_ycsb_mix,
    run_ycsb_point,
)

__all__ = [
    "AvailabilityTracker",
    "NoAvailableCopy",
    "Transaction",
    "TxnAborted",
    "TxnCoordinator",
    "SlotExhausted",
    "Version",
    "VersionedGroupStore",
    "CommittedTxn",
    "SerializationGraph",
    "build_serialization_edges",
    "describe_cycle",
    "find_cycle",
    "key_in_range",
    "RetryPolicy",
    "NoRetry",
    "ImmediateRetry",
    "ExponentialBackoff",
    "RetryStats",
    "make_policy",
    "run_with_retries",
    "TxnWorkloadReport",
    "build_txn_system",
    "run_txn_workload",
    "YcsbTxnReport",
    "YcsbSuiteReport",
    "run_ycsb_mix",
    "run_ycsb_point",
    "run_ycsb",
]
