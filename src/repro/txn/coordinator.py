"""Cross-group transaction coordinator: begin/read/write/commit/abort.

One coordinator spans N replica groups (each wrapped in a
:class:`~repro.txn.mvcc.VersionedGroupStore`), placing keys by
consistent hash. Isolation is Serializable Snapshot Isolation:

* ``begin`` takes a snapshot timestamp from the virtual clock
  (monotonic, unique — never wall time); every read observes the
  newest version committed at or before it.
* ``read`` serves the transaction's own buffered write first
  (read-your-writes), then routes to the owning group, picks a
  replica under the Available-Copies rules, and cross-checks the
  one-sided durable read against the version chain.
* ``write`` buffers locally; nothing touches the wire before commit.
  ``insert`` is a write to a previously-unseen key — placement is the
  same consistent hash, and the key's DB slot is assigned at commit
  install time; concurrent duplicate inserts resolve by
  first-committer-wins exactly like updates.
* ``scan`` is a snapshot range read: it merges the per-group ordered
  key indexes (plus the transaction's own buffered writes), serves
  the first ``limit`` keys at or after ``start`` visible at the
  snapshot — each durable slot cross-checked from an
  Available-Copies-eligible replica of the owning group — and
  records the covered *range* so a concurrent insert landing inside
  it raises a phantom rw-antidependency edge.
* ``commit`` validates first-committer-wins on the write set (any
  version newer than the snapshot aborts), applies the SSI pivot rule
  (a transaction with both incoming and outgoing rw-antidependency
  edges aborts; ``mode="si"`` skips this — the write-skew control),
  then installs per participant group in sorted order through the
  group lock + replicated log, and finally publishes every version in
  one synchronous step — all-or-nothing visibility across groups.

Commits are serialized through a cooperative flag rather than a sim
resource, deliberately: a commit parked forever on a dead chain's ack
event must be clearable by the failover path
(:meth:`TxnCoordinator.reset_after_failover`) without unwinding a
resource queue. ``begin`` also waits out an in-flight commit so no
snapshot can land between timestamp assignment and publish.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from ..hw.cpu import Task
from ..obs.trace import TRACER
from .available_copies import AvailabilityTracker, NoAvailableCopy
from .mvcc import VersionedGroupStore
from .ssi import CommittedTxn, SerializationGraph, key_in_range

__all__ = ["TxnCoordinator", "Transaction", "TxnAborted"]


class TxnAborted(Exception):
    """The transaction cannot commit (or continue)."""

    def __init__(self, txid: int, reason: str, detail: str = ""):
        self.txid = txid
        self.reason = reason
        self.detail = detail
        super().__init__(
            f"T{txid} aborted: {reason}" + (f" ({detail})" if detail else "")
        )


@dataclass
class Transaction:
    """Coordinator-side state of one in-flight transaction."""

    txid: int
    snapshot_ts: int
    epoch: int
    status: str = "active"  # active | committed | aborted
    reads: Dict[bytes, int] = field(default_factory=dict)  # key -> seen commit_ts
    writes: Dict[bytes, bytes] = field(default_factory=dict)
    # Range reads: (start, last-returned-key-or-None) per scan — the
    # predicate footprint phantom detection checks writes against.
    scans: List[Tuple[bytes, Optional[bytes]]] = field(default_factory=list)
    abort_reason: Optional[str] = None

    def reads_range(self, key: bytes) -> bool:
        """Whether any of this transaction's scan ranges covers ``key``."""
        return any(
            key_in_range(key, start, end) for start, end in self.scans
        )


class TxnCoordinator:
    """Serializable transactions over several replica groups.

    Parameters
    ----------
    stores:
        One :class:`VersionedGroupStore` per participant group.
    mode:
        ``"ssi"`` (default) applies the pivot rule at commit;
        ``"si"`` is plain snapshot isolation — it admits write skew,
        which the offline anomaly checker then catches. Exists so
        tests and the workload can demonstrate exactly what SSI buys.
    tracker:
        Shared :class:`AvailabilityTracker`; a fresh one is built if
        not given. Stores are attached in order, so group index ==
        tracker index.
    install:
        ``"parallel"`` (default) overlaps per-group commit installs
        under a deterministic join barrier; ``"sequential"`` is the
        oracle — one group at a time in sorted order, the pre-PR-9
        latency-sum path. ``None`` reads ``REPRO_TXN_INSTALL`` from
        the environment (same env-toggle discipline as
        ``REPRO_FAST_DISPATCH``), so a whole run can be flipped to the
        oracle without touching call sites. Commit *outcomes* are
        bit-identical either way — only install latency differs — and
        the parallel-install tests diff the two paths to prove it.
    """

    def __init__(
        self,
        stores: Sequence[VersionedGroupStore],
        mode: str = "ssi",
        tracker: Optional[AvailabilityTracker] = None,
        name: str = "txn",
        install: Optional[str] = None,
    ):
        if not stores:
            raise ValueError("need at least one group store")
        if mode not in ("ssi", "si"):
            raise ValueError(f"bad isolation mode {mode!r}")
        if install is None:
            install = os.environ.get("REPRO_TXN_INSTALL", "parallel")
        if install not in ("parallel", "sequential"):
            raise ValueError(f"bad install mode {install!r}")
        self.install_mode = install
        self.stores = list(stores)
        self.mode = mode
        self.name = name
        self.tracker = tracker if tracker is not None else AvailabilityTracker()
        for store in self.stores:
            self.tracker.attach(store)
        self.sim = self.stores[0].group.sim
        self._clock = 0
        self._next_txid = 1
        self._committing: Optional[int] = None
        self.epoch = 0
        self.active: Dict[int, Transaction] = {}
        self.graph = SerializationGraph()
        self.history: List[CommittedTxn] = []
        # Read observations for the read-your-writes / staleness
        # invariants: what each read served, from where, and whether
        # the durable copy consulted was behind the snapshot.
        self.observations: List[Dict[str, object]] = []
        self.commits = 0
        self.aborts_ww = 0
        self.aborts_ssi = 0
        self.aborts_phantom = 0
        self.aborts_unavailable = 0
        self.aborts_failover = 0
        self.aborts_user = 0

    # -- placement ---------------------------------------------------------------

    def locate(self, key: bytes) -> int:
        """Owning group index for a key (consistent hash)."""
        digest = hashlib.blake2b(key, digest_size=8).digest()
        return int.from_bytes(digest, "little") % len(self.stores)

    def _tick(self) -> int:
        self._clock = max(self._clock + 1, self.sim.now)
        return self._clock

    def _check_active(self, txn: Transaction) -> None:
        if txn.status != "active" or txn.epoch != self.epoch:
            raise TxnAborted(
                txn.txid,
                txn.abort_reason or "stale-epoch",
                f"status={txn.status} epoch={txn.epoch}/{self.epoch}",
            )

    # -- lifecycle -----------------------------------------------------------------

    def begin(self, task: Task) -> Generator:
        """Open a transaction; returns the :class:`Transaction`.

        Blocks while a commit is publishing so the snapshot cannot
        observe a half-visible transaction.
        """
        while self._committing is not None:
            yield from task.sleep(2_000)
        txn = Transaction(
            txid=self._next_txid, snapshot_ts=self._tick(), epoch=self.epoch
        )
        self._next_txid += 1
        self.active[txn.txid] = txn
        if TRACER.enabled:
            TRACER.count("txn.begin")
            TRACER.record(
                self.sim.now,
                "B",
                "txn",
                f"T{txn.txid}",
                pid=f"txn:{self.name}",
                tid=task.name,
                args={"snapshot_ts": txn.snapshot_ts},
            )
        return txn

    def read(self, task: Task, txn: Transaction, key: bytes) -> Generator:
        """Snapshot read; returns the value (``None`` = never written).

        Own buffered writes win (read-your-writes). Otherwise the
        owning group serves the newest version at the snapshot,
        reading the durable slot from an Available-Copies-eligible
        replica as a cross-check: the slot may legitimately hold a
        *newer* record (installed after our snapshot, or an orphan of
        an unfinished commit) — both invisible here — but never an
        older one, which would mean a stale copy served a read.
        """
        self._check_active(txn)
        if key in txn.writes:
            self.observations.append(
                {
                    "txid": txn.txid,
                    "kind": "own-write",
                    "key": key,
                    "value": txn.writes[key],
                    "replica": None,
                    "stale": False,
                }
            )
            return txn.writes[key]
        index = self.locate(key)
        store = self.stores[index]
        if not store.has_slot(key):
            # Never written anywhere: the initial state, no network.
            txn.reads.setdefault(key, 0)
            self._note_read_edges(txn, store, key)
            self.observations.append(
                {
                    "txid": txn.txid,
                    "kind": "miss",
                    "key": key,
                    "value": None,
                    "replica": None,
                    "stale": False,
                }
            )
            return None
        try:
            replica = yield from self.tracker.choose(task, index)
        except NoAvailableCopy as exc:
            self._abort(txn, "unavailable")
            raise TxnAborted(txn.txid, "unavailable", str(exc)) from None
        durable = yield from store.read_durable(task, key, replica)
        # The yields above may span a failover reset; never record an
        # observation (or an edge) for a zombie attempt.
        self._check_active(txn)
        version = store.version_at(key, txn.snapshot_ts)
        if version is None:
            value, seen_ts = None, 0
            stale = False
        else:
            value, seen_ts = version.value, version.commit_ts
            stale = durable is None or durable[0] < version.commit_ts
        txn.reads.setdefault(key, seen_ts)
        self._note_read_edges(txn, store, key)
        self.observations.append(
            {
                "txid": txn.txid,
                "kind": "snapshot",
                "key": key,
                "value": value,
                "replica": replica,
                "stale": stale,
            }
        )
        if TRACER.enabled:
            TRACER.count("txn.read")
        return value

    def _note_read_edges(
        self,
        txn: Transaction,
        store: VersionedGroupStore,
        key: bytes,
        phantom: bool = False,
    ) -> None:
        # Reader precedes any committed writer whose version it cannot
        # see (committed after our snapshot)...
        latest = store.latest(key)
        if latest is not None and latest.commit_ts > txn.snapshot_ts:
            self.graph.add_rw(txn.txid, latest.txid, phantom=phantom)
        # ...and any concurrent transaction with the key in its write
        # set. (The symmetric case — they write after we read — is
        # recorded by ``write``/``commit``.)
        for other in self.active.values():
            if other.txid != txn.txid and key in other.writes:
                self.graph.add_rw(txn.txid, other.txid, phantom=phantom)

    def _note_write_edges(self, txn: Transaction, key: bytes) -> None:
        # Concurrent readers of this key — key-granular observations
        # or a scan range covering it (the phantom case) — logically
        # precede us.
        for other in self.active.values():
            if other.txid == txn.txid:
                continue
            if key in other.reads:
                self.graph.add_rw(other.txid, txn.txid)
            elif other.reads_range(key):
                self.graph.add_rw(other.txid, txn.txid, phantom=True)

    def write(self, txn: Transaction, key: bytes, value: bytes) -> None:
        """Buffer a write (visible to this transaction's reads only)."""
        self._check_active(txn)
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError("values are bytes")
        txn.writes[key] = bytes(value)
        self._note_write_edges(txn, key)
        if TRACER.enabled:
            TRACER.count("txn.write")

    def insert(self, txn: Transaction, key: bytes, value: bytes) -> None:
        """Buffer an insert: a write to a key absent at the snapshot.

        Placement and buffering are exactly :meth:`write` — the key's
        DB slot is assigned when the commit installs — but the intent
        is checked: inserting a key this snapshot can already see is a
        harness bug, not a race (a *concurrent* duplicate insert is a
        race, and first-committer-wins settles it at commit).
        """
        self._check_active(txn)
        store = self.stores[self.locate(key)]
        if (
            key not in txn.writes
            and store.version_at(key, txn.snapshot_ts) is not None
        ):
            raise ValueError(
                f"insert of key {key!r} visible at snapshot {txn.snapshot_ts}"
            )
        self.write(txn, key, value)
        if TRACER.enabled:
            TRACER.count("txn.insert")

    def scan(
        self, task: Task, txn: Transaction, start: bytes, limit: int
    ) -> Generator:
        """Snapshot range read: first ``limit`` keys at or after ``start``.

        Returns ``[(key, value), ...]`` in ascending key order, merging
        the per-group ordered indexes with the transaction's own
        buffered writes. Every snapshot-visible result is cross-checked
        against the durable slot of an Available-Copies-eligible
        replica (chosen once per group per scan). Keys present in an
        index but invisible at the snapshot are skipped, but still
        recorded as absent reads — the rw edge to their post-snapshot
        writer is exactly a phantom the scan must precede. The covered
        range ``(start, last-returned)`` — or ``(start, None)`` when
        the keyspace ran out before ``limit`` — is recorded so later
        concurrent writes inside it raise phantom edges too.
        """
        self._check_active(txn)
        if limit < 1:
            raise ValueError("scan limit must be >= 1")
        merged = set()
        for store in self.stores:
            merged.update(store.keys_from(start))
        merged.update(key for key in txn.writes if key >= start)
        results: List[Tuple[bytes, bytes]] = []
        replicas: Dict[int, int] = {}
        last_key: Optional[bytes] = None
        for key in sorted(merged):
            if key in txn.writes:
                self.observations.append(
                    {
                        "txid": txn.txid,
                        "kind": "own-write",
                        "key": key,
                        "value": txn.writes[key],
                        "replica": None,
                        "stale": False,
                    }
                )
                results.append((key, txn.writes[key]))
                last_key = key
            else:
                index = self.locate(key)
                store = self.stores[index]
                version = store.version_at(key, txn.snapshot_ts)
                if version is None:
                    # In the index, invisible at our snapshot: read as
                    # absent. No network (nothing to serve), but the
                    # edge to its newer writer is a phantom.
                    txn.reads.setdefault(key, 0)
                    self._note_read_edges(txn, store, key, phantom=True)
                    continue
                if index not in replicas:
                    try:
                        replicas[index] = yield from self.tracker.choose(
                            task, index
                        )
                    except NoAvailableCopy as exc:
                        self._abort(txn, "unavailable")
                        raise TxnAborted(
                            txn.txid, "unavailable", str(exc)
                        ) from None
                durable = yield from store.read_durable(
                    task, key, replicas[index]
                )
                # The yields may span a failover reset; a zombie scan
                # must not record observations or edges.
                self._check_active(txn)
                txn.reads.setdefault(key, version.commit_ts)
                self._note_read_edges(txn, store, key)
                self.observations.append(
                    {
                        "txid": txn.txid,
                        "kind": "scan",
                        "key": key,
                        "value": version.value,
                        "replica": replicas[index],
                        "stale": durable is None
                        or durable[0] < version.commit_ts,
                    }
                )
                results.append((key, version.value))
                last_key = key
            if len(results) == limit:
                break
        # Next-key-locking convention: a full scan covers [start,
        # last-returned]; one that exhausted the keyspace covers
        # [start, +inf) — an insert anywhere past start would have
        # changed its answer.
        end = last_key if len(results) == limit else None
        txn.scans.append((start, end))
        # Writes already buffered by concurrent transactions inside
        # the range are phantoms-in-waiting: note the edges now (the
        # symmetric direction of ``_note_write_edges``).
        for other in self.active.values():
            if other.txid == txn.txid:
                continue
            for key in other.writes:
                if key not in txn.reads and key_in_range(key, start, end):
                    self.graph.add_rw(txn.txid, other.txid, phantom=True)
                    break
        if TRACER.enabled:
            TRACER.count("txn.scan")
        return results

    def abort(self, txn: Transaction, reason: str = "user") -> None:
        """Caller-initiated abort; idempotent."""
        if txn.status != "active":
            return
        self._abort(txn, reason)

    def _abort(self, txn: Transaction, reason: str) -> None:
        txn.status = "aborted"
        txn.abort_reason = reason
        self.active.pop(txn.txid, None)
        self.graph.forget(txn.txid)
        counter = {
            "ww-conflict": "aborts_ww",
            "ssi-pivot": "aborts_ssi",
            "ssi-phantom": "aborts_phantom",
            "unavailable": "aborts_unavailable",
            "failover": "aborts_failover",
        }.get(reason, "aborts_user")
        setattr(self, counter, getattr(self, counter) + 1)
        if TRACER.enabled:
            TRACER.count(f"txn.abort.{reason}")
            TRACER.record(
                self.sim.now,
                "E",
                "txn",
                f"T{txn.txid}",
                pid=f"txn:{self.name}",
                args={"outcome": f"abort:{reason}"},
            )

    def commit(self, task: Task, txn: Transaction) -> Generator:
        """Commit; returns the commit timestamp or raises
        :class:`TxnAborted` (the transaction is already cleaned up)."""
        self._check_active(txn)
        if not txn.writes:
            # Read-only: nothing to validate or install. It still
            # enters the history — its reads are wr/rw edge endpoints
            # for the offline checker — but it can never be a pivot
            # (no writes means no incoming rw edge matters).
            return self._finalize(txn)
        while self._committing is not None:
            yield from task.sleep(2_000)
        self._check_active(txn)
        self._committing = txn.txid
        try:
            # First-committer-wins: any committed version of a
            # write-set key newer than our snapshot aborts us.
            for key in sorted(txn.writes):
                latest = self.stores[self.locate(key)].latest(key)
                if latest is not None and latest.commit_ts > txn.snapshot_ts:
                    self._abort(txn, "ww-conflict")
                    raise TxnAborted(
                        txn.txid,
                        "ww-conflict",
                        f"{key!r} written by T{latest.txid} after our snapshot",
                    )
            # Refresh rw edges from readers (key-granular or range)
            # that observed state after our writes were buffered.
            for key in sorted(txn.writes):
                self._note_write_edges(txn, key)
            if self.mode == "ssi":
                found = self.graph.pivot(txn.txid)
                if found is not None:
                    detail, reason = found
                    self._abort(txn, reason)
                    raise TxnAborted(txn.txid, reason, detail)
            commit_ts = self._tick()
            per_group: Dict[int, List[Tuple[bytes, bytes]]] = {}
            for key in sorted(txn.writes):
                per_group.setdefault(self.locate(key), []).append(
                    (key, txn.writes[key])
                )
            if self.install_mode == "parallel" and len(per_group) > 1:
                yield from self._install_parallel(task, txn, per_group, commit_ts)
            else:
                for index in sorted(per_group):
                    yield from self.stores[index].install(
                        task, per_group[index], commit_ts, txn.txid
                    )
            # A failover reset may have landed while installs were in
            # flight: an epoch casualty must never publish (its durable
            # records are orphans readers ignore by version metadata).
            self._check_active(txn)
            # Every group installed durably; publish synchronously so
            # visibility is all-or-nothing across groups.
            for index in sorted(per_group):
                self.stores[index].publish(per_group[index], commit_ts, txn.txid)
            return self._finalize(txn, commit_ts)
        finally:
            if self._committing == txn.txid:
                self._committing = None

    def _install_parallel(
        self,
        task: Task,
        txn: Transaction,
        per_group: Dict[int, List[Tuple[bytes, bytes]]],
        commit_ts: int,
    ) -> Generator:
        """Overlap per-group installs under a deterministic join barrier.

        Sub-tasks are spawned in sorted group order, so each group's
        WAL lock is *requested* in the same order as the sequential
        oracle (deadlock freedom), but the chain replications then run
        concurrently: multi-group commit latency approaches the max of
        the per-group installs instead of their sum. The join is
        deterministic — the committer waits on every sub-task in
        sorted order regardless of completion order — and a failure is
        re-raised only after all sub-tasks have finished, so no
        install outlives its commit attempt.
        """
        subs = []
        for index in sorted(per_group):

            def body(sub, index=index):
                yield from self.stores[index].install(
                    sub, per_group[index], commit_ts, txn.txid
                )

            subs.append(
                task.os.spawn(body, name=f"{self.name}.install.g{index}")
            )
        if TRACER.enabled:
            TRACER.count("txn.install_parallel")
        failure: Optional[BaseException] = None
        for sub in subs:
            try:
                yield from task.wait(sub.process)
            except Exception as exc:
                if failure is None:
                    failure = exc
        if failure is not None:
            raise failure

    def _finalize(self, txn: Transaction, commit_ts: Optional[int] = None) -> int:
        if commit_ts is None:
            commit_ts = self._tick()
        txn.status = "committed"
        self.active.pop(txn.txid, None)
        self.history.append(
            CommittedTxn(
                txid=txn.txid,
                begin_ts=txn.snapshot_ts,
                commit_ts=commit_ts,
                reads=dict(txn.reads),
                writes=tuple(sorted(txn.writes)),
                scans=tuple(txn.scans),
            )
        )
        self.commits += 1
        if TRACER.enabled:
            TRACER.count("txn.commit")
            TRACER.record(
                self.sim.now,
                "E",
                "txn",
                f"T{txn.txid}",
                pid=f"txn:{self.name}",
                args={"outcome": "commit", "commit_ts": commit_ts},
            )
        return commit_ts

    # -- failover ------------------------------------------------------------------

    def reset_after_failover(self, task: Task, index: int, new_group) -> Generator:
        """Re-point group ``index`` at its repaired chain and clean up.

        Every transaction of the old epoch aborts (a commit parked on
        the dead chain's ack never resumes; resumable stragglers die
        at their next ``_check_active``), the commit latch is cleared,
        the store rebinds, and its WAL recovers (stale lock broken,
        pending records drained). Returns drained-record count.
        """
        self.epoch += 1
        for txn in list(self.active.values()):
            self._abort(txn, "failover")
        self._committing = None
        store = self.stores[index]
        store.rebind(new_group)
        executed = yield from store.recover(task)
        if TRACER.enabled:
            TRACER.count("txn.failover_reset")
        return executed

    # -- introspection -------------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        return {
            "commits": self.commits,
            "aborts_ww": self.aborts_ww,
            "aborts_ssi": self.aborts_ssi,
            "aborts_phantom": self.aborts_phantom,
            "aborts_unavailable": self.aborts_unavailable,
            "aborts_failover": self.aborts_failover,
            "aborts_user": self.aborts_user,
        }
