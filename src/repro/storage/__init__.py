"""Replicated storage systems built on the group primitives (§5)."""

from .docstore import DocStoreError, ReplicatedDocStore
from .encoding import decode_document, encode_document
from .kvstore import ReplicatedKVStore
from .locks import LockManager, LockTimeout
from .log import ReplicatedLog
from .mongo import MongoClient, MongoServer, split_mongo
from .recovery import ChainRepair, HeartbeatMonitor
from .transactions import TransactionManager
from .sharding import ShardedStore
from .twophase import TwoPhaseCoordinator
from .wal import LogEntry, LogRecord, RegionLayout, scan_records

__all__ = [
    "ReplicatedLog",
    "ReplicatedKVStore",
    "ReplicatedDocStore",
    "DocStoreError",
    "LockManager",
    "LockTimeout",
    "LogRecord",
    "LogEntry",
    "RegionLayout",
    "scan_records",
    "encode_document",
    "decode_document",
    "MongoServer",
    "MongoClient",
    "split_mongo",
    "HeartbeatMonitor",
    "ChainRepair",
]
