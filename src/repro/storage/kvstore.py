"""Replicated persistent key-value store (the §5.1 RocksDB case study).

Mirrors how the paper modifies RocksDB:

* All requests are served from an in-memory table on the front end
  (client); a durable, **replicated** write-ahead log provides
  persistence: every mutation is an ``Append`` — a gWRITE (+gFLUSH)
  of the serialized record into every replica's NVM.
* Replica CPUs never touch the write path. They wake periodically
  *off the critical path* to bring their in-memory snapshot in sync
  with the NVM log, so reads served from backups are eventually
  consistent (§5.1).
* A checkpoint serializes the memtable into the database area
  (replicated) and truncates the log.

WAL records for the KV store carry serialized *operations* (put or
delete), replayed into memtables — the log-as-operations style
RocksDB uses — rather than raw byte patches.
"""

from __future__ import annotations

import bisect
import struct
from typing import Dict, Generator, List, Optional, Tuple

from ..hw.cpu import Task
from ..sim import MS, US
from .log import ReplicatedLog
from .wal import RegionLayout, scan_records

__all__ = ["ReplicatedKVStore", "decode_kv_op", "encode_kv_op"]

_OP_PUT = 1
_OP_DELETE = 2
_OP_HEADER = struct.Struct("<BHI")  # op, key length, value length
_CHECKPOINT_MAGIC = 0x434B5056  # "CKPV"


def encode_kv_op(op: int, key: bytes, value: bytes = b"") -> bytes:
    """Serialize one KV mutation for the WAL."""
    if len(key) > 0xFFFF:
        raise ValueError("key too long")
    return _OP_HEADER.pack(op, len(key), len(value)) + key + value


def decode_kv_op(raw: bytes) -> Tuple[int, bytes, bytes]:
    """Inverse of :func:`encode_kv_op`."""
    op, klen, vlen = _OP_HEADER.unpack_from(raw, 0)
    cursor = _OP_HEADER.size
    key = bytes(raw[cursor : cursor + klen])
    value = bytes(raw[cursor + klen : cursor + klen + vlen])
    return op, key, value


class _Memtable:
    """Sorted in-memory table (dict + sorted key list for scans)."""

    def __init__(self):
        self._data: Dict[bytes, bytes] = {}
        self._keys: List[bytes] = []

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: bytes) -> Optional[bytes]:
        return self._data.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        if key not in self._data:
            bisect.insort(self._keys, key)
        self._data[key] = value

    def delete(self, key: bytes) -> None:
        if key in self._data:
            del self._data[key]
            index = bisect.bisect_left(self._keys, key)
            del self._keys[index]

    def scan(self, start: bytes, count: int) -> List[Tuple[bytes, bytes]]:
        index = bisect.bisect_left(self._keys, start)
        keys = self._keys[index : index + count]
        return [(key, self._data[key]) for key in keys]

    def items(self) -> List[Tuple[bytes, bytes]]:
        return [(key, self._data[key]) for key in self._keys]

    def apply(self, op: int, key: bytes, value: bytes) -> None:
        if op == _OP_PUT:
            self.put(key, value)
        elif op == _OP_DELETE:
            self.delete(key)
        else:
            raise ValueError(f"bad kv op {op}")


class ReplicatedKVStore:
    """A RocksDB-like store over a replication group.

    Parameters
    ----------
    group:
        HyperLoopGroup or NaiveGroup. Its region must be at least
        ``layout.region_size``.
    layout:
        WAL/DB split of the region. The DB area must hold a full
        checkpoint of the working set.
    sync_interval:
        How often replica CPUs wake to replay new log records into
        their local memtables (off the critical path).
    """

    # CPU costs of the library code (a thin C++ library, not a server).
    PUT_CPU_NS = 2_000
    GET_CPU_NS = 1_200
    SCAN_CPU_NS_PER_ITEM = 150
    REPLAY_CPU_NS = 800

    def __init__(
        self,
        group,
        layout: Optional[RegionLayout] = None,
        sync_interval: int = 1 * MS,
        start_sync_tasks: bool = True,
        name: str = "kv",
    ):
        self.group = group
        self.layout = layout or RegionLayout(
            wal_size=group.region_size // 2,
            db_size=group.region_size // 2 - 128,
        )
        self.log = ReplicatedLog(group, self.layout)
        self.name = name
        self.sync_interval = sync_interval
        self.memtable = _Memtable()
        self.puts = 0
        self.deletes = 0
        self.checkpoint_lsn = -1
        self._replica_memtables: List[_Memtable] = [
            _Memtable() for _ in range(group.group_size)
        ]
        self._replica_synced: List[int] = [0] * group.group_size
        self._sync_tasks = []
        if start_sync_tasks:
            for index in range(group.group_size):
                task = group.replicas[index].os.spawn(
                    self._sync_body(index), name=f"{name}.r{index}.sync"
                )
                self._sync_tasks.append(task)

    # -- client operations -------------------------------------------------------

    def put(self, task: Task, key: bytes, value: bytes) -> Generator:
        """Insert or update; durable on all replicas when it returns."""
        yield from task.compute(self.PUT_CPU_NS + len(value) // 16)
        record = encode_kv_op(_OP_PUT, key, value)
        yield from self.log.append(task, [(0, record)])
        self.memtable.put(key, value)
        self.puts += 1

    def put_batch(self, task: Task, items: List[Tuple[bytes, bytes]]) -> Generator:
        """Atomically write several pairs in one WAL record.

        The RocksDB WriteBatch pattern: one replicated append covers
        the whole batch, amortizing the chain round trip — the batch
        is either entirely durable everywhere or not at all.
        """
        if not items:
            raise ValueError("empty batch")
        total = sum(len(value) for _, value in items)
        yield from task.compute(self.PUT_CPU_NS + total // 16)
        changes = [(0, encode_kv_op(_OP_PUT, key, value)) for key, value in items]
        yield from self.log.append(task, changes)
        for key, value in items:
            self.memtable.put(key, value)
        self.puts += len(items)

    def delete(self, task: Task, key: bytes) -> Generator:
        """Delete; durable on all replicas when it returns."""
        yield from task.compute(self.PUT_CPU_NS)
        record = encode_kv_op(_OP_DELETE, key)
        yield from self.log.append(task, [(0, record)])
        self.memtable.delete(key)
        self.deletes += 1

    def get(self, task: Task, key: bytes) -> Generator:
        """Read from the front end's authoritative memtable."""
        yield from task.compute(self.GET_CPU_NS)
        return self.memtable.get(key)

    def scan(self, task: Task, start: bytes, count: int) -> Generator:
        """Range scan from the front end's memtable."""
        yield from task.compute(self.GET_CPU_NS + self.SCAN_CPU_NS_PER_ITEM * count)
        return self.memtable.scan(start, count)

    def get_eventual(self, replica: int, key: bytes) -> Optional[bytes]:
        """Read a backup's (eventually consistent) memtable (§5.1:
        "reads from other replicas are eventually consistent")."""
        return self._replica_memtables[replica].get(key)

    # -- checkpoint / truncation ----------------------------------------------------

    def checkpoint(self, task: Task) -> Generator:
        """Dump the memtable into the DB area and truncate the log.

        This is the (coarse-grained, off-the-critical-path) analogue
        of RocksDB dumping the memtable and truncating the WAL.
        """
        items = self.memtable.items()
        blob = struct.pack("<IIq", _CHECKPOINT_MAGIC, len(items), self.log.next_lsn - 1)
        parts = [blob]
        for key, value in items:
            parts.append(struct.pack("<HI", len(key), len(value)) + key + value)
        image = b"".join(parts)
        if len(image) > self.layout.db_size:
            raise RuntimeError("checkpoint larger than the DB area")
        yield from task.compute(50 * US + len(image) // 8)
        chunk = 8192
        for offset in range(0, len(image), chunk):
            piece = image[offset : offset + chunk]
            self.group.write_local(self.layout.db_position(0) + offset, piece)
            yield from self.group.gwrite(
                task, self.layout.db_position(0) + offset, len(piece)
            )
        self.checkpoint_lsn = self.log.next_lsn - 1
        yield from self.log.truncate(task)

    # -- replica-side sync (off the critical path) --------------------------------------

    def _sync_body(self, index: int):
        def body(task: Task) -> Generator:
            while True:
                yield from task.sleep(self.sync_interval)
                applied = self.sync_replica(index)
                if applied:
                    yield from task.compute(self.REPLAY_CPU_NS * applied)

        return body

    def sync_replica(self, index: int) -> int:
        """Replay new WAL records into a replica's memtable.

        Returns the number of records applied (the caller charges the
        CPU). Reads the replica's own NVM — purely local work.
        """
        header = self.group.read_replica(index, self.layout.head_offset, 16)
        head, tail = struct.unpack("<QQ", header)
        memtable = self._replica_memtables[index]
        applied = 0
        if head > self._replica_synced[index]:
            # The log was truncated past our replay position: a
            # checkpoint covers the gap. Reload the snapshot from the
            # (replicated, durable) DB area, then continue from head.
            applied += self._load_checkpoint(index, memtable)
        synced = max(self._replica_synced[index], head)
        if synced >= tail:
            self._replica_synced[index] = max(self._replica_synced[index], head)
            return applied
        raw = self.group.read_replica(index, self.layout.wal_offset, self.layout.wal_size)
        for _, record in scan_records(raw, synced, tail, self.layout.wal_size):
            for entry in record.entries:
                op, key, value = decode_kv_op(entry.data)
                memtable.apply(op, key, value)
            applied += 1
        self._replica_synced[index] = tail
        return applied

    def _load_checkpoint(self, index: int, memtable: _Memtable) -> int:
        """Replace ``memtable`` contents with a replica's checkpoint
        image. Returns the number of records loaded."""
        raw = self.group.read_replica(
            index, self.layout.db_position(0), self.layout.db_size
        )
        magic, count, _ckpt_lsn = struct.unpack_from("<IIq", raw, 0)
        if magic != _CHECKPOINT_MAGIC:
            return 0
        fresh = _Memtable()
        cursor = 16
        for _ in range(count):
            klen, vlen = struct.unpack_from("<HI", raw, cursor)
            cursor += 6
            key = bytes(raw[cursor : cursor + klen])
            cursor += klen
            value = bytes(raw[cursor : cursor + vlen])
            cursor += vlen
            fresh.put(key, value)
        self._replica_memtables[index] = fresh
        memtable._data = fresh._data
        memtable._keys = fresh._keys
        return count

    # -- recovery --------------------------------------------------------------------------

    def recover_from_replica(self, replica: int) -> Dict[bytes, bytes]:
        """Rebuild the full table from one replica's durable state.

        Loads the checkpoint image from the DB area, then replays the
        WAL from the durable head — the §5.1 recovery flow ("a new
        member copies the log and the database ... catch-up phase").
        """
        memtable = _Memtable()
        raw = self.group.read_replica(
            replica, self.layout.db_position(0), self.layout.db_size
        )
        magic, count, _ckpt_lsn = struct.unpack_from("<IIq", raw, 0)
        cursor = 16
        if magic == _CHECKPOINT_MAGIC:
            for _ in range(count):
                klen, vlen = struct.unpack_from("<HI", raw, cursor)
                cursor += 6
                key = bytes(raw[cursor : cursor + klen])
                cursor += klen
                value = bytes(raw[cursor : cursor + vlen])
                cursor += vlen
                memtable.put(key, value)
        header = self.group.read_replica(replica, self.layout.head_offset, 16)
        head, tail = struct.unpack("<QQ", header)
        wal = self.group.read_replica(replica, self.layout.wal_offset, self.layout.wal_size)
        for _, record in scan_records(wal, head, tail, self.layout.wal_size):
            for entry in record.entries:
                op, key, value = decode_kv_op(entry.data)
                memtable.apply(op, key, value)
        return dict(memtable.items())
