"""Failure detection and chain repair (§5's control path).

HyperLoop accelerates the *data path* only; "group failures are
detected and repaired in an application specific manner" (§3.2), with
heartbeats and a configurable miss threshold (§5.1, citing the
heartbeat failure detector). This module provides that control path:

* :class:`HeartbeatMonitor` — each replica's CPU posts a tiny RDMA
  WRITE into the coordinator's heartbeat region every interval; the
  coordinator declares a replica failed after ``miss_threshold``
  consecutive missing beats.
* :class:`ChainRepair` — the §5.1 recovery flow: writes pause, a
  replacement host catches up by copying the region from a surviving
  replica (or from the coordinator's authoritative mirror), a fresh
  group is built over the new membership, and writes resume.

Rebuilding the group wholesale is deliberate: pre-posted WQE chains
are wired to specific QPs, and the paper likewise tears down and
re-establishes "a newly established HyperLoop data path" on
membership change rather than patching one in place.
"""

from __future__ import annotations

import struct
from typing import Callable, Generator, Optional, Sequence

from ..hw.cpu import Task
from ..hw.host import Host
from ..hw.nic import AccessFlags
from ..hw.wqe import FLAG_VALID, Opcode, Wqe
from ..obs.trace import TRACER
from ..sim import MS

__all__ = ["HeartbeatMonitor", "ChainRepair", "ClientReattach"]


class HeartbeatMonitor:
    """Heartbeats from replicas to the coordinator.

    Parameters
    ----------
    client:
        The coordinator host (receives beats).
    replicas:
        Hosts to monitor.
    interval:
        Beat period; a replica is suspected after
        ``miss_threshold * interval`` without a beat.
    """

    def __init__(
        self,
        client: Host,
        replicas: Sequence[Host],
        interval: int = 5 * MS,
        miss_threshold: int = 3,
        name: str = "hb",
    ):
        self.client = client
        self.replicas = list(replicas)
        self.interval = interval
        self.miss_threshold = miss_threshold
        self.name = name
        self._region = client.memory.alloc(8 * len(self.replicas), label=f"{name}.beats")
        self._mr = client.dev.reg_mr(self._region, AccessFlags.REMOTE_WRITE)
        self._stopped = [False] * len(self.replicas)
        self._tasks = []
        for index, replica in enumerate(self.replicas):
            qp = replica.dev.create_qp(send_slots=16, recv_slots=8, name=f"{name}.r{index}")
            remote = client.dev.create_qp(send_slots=8, recv_slots=8, name=f"{name}.c{index}")
            qp.connect(remote)
            staging = replica.memory.alloc(8, label=f"{name}.r{index}.stage")
            task = replica.os.spawn(
                self._beat_body(index, qp, staging), name=f"{name}.r{index}.beat"
            )
            self._tasks.append(task)

    def _beat_body(self, index: int, qp, staging):
        def body(task: Task) -> Generator:
            while True:
                yield from task.sleep(self.interval)
                if self._stopped[index]:
                    return
                host = self.replicas[index]
                if host.down or host.nic.halted:
                    # A crashed/stalled replica can't reach the wire;
                    # posting would only overflow the send ring. Keep
                    # the task alive so beats resume after a restart.
                    continue
                host.nic.host_write(staging.addr, struct.pack("<Q", task.sim.now))
                yield from task.compute(qp.post_cost(1))
                qp.post_send(
                    Wqe(
                        opcode=Opcode.WRITE,
                        flags=FLAG_VALID,
                        length=8,
                        local_addr=staging.addr,
                        remote_addr=self._region.addr + index * 8,
                        rkey=self._mr.rkey,
                    )
                )

        return body

    def stop_beats(self, index: int) -> None:
        """Crash injection: the replica stops heart-beating."""
        self._stopped[index] = True

    def last_beat(self, index: int) -> int:
        """Timestamp of the last received beat (0 = never)."""
        raw = self.client.nic.cache.read(self._region.addr + index * 8, 8)
        return struct.unpack("<Q", raw)[0]

    def suspected(self, index: int) -> bool:
        """Whether the replica has missed ``miss_threshold`` beats."""
        now = self.client.sim.now
        deadline = self.miss_threshold * self.interval
        last = self.last_beat(index)
        reference = last if last else 0
        return now - reference > deadline

    def wait_for_suspicion(self, task: Task, poll_interval: Optional[int] = None) -> Generator:
        """Block until some replica is suspected; returns its index."""
        period = poll_interval or self.interval
        while True:
            for index in range(len(self.replicas)):
                if self.suspected(index):
                    return index
            yield from task.sleep(period)


class ChainRepair:
    """Membership change: catch up a replacement and rebuild the group.

    Parameters
    ----------
    group_factory:
        ``group_factory(replica_hosts) -> group`` building a fresh
        group (HyperLoop or Naïve) over the given membership with the
        same region size. Called once membership is decided.
    """

    def __init__(
        self,
        client: Host,
        group,
        group_factory: Callable,
        on_phase: Optional[Callable[[str], None]] = None,
    ):
        self.client = client
        self.group = group
        self.group_factory = group_factory
        self.paused = False
        self.repairs = 0
        # Control-path phase hook: called with "repair" the moment a
        # repair starts and "repair-done" once the new group is live.
        # Chaos scenarios feed this into ``FaultInjector.notify_phase``
        # so a plan can land a fault *inside* the repair window, whose
        # absolute time depends on detection latency; the transaction
        # layer's availability tracker uses the same hook to pause and
        # resume snapshot reads around the catch-up window.
        self.on_phase = on_phase

    def repair(
        self,
        task: Task,
        failed_index: int,
        replacement: Host,
        copy_from: Optional[int] = None,
    ) -> Generator:
        """Replace a failed replica; returns the new group.

        Writes must be paused by the caller for the duration (§5.1:
        "writes are paused for a short duration of catch-up phase").
        The replacement's region contents come from a surviving
        replica via one-sided READs — no survivor CPU involved — and
        are installed through the *new* group's chain so every member
        ends identical.
        """
        self.paused = True
        if self.on_phase is not None:
            self.on_phase("repair")
        started = task.sim.now
        if TRACER.enabled:
            TRACER.record(
                started,
                "B",
                "fault",
                "chain_repair",
                pid="recovery",
                tid=task.name,
                args={"failed": failed_index, "replacement": replacement.name},
            )
        survivors = [
            host
            for index, host in enumerate(self.group.replicas)
            if index != failed_index
        ]
        source = copy_from
        if source is None:
            source = 0 if failed_index != 0 else 1
        region_size = self.group.region_size
        # 1. Catch-up: pull the authoritative bytes from a survivor.
        chunk = 8192
        image = bytearray()
        for offset in range(0, region_size, chunk):
            size = min(chunk, region_size - offset)
            piece = yield from self.group.pread(task, source, offset, size)
            image.extend(piece)
        # 2. New membership: survivors keep their order, the
        #    replacement joins at the tail. The old group is retired —
        #    its chains are wired to the failed member's QPs.
        self.group.stop()
        members = survivors + [replacement]
        new_group = self.group_factory(members)
        if new_group.region_size != region_size:
            raise ValueError("replacement group must keep the region size")
        # 3. Install the image through the new chain so all members
        #    (including survivors' new regions) are identical.
        new_group.client_region.write(0, bytes(image))
        for offset in range(0, region_size, chunk):
            size = min(chunk, region_size - offset)
            yield from new_group.gwrite(task, offset, size)
        self.group = new_group
        self.paused = False
        self.repairs += 1
        if self.on_phase is not None:
            self.on_phase("repair-done")
        if TRACER.enabled:
            TRACER.record(
                task.sim.now,
                "E",
                "fault",
                "chain_repair",
                pid="recovery",
                tid=task.name,
                args={"catch_up_bytes": region_size},
            )
            TRACER.count("recovery.repairs")
        return new_group


class ClientReattach:
    """Client crash recovery: re-attach the coordinator to its group.

    The §3.2 "application specific" recovery flow for the *client*
    side. After the coordinator host restarts, its NIC has lost every
    volatile QP and ring — the old chain is unreachable from the
    client — but the replicas' regions are retained NIC/memory state
    holding the last replicated image. Recovery mirrors
    :class:`ChainRepair`:

    1. Rebuild a one-sided read path over fresh QPs
       (:meth:`~repro.core.group.HyperLoopGroup.reattach_client`).
    2. Pull the authoritative image from the chain *head* (replica 0):
       in chain replication every acked write has reached the head, so
       the head's bytes are a superset of everything acknowledged.
    3. Build a fresh group (fresh chains, fresh regions) over the same
       membership and install the image through the new chain, so all
       members end identical — including writes that were mid-chain at
       crash time, which re-converge to the head's view.
    """

    def __init__(self, client: Host, group, group_factory: Callable):
        self.client = client
        self.group = group
        self.group_factory = group_factory
        self.reattaches = 0

    def reattach(self, task: Task) -> Generator:
        """Recover after a client restart; returns the new group."""
        started = task.sim.now
        if TRACER.enabled:
            TRACER.record(
                started,
                "B",
                "fault",
                "client_reattach",
                pid="recovery",
                tid=task.name,
                args={"client": self.client.name},
            )
        old = self.group
        region_size = old.region_size
        old.stop()
        old.reattach_client()
        chunk = 8192
        image = bytearray()
        for offset in range(0, region_size, chunk):
            size = min(chunk, region_size - offset)
            piece = yield from old.pread(task, 0, offset, size)
            image.extend(piece)
        new_group = self.group_factory(list(old.replicas))
        if new_group.region_size != region_size:
            raise ValueError("reattached group must keep the region size")
        new_group.client_region.write(0, bytes(image))
        for offset in range(0, region_size, chunk):
            size = min(chunk, region_size - offset)
            yield from new_group.gwrite(task, offset, size)
        self.group = new_group
        self.reattaches += 1
        if TRACER.enabled:
            TRACER.record(
                task.sim.now,
                "E",
                "fault",
                "client_reattach",
                pid="recovery",
                tid=task.name,
                args={"catch_up_bytes": region_size},
            )
            TRACER.count("recovery.reattaches")
        return new_group
