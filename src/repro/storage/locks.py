"""Group locking built on gCAS (§5, "Locking and Isolation").

The lock word (one 8-byte slot in the replicated region) encodes a
single-writer / multiple-reader lock::

    bits  0..31   writer id (0 = unlocked)
    bits 32..63   reader count

* :meth:`LockManager.wr_lock` — group-wide: a gCAS(0 → writer id) on
  every replica. If some replicas lose a race, the §4.2 undo protocol
  rolls back the partial acquisition (a second gCAS whose execute map
  selects exactly the replicas that succeeded) and retries.
* :meth:`LockManager.rd_lock` — per-replica: "unlike write locks,
  read locks are not group based and only the replica being read from
  needs to participate". Implemented as a gCAS with a single-replica
  execute map incrementing the reader count.

Readers block writers (wr_lock requires the whole word to be zero)
and a writer blocks readers; read locks on different replicas are
independent, which is what lets every replica serve consistent reads.
"""

from __future__ import annotations

from typing import Generator, List

from ..hw.cpu import Task

__all__ = ["LockManager", "LockTimeout"]

_READER_UNIT = 1 << 32
_WRITER_MASK = (1 << 32) - 1


class LockTimeout(RuntimeError):
    """Lock acquisition exceeded its retry budget."""


class LockManager:
    """Client-side lock operations for one replicated region."""

    def __init__(self, group, lock_offset: int = 0, retry_backoff_ns: int = 2_000):
        self.group = group
        self.lock_offset = lock_offset
        self.retry_backoff_ns = retry_backoff_ns
        self.acquisitions = 0
        self.conflicts = 0

    # -- write (group) locks ---------------------------------------------------------

    def wr_lock(self, task: Task, writer_id: int, max_retries: int = 100) -> Generator:
        """Acquire the group write lock for ``writer_id`` (1..2^32-1)."""
        if not 0 < writer_id <= _WRITER_MASK:
            raise ValueError(f"writer id out of range: {writer_id}")
        attempts = 0
        while True:
            result = yield from self.group.gcas(task, self.lock_offset, 0, writer_id)
            succeeded = [value == 0 for value in result]
            if all(succeeded):
                self.acquisitions += 1
                return
            self.conflicts += 1
            if any(succeeded):
                # Partial acquisition: undo exactly where we won
                # (§4.2's execute-map undo flow).
                yield from self.group.gcas(
                    task, self.lock_offset, writer_id, 0, execute_map=succeeded
                )
            attempts += 1
            if attempts >= max_retries:
                raise LockTimeout(
                    f"wr_lock({writer_id}) failed after {attempts} attempts"
                )
            yield from task.sleep(self.retry_backoff_ns * min(attempts, 16))

    def wr_unlock(self, task: Task, writer_id: int) -> Generator:
        """Release the group write lock held by ``writer_id``."""
        result = yield from self.group.gcas(task, self.lock_offset, writer_id, 0)
        if any(value != writer_id for value in result):
            raise RuntimeError(
                f"wr_unlock({writer_id}): lock word was {result}, not ours"
            )

    # -- read (per-replica) locks -------------------------------------------------------

    def rd_lock(self, task: Task, replica: int, max_retries: int = 100) -> Generator:
        """Take a shared read lock on one replica."""
        execute_map = self._only(replica)
        attempts = 0
        while True:
            current = yield from self._read_lock_word(task, replica)
            if current & _WRITER_MASK == 0:
                result = yield from self.group.gcas(
                    task,
                    self.lock_offset,
                    current,
                    current + _READER_UNIT,
                    execute_map=execute_map,
                )
                if result[replica] == current:
                    self.acquisitions += 1
                    return
            self.conflicts += 1
            attempts += 1
            if attempts >= max_retries:
                raise LockTimeout(f"rd_lock(replica={replica}) failed")
            yield from task.sleep(self.retry_backoff_ns * min(attempts, 16))

    def rd_unlock(self, task: Task, replica: int, max_retries: int = 100) -> Generator:
        """Drop a shared read lock on one replica."""
        execute_map = self._only(replica)
        attempts = 0
        while True:
            current = yield from self._read_lock_word(task, replica)
            if current < _READER_UNIT:
                raise RuntimeError("rd_unlock without a read lock held")
            result = yield from self.group.gcas(
                task,
                self.lock_offset,
                current,
                current - _READER_UNIT,
                execute_map=execute_map,
            )
            if result[replica] == current:
                return
            attempts += 1
            if attempts >= max_retries:
                raise LockTimeout(f"rd_unlock(replica={replica}) failed")
            yield from task.sleep(self.retry_backoff_ns)

    # -- helpers ---------------------------------------------------------------------------

    def _only(self, replica: int) -> List[bool]:
        if not 0 <= replica < self.group.group_size:
            raise ValueError(f"no replica {replica}")
        return [index == replica for index in range(self.group.group_size)]

    def _read_lock_word(self, task: Task, replica: int) -> Generator:
        """One-sided READ of the lock word (pays the round trip)."""
        raw = yield from self.group.pread(task, replica, self.lock_offset, 8)
        return int.from_bytes(raw, "little")

    def _peek_lock_word(self, replica: int) -> int:
        raw = self.group.read_replica(replica, self.lock_offset, 8)
        return int.from_bytes(raw, "little")

    def holder(self, replica: int) -> int:
        """Current writer id on a replica (0 if none). Test hook."""
        return self._peek_lock_word(replica) & _WRITER_MASK

    def readers(self, replica: int) -> int:
        """Current reader count on a replica. Test hook."""
        return self._peek_lock_word(replica) >> 32
