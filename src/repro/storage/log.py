"""Replicated write-ahead log manager: the §5 storage API.

Implements the three log verbs the paper's case studies are built on,
over either group implementation (HyperLoop or Naïve-RDMA):

* :meth:`ReplicatedLog.append` — ``Append(log record)``: serialize a
  redo record, replicate it into every replica's WAL ring with
  gWRITE(+gFLUSH), then advance the replicated tail pointer.
* :meth:`ReplicatedLog.execute_and_advance` —
  ``ExecuteAndAdvance()``: process the record at the head entry by
  entry, issuing a gMEMCPY (+gFLUSH) per entry to copy it from the
  log into the database area on all replicas, then advance the
  replicated head with a gWRITE (§5, "Log Processing").
* :meth:`ReplicatedLog.truncate` — drop everything up to a logical
  offset by advancing the head (log truncation after a checkpoint).

The client keeps an authoritative local copy of the region (the
group's ``client_region``), so record contents never need to be read
back over the network.
"""

from __future__ import annotations

import struct
from typing import Generator, List, Optional, Tuple

from ..hw.cpu import Task
from ..sim import Resource
from .wal import ENTRY_SIZE, HEADER_SIZE, LogRecord, RegionLayout, WRAP_MAGIC, scan_records

__all__ = ["ReplicatedLog"]


class ReplicatedLog:
    """Client-side manager of a replicated WAL + database region.

    Parameters
    ----------
    group:
        A :class:`~repro.core.group.HyperLoopGroup` or
        :class:`~repro.baseline.naive.NaiveGroup` whose region is at
        least ``layout.region_size`` bytes.
    layout:
        The region layout (WAL size, DB size).
    """

    def __init__(self, group, layout: RegionLayout):
        if layout.region_size > group.region_size:
            raise ValueError(
                f"layout needs {layout.region_size} bytes, "
                f"group region is {group.region_size}"
            )
        self.group = group
        self.layout = layout
        self.head = 0  # logical offsets, monotonic
        self.tail = 0
        self.next_lsn = 0
        # Appends and head advances are serialized, as in any WAL
        # implementation (RocksDB holds a mutex across log writes);
        # concurrent application threads queue here.
        self._mutex = Resource(group.sim, capacity=1, name="wal.mutex")
        self._write_header_local()

    # -- local mirror helpers ----------------------------------------------------

    def _write_header_local(self) -> None:
        self.group.write_local(
            self.layout.head_offset, struct.pack("<QQ", self.head, self.tail)
        )

    def pending_records(self) -> List[Tuple[int, LogRecord]]:
        """Un-executed records ``[head, tail)`` from the local mirror."""
        raw = self.group.client_region.read(self.layout.wal_offset, self.layout.wal_size)
        return list(scan_records(raw, self.head, self.tail, self.layout.wal_size))

    # -- the three verbs ------------------------------------------------------------

    def append(self, task: Task, changes: List[Tuple[int, bytes]]) -> Generator:
        """Replicate one redo record; returns its :class:`LogRecord`.

        ``changes`` are ``(db_offset, data)`` pairs. Durability
        follows the group's ``durable`` setting (gFLUSH interleaved).
        """
        # Pair acquire/release on one object: failover may swap
        # self._mutex while an appender is parked on a dead chain's
        # ack, and its eventual unwind must release the mutex it took.
        mutex = self._mutex
        yield from task.wait(mutex.acquire())
        try:
            record = yield from self._append_locked(task, changes)
        finally:
            mutex.release()
        return record

    def _append_locked(self, task: Task, changes: List[Tuple[int, bytes]]) -> Generator:
        record = LogRecord.make(self.next_lsn, changes)
        raw = record.serialize()
        if len(raw) > self.layout.wal_size // 2:
            raise ValueError("record too large for the WAL ring")
        room = self.layout.contiguous_room(self.tail)
        if len(raw) > room:
            # Stamp a wrap marker and skip to the ring start.
            marker_offset = self.layout.wal_position(self.tail)
            self.group.write_local(marker_offset, struct.pack("<I", WRAP_MAGIC))
            yield from self.group.gwrite(task, marker_offset, 4)
            self.tail += room
        if self.tail + len(raw) - self.head > self.layout.wal_size:
            raise RuntimeError(
                "WAL full: execute_and_advance/truncate has not kept up"
            )
        offset = self.layout.wal_position(self.tail)
        self.group.write_local(offset, raw)
        yield from self.group.gwrite(task, offset, len(raw))
        self.tail += len(raw)
        self.next_lsn += 1
        yield from self._replicate_header(task)
        return record

    def execute_and_advance(self, task: Task) -> Generator:
        """Execute the record at the head on all replicas; returns it
        (or ``None`` if the log is empty)."""
        # Local capture for the same reason as append(): release the
        # mutex actually acquired even if failover swapped self._mutex.
        mutex = self._mutex
        yield from task.wait(mutex.acquire())
        try:
            record = yield from self._execute_locked(task)
        finally:
            mutex.release()
        return record

    def _execute_locked(self, task: Task) -> Generator:
        pending = self.pending_records()
        if not pending:
            return None
        logical, record = pending[0]
        for entry in record.entries:
            src = self.layout.wal_position(logical) + self._entry_data_offset(
                record, entry
            )
            dst = self.layout.db_position(entry.db_offset)
            # Keep the client's mirror in sync (it is the source of
            # truth for rebuilding after replica failures).
            self.group.write_local(
                dst, self.group.client_region.read(src, entry.length)
            )
            yield from self.group.gmemcpy(task, src, dst, entry.length)
        self.head = logical + record.serialized_size
        yield from self._replicate_header(task)
        return record

    def truncate(self, task: Task, up_to: Optional[int] = None) -> Generator:
        """Advance the head past executed records (≤ ``up_to``,
        default: everything)."""
        target = self.tail if up_to is None else up_to
        if not self.head <= target <= self.tail:
            raise ValueError(f"truncate target {target} outside [{self.head}, {self.tail}]")
        self.head = target
        yield from self._replicate_header(task)

    def _replicate_header(self, task: Task) -> Generator:
        self._write_header_local()
        yield from self.group.gwrite(task, self.layout.head_offset, 16)

    @staticmethod
    def _entry_data_offset(record: LogRecord, entry) -> int:
        """Byte offset of an entry's data inside the serialized record."""
        cursor = HEADER_SIZE
        for candidate in record.entries:
            cursor += ENTRY_SIZE
            if candidate is entry:
                return cursor
            cursor += candidate.length
        raise ValueError("entry not in record")

    # -- recovery ---------------------------------------------------------------------

    @staticmethod
    def recover_replica(group, layout: RegionLayout, replica: int) -> List[LogRecord]:
        """Read a replica's durable state and return the un-executed
        records its WAL holds — what a recovery protocol would replay.

        Reads head/tail from the replica's (NVM) header, then scans
        its WAL area. Records that were torn by a power failure are
        excluded by the magic/bounds checks.
        """
        header = group.read_replica(replica, layout.head_offset, 16)
        head, tail = struct.unpack("<QQ", header)
        raw = group.read_replica(replica, layout.wal_offset, layout.wal_size)
        return [record for _, record in scan_records(raw, head, tail, layout.wal_size)]
