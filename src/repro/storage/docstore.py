"""Replicated document store (the §5.2 MongoDB case study).

The data path follows the paper's modified MongoDB exactly:

* every mutation appends a journal (write-ahead log) record via
  ``Append`` (gWRITE + gFLUSH),
* the transaction is then *executed* on all replicas via
  ``ExecuteAndAdvance`` (gMEMCPY per entry + head advance),
  surrounded by ``wrLock`` / ``wrUnlock`` so concurrent readers never
  observe a torn document (§5.2),
* reads are one-sided RDMA READs from a replica — lock-free by
  default, or guarded by a per-replica ``rdLock`` for sessions that
  need them.

The store lays out fixed-size document slots in the DB area, with the
directory (id → slot) kept by the front end. Document images are
self-validating (codec magic + length framing), which is what permits
the lock-free read mode the paper describes (detect & retry).
"""

from __future__ import annotations

import bisect
import struct
from typing import Dict, Generator, List, Optional, Sequence

from ..hw.cpu import Task
from ..sim import US
from .encoding import DocumentError, Value, decode_document, encode_document
from .locks import LockManager
from .log import ReplicatedLog
from .wal import RegionLayout

__all__ = ["ReplicatedDocStore", "DocStoreError"]

_SLOT_HEADER = struct.Struct("<IHI")  # magic, flags, image length
_SLOT_MAGIC = 0xD0C50107
_FLAG_TOMBSTONE = 0x1


class DocStoreError(RuntimeError):
    """Document-store level failures (full store, missing doc, ...)."""


class ReplicatedDocStore:
    """Document store over a replication group.

    Parameters
    ----------
    group:
        HyperLoopGroup or NaiveGroup.
    layout:
        Region layout; the DB area is carved into ``slot_size`` slots.
    slot_size:
        Bytes per document slot (header + encoded image).
    parse_ns:
        Front-end CPU per operation — query parsing, validation,
        translation. The paper measures this dominating what remains
        of MongoDB latency once replication is offloaded (§6.2).
    """

    READ_CPU_NS = 2_000
    INDEX_CPU_NS = 800

    def __init__(
        self,
        group,
        layout: Optional[RegionLayout] = None,
        slot_size: int = 1536,
        parse_ns: int = 60_000,
        writer_id: int = 1,
        indexes: Sequence[str] = (),
        name: str = "doc",
    ):
        self.group = group
        self.layout = layout or RegionLayout(
            wal_size=group.region_size // 4,
            db_size=group.region_size - group.region_size // 4 - 128,
        )
        self.slot_size = slot_size
        self.parse_ns = parse_ns
        self.name = name
        self.writer_id = writer_id
        self.log = ReplicatedLog(group, self.layout)
        self.locks = LockManager(group, lock_offset=self.layout.lock_offset)
        self.n_slots = self.layout.db_size // slot_size
        if self.n_slots < 1:
            raise DocStoreError("DB area too small for a single slot")
        self._directory: Dict[bytes, int] = {}
        self._ordered_ids: List[bytes] = []
        self._free_slots: List[int] = list(range(self.n_slots - 1, -1, -1))
        self._indexes: Dict[str, Dict[Value, set]] = {
            field: {} for field in indexes
        }
        self.inserts = 0
        self.updates = 0
        self.reads = 0

    # -- slot helpers --------------------------------------------------------------

    def _slot_db_offset(self, slot: int) -> int:
        return slot * self.slot_size

    def _encode_slot(self, image: bytes, tombstone: bool = False) -> bytes:
        if _SLOT_HEADER.size + len(image) > self.slot_size:
            raise DocStoreError(
                f"document of {len(image)} bytes exceeds slot of {self.slot_size}"
            )
        flags = _FLAG_TOMBSTONE if tombstone else 0
        return _SLOT_HEADER.pack(_SLOT_MAGIC, flags, len(image)) + image

    @staticmethod
    def _decode_slot(raw: bytes) -> Optional[bytes]:
        """Returns the document image, or ``None`` for empty/tombstone.

        Raises :class:`DocumentError` on torn bytes — the integrity
        check lock-free readers rely on.
        """
        magic, flags, length = _SLOT_HEADER.unpack_from(raw, 0)
        if magic == 0 and flags == 0 and length == 0:
            return None
        if magic != _SLOT_MAGIC:
            raise DocumentError(f"bad slot magic {magic:#x}")
        if flags & _FLAG_TOMBSTONE:
            return None
        if _SLOT_HEADER.size + length > len(raw):
            raise DocumentError("slot image exceeds slot bounds")
        return bytes(raw[_SLOT_HEADER.size : _SLOT_HEADER.size + length])

    # -- mutations -----------------------------------------------------------------

    def insert(self, task: Task, doc_id: bytes, fields: Dict[str, Value]) -> Generator:
        """Insert a new document (durable + executed on all replicas)."""
        yield from task.compute(self.parse_ns)
        if doc_id in self._directory:
            raise DocStoreError(f"duplicate id {doc_id!r}")
        if not self._free_slots:
            raise DocStoreError("document store full")
        slot = self._free_slots.pop()
        fields = {"_id": doc_id, **fields}
        payload = self._encode_slot(encode_document(fields))
        yield from self._apply(task, slot, payload)
        self._directory[doc_id] = slot
        bisect.insort(self._ordered_ids, doc_id)
        yield from self._index_update(task, doc_id, None, fields)
        self.inserts += 1

    def update(self, task: Task, doc_id: bytes, fields: Dict[str, Value]) -> Generator:
        """Replace a document's fields (read-modify-write is
        :meth:`modify`)."""
        yield from task.compute(self.parse_ns)
        slot = self._require(doc_id)
        old_fields = self._local_document(doc_id)
        fields = {"_id": doc_id, **fields}
        payload = self._encode_slot(encode_document(fields))
        yield from self._apply(task, slot, payload)
        yield from self._index_update(task, doc_id, old_fields, fields)
        self.updates += 1

    def delete(self, task: Task, doc_id: bytes) -> Generator:
        """Delete a document (tombstone the slot)."""
        yield from task.compute(self.parse_ns)
        slot = self._require(doc_id)
        old_fields = self._local_document(doc_id)
        payload = self._encode_slot(b"", tombstone=True)
        yield from self._apply(task, slot, payload)
        del self._directory[doc_id]
        self._ordered_ids.remove(doc_id)
        self._free_slots.append(slot)
        yield from self._index_update(task, doc_id, old_fields, None)

    def _apply(self, task: Task, slot: int, payload: bytes) -> Generator:
        """Journal then execute one slot write, under the group lock."""
        yield from self.log.append(
            task, [(self._slot_db_offset(slot), payload)]
        )
        yield from self.locks.wr_lock(task, self.writer_id)
        try:
            yield from self.log.execute_and_advance(task)
        finally:
            yield from self.locks.wr_unlock(task, self.writer_id)

    def _require(self, doc_id: bytes) -> int:
        slot = self._directory.get(doc_id)
        if slot is None:
            raise DocStoreError(f"no such document {doc_id!r}")
        return slot

    # -- reads -----------------------------------------------------------------------

    def read(
        self,
        task: Task,
        doc_id: bytes,
        replica: int = 0,
        lock: bool = False,
        max_retries: int = 8,
    ) -> Generator:
        """One-sided read of a document from a replica.

        Lock-free by default: torn images are detected by the codec
        framing and retried (the FaRM-style mode of §5.2). With
        ``lock=True``, a per-replica read lock brackets the READ so
        any replica can serve consistent reads under write load.
        """
        yield from task.compute(self.READ_CPU_NS)
        slot = self._require(doc_id)
        offset = self.layout.db_position(self._slot_db_offset(slot))
        if lock:
            yield from self.locks.rd_lock(task, replica)
        try:
            attempts = 0
            while True:
                raw = yield from self.group.pread(task, replica, offset, self.slot_size)
                try:
                    image = self._decode_slot(raw)
                    break
                except DocumentError:
                    attempts += 1
                    if attempts >= max_retries:
                        raise
                    yield from task.sleep(2 * US)
        finally:
            if lock:
                yield from self.locks.rd_unlock(task, replica)
        self.reads += 1
        if image is None:
            return None
        return decode_document(image)

    def read_local(self, task: Task, doc_id: bytes) -> Generator:
        """Read from the front end's own mirror (no network)."""
        yield from task.compute(self.READ_CPU_NS)
        slot = self._require(doc_id)
        offset = self.layout.db_position(self._slot_db_offset(slot))
        raw = self.group.client_region.read(offset, self.slot_size)
        image = self._decode_slot(raw)
        self.reads += 1
        return decode_document(image) if image is not None else None

    def scan(self, task: Task, start_id: bytes, count: int, replica: int = 0) -> Generator:
        """Ordered scan of up to ``count`` documents from ``start_id``.

        Reads each document one-sided from ``replica``.
        """
        yield from task.compute(self.parse_ns // 2)
        index = bisect.bisect_left(self._ordered_ids, start_id)
        ids = self._ordered_ids[index : index + count]
        documents = []
        for doc_id in ids:
            document = yield from self.read(task, doc_id, replica=replica)
            if document is not None:
                documents.append(document)
        return documents

    def modify(self, task: Task, doc_id: bytes, fields: Dict[str, Value]) -> Generator:
        """Read-modify-write (YCSB workload F's operation)."""
        current = yield from self.read(task, doc_id)
        if current is None:
            raise DocStoreError(f"modify of missing document {doc_id!r}")
        current.update(fields)
        current.pop("_id", None)
        yield from self.update(task, doc_id, current)

    # -- secondary indexes --------------------------------------------------------

    def _local_document(self, doc_id: bytes) -> Optional[Dict[str, Value]]:
        slot = self._directory.get(doc_id)
        if slot is None:
            return None
        offset = self.layout.db_position(self._slot_db_offset(slot))
        raw = self.group.client_region.read(offset, self.slot_size)
        image = self._decode_slot(raw)
        return decode_document(image) if image is not None else None

    def _index_update(
        self,
        task: Task,
        doc_id: bytes,
        old_fields: Optional[Dict[str, Value]],
        new_fields: Optional[Dict[str, Value]],
    ) -> Generator:
        if not self._indexes:
            return
        yield from task.compute(self.INDEX_CPU_NS)
        for field, mapping in self._indexes.items():
            old_value = old_fields.get(field) if old_fields else None
            new_value = new_fields.get(field) if new_fields else None
            if old_value == new_value:
                continue
            if old_value is not None and old_value in mapping:
                mapping[old_value].discard(doc_id)
                if not mapping[old_value]:
                    del mapping[old_value]
            if new_value is not None:
                mapping.setdefault(new_value, set()).add(doc_id)

    def create_index(self, task: Task, field: str) -> Generator:
        """Build a secondary index over ``field`` (front-end state,
        backfilled from the coordinator's mirror)."""
        if field in self._indexes:
            return
        mapping: Dict[Value, set] = {}
        yield from task.compute(
            self.INDEX_CPU_NS * max(len(self._directory), 1)
        )
        for doc_id in self._directory:
            document = self._local_document(doc_id)
            if document is not None and field in document:
                mapping.setdefault(document[field], set()).add(doc_id)
        self._indexes[field] = mapping

    def find(
        self,
        task: Task,
        field: str,
        value: Value,
        limit: int = 10,
        replica: int = 0,
    ) -> Generator:
        """Query by indexed field; documents come back via one-sided
        reads from ``replica`` (no replica CPU, like all reads)."""
        if field not in self._indexes:
            raise DocStoreError(f"no index on field {field!r}")
        yield from task.compute(self.READ_CPU_NS)
        doc_ids = sorted(self._indexes[field].get(value, ()))[:limit]
        documents = []
        for doc_id in doc_ids:
            document = yield from self.read(task, doc_id, replica=replica)
            if document is not None:
                documents.append(document)
        return documents

    # -- verification hooks ----------------------------------------------------------

    def peek_replica(self, replica: int, doc_id: bytes) -> Optional[Dict[str, Value]]:
        """Directly decode a document from a replica's memory (tests)."""
        slot = self._require(doc_id)
        offset = self.layout.db_position(self._slot_db_offset(slot))
        raw = self.group.read_replica(replica, offset, self.slot_size)
        image = self._decode_slot(raw)
        return decode_document(image) if image is not None else None

    def __len__(self) -> int:
        return len(self._directory)
