"""A sharded replicated store: partitions over replication groups.

§2.2 describes the deployment HyperLoop targets: servers host
**hundreds of partitions**, each an independent replica set. This
module provides the partitioning layer — a keyspace hashed across
shards, each shard one replicated transaction manager — plus
cross-shard atomicity via the 2PC coordinator.

The read/write paths stay NIC-offloaded per shard; only placement
logic (pure client-side hashing) is added.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Generator, Optional, Sequence, Tuple

from ..hw.cpu import Task
from .transactions import TransactionManager
from .twophase import TwoPhaseCoordinator

__all__ = ["ShardedStore", "BucketCollisionError"]

_SLOT = struct.Struct("<HI")  # key length, value length


class BucketCollisionError(RuntimeError):
    """Two distinct keys hashed to the same shard bucket.

    Writing the second key would silently overwrite the first one's
    only durable copy — the write would ack, then vanish from reads
    (``get`` returns ``None`` for a bucket holding a different key).
    Raised instead, so callers can re-shard or resize.
    """


class ShardedStore:
    """Fixed-slot key-value storage hashed across shards.

    Each shard's DB area is carved into ``slot_size`` buckets; a key
    maps to ``(shard, bucket)`` by hash. A cross-key collision within
    a bucket raises :class:`BucketCollisionError` before anything is
    replicated — previously the second key's record silently replaced
    the first key's, losing an acknowledged write.

    Parameters
    ----------
    managers:
        One :class:`TransactionManager` per shard.
    slot_size:
        Bytes per bucket (header + key + value must fit).
    """

    def __init__(self, managers: Sequence[TransactionManager], slot_size: int = 256):
        if not managers:
            raise ValueError("need at least one shard")
        self.managers = list(managers)
        self.slot_size = slot_size
        self.coordinator = TwoPhaseCoordinator(managers)
        # Bucket count per shard (reserving the 2PC decision slot).
        self._buckets = [
            (manager.layout.db_size - 16) // slot_size for manager in managers
        ]
        if min(self._buckets) < 1:
            raise ValueError("DB areas too small for a single bucket")
        # Client-side bucket ownership: (shard, db_offset) -> key. The
        # coordinator routes every write, so it can detect cross-key
        # bucket collisions before they clobber durable state.
        self._bucket_owner: dict = {}

    # -- placement ---------------------------------------------------------------

    def locate(self, key: bytes) -> Tuple[int, int]:
        """Deterministic ``(shard, db_offset)`` for a key."""
        digest = hashlib.blake2b(key, digest_size=8).digest()
        value = int.from_bytes(digest, "little")
        shard = value % len(self.managers)
        bucket = (value >> 16) % self._buckets[shard]
        return shard, bucket * self.slot_size

    def _encode(self, key: bytes, value: bytes) -> bytes:
        record = _SLOT.pack(len(key), len(value)) + key + value
        if len(record) > self.slot_size:
            raise ValueError(
                f"key+value of {len(record)} bytes exceeds slot of {self.slot_size}"
            )
        return record

    @staticmethod
    def _decode(raw: bytes, key: bytes) -> Optional[bytes]:
        key_len, value_len = _SLOT.unpack_from(raw, 0)
        if key_len == 0 and value_len == 0:
            return None
        cursor = _SLOT.size
        stored = bytes(raw[cursor : cursor + key_len])
        if stored != key:
            return None  # different key hashed here
        cursor += key_len
        return bytes(raw[cursor : cursor + value_len])

    # -- operations -----------------------------------------------------------------

    def _claim_bucket(self, shard: int, offset: int, key: bytes) -> None:
        owner = self._bucket_owner.get((shard, offset))
        if owner is not None and owner != key:
            raise BucketCollisionError(
                f"keys {owner!r} and {key!r} both hash to shard {shard} "
                f"bucket @{offset}; writing {key!r} would lose {owner!r}"
            )
        self._bucket_owner[(shard, offset)] = key

    def put(self, task: Task, key: bytes, value: bytes) -> Generator:
        """Single-key durable put (one shard transaction)."""
        shard, offset = self.locate(key)
        self._claim_bucket(shard, offset, key)
        yield from self.managers[shard].transact(
            task, [(offset, self._encode(key, value))]
        )

    def get(self, task: Task, key: bytes, replica: int = 0) -> Generator:
        """One-sided read from the owning shard."""
        shard, offset = self.locate(key)
        raw = yield from self.managers[shard].read(
            task, offset, self.slot_size, replica=replica
        )
        return self._decode(raw, key)

    def put_many(self, task: Task, items: Sequence[Tuple[bytes, bytes]]) -> Generator:
        """Atomic multi-key put.

        Keys on one shard ride a single shard transaction; keys
        spanning shards go through two-phase commit, so the batch is
        all-or-nothing across the cluster.
        """
        if not items:
            raise ValueError("empty batch")
        changes = []
        shards = set()
        for key, value in items:
            shard, offset = self.locate(key)
            self._claim_bucket(shard, offset, key)
            shards.add(shard)
            changes.append((shard, offset, self._encode(key, value)))
        if len(shards) == 1:
            shard = shards.pop()
            yield from self.managers[shard].transact(
                task, [(offset, data) for _, offset, data in changes]
            )
        else:
            yield from self.coordinator.transact(task, changes)

    # -- introspection ------------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.managers)

    def shard_of(self, key: bytes) -> int:
        return self.locate(key)[0]
