"""Two-phase commit across replicated shards.

§2.1 frames replicated storage as "a consensus protocol called
two-phase commit over a primary-backup setting". Within one replica
set this repository's :class:`~repro.storage.transactions.
TransactionManager` covers it; this module composes *several* replica
sets (shards) into cross-shard atomic transactions, with the client
as the 2PC coordinator — every per-shard step still rides the
NIC-offloaded primitives, so shard replicas contribute no CPU.

Protocol (coordinator-side):

1. **Prepare**: lock every participating shard (gCAS group lock,
   deadlock-avoided by acquiring in shard order) and append the
   shard's redo record (gWRITE+gFLUSH) — the durable vote.
2. **Decide**: append a commit marker to the coordinator's own
   decision log (a dedicated shard-0 region slot) — the commit point.
3. **Commit**: execute each shard's record (gMEMCPY) and unlock.

A coordinator crash before the decision marker leaves shards locked
with prepared-but-unexecuted records; :meth:`recover` inspects the
decision log and either rolls forward (marker present → execute
everything pending) or aborts (no marker → truncate the prepared
records and unlock). Prepared records are tagged with the global
transaction id so recovery can tell them apart.
"""

from __future__ import annotations

import struct
from typing import Dict, Generator, List, Sequence, Tuple

from ..hw.cpu import Task
from .transactions import TransactionManager

__all__ = ["TwoPhaseCoordinator", "ShardChange"]

ShardChange = Tuple[int, int, bytes]  # (shard, db_offset, data)

_DECISION = struct.Struct("<IQ")  # magic, txid
_DECISION_MAGIC = 0x32504330  # "0CP2" little-endian — the marker tag


class TwoPhaseCoordinator:
    """Client-side 2PC over a list of :class:`TransactionManager`s.

    The decision log lives in the first shard's DB area (its last
    16 bytes), replicated and durable like everything else.
    """

    def __init__(self, shards: Sequence[TransactionManager], writer_id: int = 7):
        if not shards:
            raise ValueError("need at least one shard")
        self.shards = list(shards)
        self.writer_id = writer_id
        self.next_txid = 1
        self.commits = 0
        self.aborts = 0
        self._decision_offset = self.shards[0].layout.db_size - _DECISION.size

    # -- the transaction -------------------------------------------------------

    def transact(self, task: Task, changes: Sequence[ShardChange]) -> Generator:
        """Atomically apply changes across shards; returns the txid."""
        if not changes:
            raise ValueError("empty cross-shard transaction")
        by_shard: Dict[int, List[Tuple[int, bytes]]] = {}
        for shard, offset, data in changes:
            if not 0 <= shard < len(self.shards):
                raise ValueError(f"no shard {shard}")
            if shard == 0 and offset + len(data) > self._decision_offset:
                raise ValueError("change overlaps the decision log slot")
            by_shard.setdefault(shard, []).append((offset, data))
        txid = self.next_txid
        self.next_txid += 1
        participants = sorted(by_shard)
        # Phase 1 — prepare: lock in shard order, append durable votes.
        for shard in participants:
            yield from self.shards[shard].locks.wr_lock(task, self.writer_id)
        for shard in participants:
            yield from self.shards[shard].log.append(task, by_shard[shard])
        # Commit point — the durable decision marker.
        yield from self._write_decision(task, txid)
        # Phase 2 — commit: execute everywhere, then unlock.
        for shard in participants:
            yield from self.shards[shard].drain(task)
        yield from self._clear_decision(task)
        for shard in participants:
            yield from self.shards[shard].locks.wr_unlock(task, self.writer_id)
        self.commits += 1
        return txid

    def _write_decision(self, task: Task, txid: int) -> Generator:
        shard0 = self.shards[0]
        offset = shard0.layout.db_position(self._decision_offset)
        shard0.group.write_local(offset, _DECISION.pack(_DECISION_MAGIC, txid))
        yield from shard0.group.gwrite(task, offset, _DECISION.size)

    def _clear_decision(self, task: Task) -> Generator:
        shard0 = self.shards[0]
        offset = shard0.layout.db_position(self._decision_offset)
        shard0.group.write_local(offset, bytes(_DECISION.size))
        yield from shard0.group.gwrite(task, offset, _DECISION.size)

    def _read_decision(self, task: Task) -> Generator:
        shard0 = self.shards[0]
        raw = yield from shard0.group.pread(
            task, 0, shard0.layout.db_position(self._decision_offset), _DECISION.size
        )
        magic, txid = _DECISION.unpack(raw)
        return txid if magic == _DECISION_MAGIC else None

    # -- recovery -----------------------------------------------------------------

    def recover(self, task: Task) -> Generator:
        """Repair after a coordinator crash; returns "commit",
        "abort", or "clean".

        * decision marker present → the transaction committed: roll
          every shard forward (execute pending records), clear the
          marker, release locks;
        * no marker but prepared records / stale locks → the
          transaction never committed: abort by truncating the
          prepared records and releasing locks.
        """
        decided = yield from self._read_decision(task)
        outcome = "clean"
        for shard_index, shard in enumerate(self.shards):
            # Refresh this coordinator's view of the shard log.
            yield from self._refresh_shard(task, shard)
            pending = shard.log.pending_records()
            holder = yield from self._lock_holder(task, shard)
            if decided is not None:
                if pending:
                    yield from shard.drain(task)
                    outcome = "commit"
            else:
                if pending:
                    yield from shard.log.truncate(task)
                    outcome = "abort"
            if holder == self.writer_id:
                yield from shard.group.gcas(
                    task, shard.layout.lock_offset, self.writer_id, 0
                )
        if decided is not None:
            yield from self._clear_decision(task)
            self.commits += 1
        elif outcome == "abort":
            self.aborts += 1
        return outcome

    def _refresh_shard(self, task: Task, shard: TransactionManager) -> Generator:
        header = yield from shard.group.pread(task, 0, shard.layout.head_offset, 16)
        head, tail = struct.unpack("<QQ", header)
        chunk = 8192
        for offset in range(0, shard.layout.wal_size, chunk):
            size = min(chunk, shard.layout.wal_size - offset)
            data = yield from shard.group.pread(
                task, 0, shard.layout.wal_offset + offset, size
            )
            shard.group.write_local(shard.layout.wal_offset + offset, data)
        shard.log.head, shard.log.tail = head, tail
        shard.log._write_header_local()

    def _lock_holder(self, task: Task, shard: TransactionManager) -> Generator:
        raw = yield from shard.group.pread(task, 0, shard.layout.lock_offset, 8)
        return int.from_bytes(raw, "little") & 0xFFFF_FFFF
