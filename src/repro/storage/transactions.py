"""Multi-key ACID transactions over a replicated region.

Packages the §5 recipe — wrLock, Append, ExecuteAndAdvance, wrUnlock —
into a transaction API with the four properties the paper's primitives
were designed to offload (§3.1):

* **Atomicity** — all of a transaction's changes ride in one WAL
  record; the record either deserializes completely (CRC) or not at
  all, and redo replay applies it entirely or leaves it pending.
* **Consistency / Isolation** — the group write lock (gCAS) blocks
  concurrent writers across every replica while a transaction's
  changes are applied; readers use per-replica read locks or lock-free
  validated reads.
* **Durability** — the record is gWRITE+gFLUSHed to every replica's
  NVM before execution begins; a crash after the append but before
  (or during) execution is repaired by redo recovery.

The coordinator may crash at any point; :meth:`recover` re-executes
whatever the durable log says is pending — redo is idempotent because
entries are plain byte copies.
"""

from __future__ import annotations

import struct
from typing import Generator, Optional, Sequence, Tuple

from ..hw.cpu import Task
from .locks import LockManager
from .log import ReplicatedLog
from .wal import RegionLayout

__all__ = ["TransactionManager"]


class TransactionManager:
    """Coordinator-side transactions on one replicated region.

    Parameters
    ----------
    group:
        HyperLoopGroup or NaiveGroup.
    layout:
        Region layout; transactions address the DB area by offset.
    writer_id:
        This coordinator's lock identity.
    """

    def __init__(self, group, layout: Optional[RegionLayout] = None, writer_id: int = 1):
        self.group = group
        self.layout = layout or RegionLayout(
            wal_size=group.region_size // 4,
            db_size=group.region_size - group.region_size // 4 - 128,
        )
        self.log = ReplicatedLog(group, self.layout)
        self.locks = LockManager(group, lock_offset=self.layout.lock_offset)
        self.writer_id = writer_id
        self.committed = 0
        self.aborted = 0

    # -- the transaction ----------------------------------------------------------

    def transact(
        self,
        task: Task,
        changes: Sequence[Tuple[int, bytes]],
        execute: bool = True,
    ) -> Generator:
        """Atomically apply ``(db_offset, data)`` changes everywhere.

        Returns the committed record's LSN. With ``execute=False`` the
        record is appended (durable, replicated) but left pending —
        eventual execution falls to a later transaction's
        :meth:`drain` or to recovery, which is the weaker-consistency
        mode §7 describes (log processing off the critical path).
        """
        if not changes:
            raise ValueError("a transaction needs at least one change")
        for offset, data in changes:
            if offset < 0 or offset + len(data) > self.layout.db_size:
                raise ValueError(f"change at {offset} outside the DB area")
        record = yield from self.log.append(task, list(changes))
        if execute:
            yield from self.locks.wr_lock(task, self.writer_id)
            try:
                yield from self.drain(task)
            except GeneratorExit:
                # Abandoned mid-transaction (the chain died under us
                # and the parked task is being reclaimed). Unlocking
                # requires yielding, which a closing generator cannot
                # do — the failover path breaks the stale lock instead
                # (see VersionedGroupStore.recover).
                raise
            except BaseException:
                yield from self.locks.wr_unlock(task, self.writer_id)
                raise
            else:
                yield from self.locks.wr_unlock(task, self.writer_id)
        self.committed += 1
        return record.lsn

    def drain(self, task: Task) -> Generator:
        """Execute every pending record in order. Returns the count.

        Caller must hold the write lock (or be the recovery path with
        writes paused).
        """
        executed = 0
        while True:
            record = yield from self.log.execute_and_advance(task)
            if record is None:
                return executed
            executed += 1

    # -- reads ---------------------------------------------------------------------

    def read(
        self, task: Task, db_offset: int, size: int, replica: int = 0, lock: bool = False
    ) -> Generator:
        """One-sided read of committed state from a replica."""
        if db_offset < 0 or db_offset + size > self.layout.db_size:
            raise ValueError(f"read at {db_offset} outside the DB area")
        if lock:
            yield from self.locks.rd_lock(task, replica)
        try:
            data = yield from self.group.pread(
                task, replica, self.layout.db_position(db_offset), size
            )
        finally:
            if lock:
                yield from self.locks.rd_unlock(task, replica)
        return data

    def read_local(self, db_offset: int, size: int) -> bytes:
        """Read the coordinator's mirror (no network)."""
        return self.group.client_region.read(self.layout.db_position(db_offset), size)

    # -- recovery -------------------------------------------------------------------

    def recover(self, task: Task, from_replica: int = 0) -> Generator:
        """Coordinator crash recovery: redo the durable pending log.

        Reads the WAL state a replica holds in NVM, resets the local
        mirror to match, and re-executes every pending record. Safe to
        run repeatedly (redo is idempotent byte copies).
        """
        header = yield from self.group.pread(
            task, from_replica, self.layout.head_offset, 16
        )
        head, tail = struct.unpack("<QQ", header)
        # Rebuild the local WAL mirror from the replica's durable copy
        # so pending_records() sees what actually survived.
        chunk = 8192
        for offset in range(0, self.layout.wal_size, chunk):
            size = min(chunk, self.layout.wal_size - offset)
            data = yield from self.group.pread(
                task, from_replica, self.layout.wal_offset + offset, size
            )
            self.group.write_local(self.layout.wal_offset + offset, data)
        self.log.head, self.log.tail = head, tail
        pending = self.log.pending_records()
        self.log.next_lsn = (
            pending[-1][1].lsn + 1 if pending else self.log.next_lsn
        )
        self.log._write_header_local()
        # Break our own stale lock if the crash happened inside the
        # critical section (the lock word durably records our id).
        raw = yield from self.group.pread(
            task, from_replica, self.layout.lock_offset, 8
        )
        holder = int.from_bytes(raw, "little") & 0xFFFF_FFFF
        if holder == self.writer_id:
            yield from self.group.gcas(
                task, self.layout.lock_offset, holder, 0
            )
        yield from self.locks.wr_lock(task, self.writer_id)
        try:
            executed = yield from self.drain(task)
        finally:
            yield from self.locks.wr_unlock(task, self.writer_id)
        return executed
