"""MongoDB-flavoured deployments of the document store.

Two shapes, matching how the paper uses MongoDB:

* **Native server** (:class:`MongoServer` + :class:`MongoClient`) —
  vanilla deployment for the §2.2 motivation study (Figure 2): a
  *primary process* on a storage server receives queries over the
  network, parses them on its (contended) CPU, and drives a
  CPU-based replication chain to the backups. Every query pays the
  primary daemon's scheduling delay — that is the effect Figure 2
  measures as replica-set count and core count vary.

* **Split front-end** (:class:`split_mongo`) — the §5.2 modification:
  the front end is integrated with the client, the backend is a chain
  of replicas. With a :class:`~repro.core.group.HyperLoopGroup`
  backend the replication path is NIC-offloaded; with a
  :class:`~repro.baseline.naive.NaiveGroup` backend it is the
  polling/event CPU path (the Figure 12 "native replication"
  comparison point).

Queries and responses are encoded documents (see
:mod:`repro.storage.encoding`).
"""

from __future__ import annotations

from typing import Dict, Generator, Sequence

from ..baseline import NaiveGroup
from ..core import HyperLoopGroup
from ..hw.cpu import Task
from ..hw.host import Host
from ..rdma.rpc import RpcChannel, RpcServer
from .docstore import DocStoreError, ReplicatedDocStore
from .encoding import Value, decode_document, encode_document

__all__ = ["MongoServer", "MongoClient", "split_mongo"]


class MongoServer:
    """A native primary: RPC service + CPU-replicated document store."""

    def __init__(
        self,
        primary: Host,
        backups: Sequence[Host],
        region_size: int = 1 << 20,
        rounds: int = 128,
        replica_mode: str = "event",
        server_mode: str = "event",
        parse_ns: int = 60_000,
        name: str = "mongo",
    ):
        self.primary = primary
        self.group = NaiveGroup(
            primary,
            backups,
            region_size=region_size,
            rounds=rounds,
            replica_mode=replica_mode,
            client_mode="event",
            name=f"{name}.rs",
        )
        self.store = ReplicatedDocStore(self.group, parse_ns=parse_ns, name=f"{name}.docs")
        self.rpc = RpcServer(primary, self._handle, mode=server_mode, name=f"{name}.rpc")

    def connect(self, client_host: Host) -> "MongoClient":
        """Open a client connection from ``client_host``."""
        return MongoClient(self.rpc.attach(client_host))

    def _handle(self, task: Task, request: bytes) -> Generator:
        query = decode_document(request)
        op = query.pop("_op")
        doc_id = query.pop("_id", b"")
        try:
            if op == "insert":
                yield from self.store.insert(task, doc_id, query)
                return encode_document({"ok": 1})
            if op == "update":
                yield from self.store.update(task, doc_id, query)
                return encode_document({"ok": 1})
            if op == "modify":
                yield from self.store.modify(task, doc_id, query)
                return encode_document({"ok": 1})
            if op == "delete":
                yield from self.store.delete(task, doc_id)
                return encode_document({"ok": 1})
            if op == "read":
                document = yield from self.store.read_local(task, doc_id)
                if document is None:
                    return encode_document({"ok": 0, "error": "not found"})
                return encode_document({"ok": 1, **document})
            if op == "scan":
                count = query.pop("_count", 10)
                documents = yield from self.store.scan(task, doc_id, count)
                # Serving a scan costs CPU per returned document; the
                # response carries only ids + sizes (summary), which is
                # all the benchmarks check.
                summary = ",".join(
                    d["_id"].hex() if isinstance(d["_id"], bytes) else str(d["_id"])
                    for d in documents
                )
                return encode_document({"ok": 1, "n": len(documents), "ids": summary})
        except DocStoreError as exc:
            return encode_document({"ok": 0, "error": str(exc)})
        return encode_document({"ok": 0, "error": f"bad op {op!r}"})


class MongoClient:
    """Client handle to a native :class:`MongoServer`."""

    def __init__(self, channel: RpcChannel):
        self.channel = channel

    def _call(self, task: Task, query: Dict[str, Value]) -> Generator:
        response = yield from self.channel.call(task, encode_document(query))
        return decode_document(response)

    def insert(self, task: Task, doc_id: bytes, fields: Dict[str, Value]) -> Generator:
        reply = yield from self._call(task, {"_op": "insert", "_id": doc_id, **fields})
        return reply

    def update(self, task: Task, doc_id: bytes, fields: Dict[str, Value]) -> Generator:
        reply = yield from self._call(task, {"_op": "update", "_id": doc_id, **fields})
        return reply

    def modify(self, task: Task, doc_id: bytes, fields: Dict[str, Value]) -> Generator:
        reply = yield from self._call(task, {"_op": "modify", "_id": doc_id, **fields})
        return reply

    def read(self, task: Task, doc_id: bytes) -> Generator:
        reply = yield from self._call(task, {"_op": "read", "_id": doc_id})
        return reply

    def scan(self, task: Task, start_id: bytes, count: int) -> Generator:
        reply = yield from self._call(
            task, {"_op": "scan", "_id": start_id, "_count": count}
        )
        return reply

    def delete(self, task: Task, doc_id: bytes) -> Generator:
        reply = yield from self._call(task, {"_op": "delete", "_id": doc_id})
        return reply


def split_mongo(
    client: Host,
    replicas: Sequence[Host],
    offloaded: bool,
    region_size: int = 1 << 20,
    rounds: int = 256,
    replica_mode: str = "polling",
    parse_ns: int = 60_000,
    name: str = "mongo",
) -> ReplicatedDocStore:
    """Build the §5.2 front-end/back-end split deployment.

    ``offloaded=True`` → HyperLoop backend (NIC chains);
    ``offloaded=False`` → the same store over the Naïve-RDMA backend
    (``replica_mode`` selects polling or event daemons) — Figure 12's
    native-replication comparison point.
    """
    if offloaded:
        group = HyperLoopGroup(
            client, replicas, region_size=region_size, rounds=rounds, name=f"{name}.hl"
        )
    else:
        group = NaiveGroup(
            client,
            replicas,
            region_size=region_size,
            rounds=rounds,
            replica_mode=replica_mode,
            name=f"{name}.nv",
        )
    return ReplicatedDocStore(group, parse_ns=parse_ns, name=f"{name}.docs")
