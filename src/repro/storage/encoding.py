"""A tiny BSON-like document codec.

Documents are ``dict[str, str | bytes | int]``. The encoding is
length-prefixed and deterministic (fields in insertion order), so a
document round-trips bit-for-bit — which matters because document
images are replicated and compared across replicas.

Format::

    magic u16 | n_fields u16
    per field: key_len u16 | type u8 | value_len u32 | key | value

Types: 1 = bytes, 2 = utf-8 string, 3 = signed 64-bit int.
"""

from __future__ import annotations

import struct
from typing import Dict, Union

__all__ = [
    "encode_document",
    "decode_document",
    "DocumentError",
    "encode_version_record",
    "decode_version_record",
]

Value = Union[str, bytes, int]

_DOC_MAGIC = 0xD0C5
_HEAD = struct.Struct("<HH")
_FIELD = struct.Struct("<HBI")

_TYPE_BYTES = 1
_TYPE_STR = 2
_TYPE_INT = 3


class DocumentError(ValueError):
    """Malformed document bytes or unsupported value type."""


def encode_document(fields: Dict[str, Value]) -> bytes:
    """Serialize a document."""
    parts = [_HEAD.pack(_DOC_MAGIC, len(fields))]
    for key, value in fields.items():
        key_bytes = key.encode("utf-8")
        if isinstance(value, bool):
            raise DocumentError("bool fields are not supported")
        if isinstance(value, bytes):
            type_code, payload = _TYPE_BYTES, value
        elif isinstance(value, str):
            type_code, payload = _TYPE_STR, value.encode("utf-8")
        elif isinstance(value, int):
            type_code, payload = _TYPE_INT, struct.pack("<q", value)
        else:
            raise DocumentError(f"unsupported field type {type(value).__name__}")
        parts.append(_FIELD.pack(len(key_bytes), type_code, len(payload)))
        parts.append(key_bytes)
        parts.append(payload)
    return b"".join(parts)


def decode_document(raw: bytes) -> Dict[str, Value]:
    """Inverse of :func:`encode_document`."""
    if len(raw) < _HEAD.size:
        raise DocumentError("truncated document header")
    magic, n_fields = _HEAD.unpack_from(raw, 0)
    if magic != _DOC_MAGIC:
        raise DocumentError(f"bad document magic {magic:#x}")
    fields: Dict[str, Value] = {}
    cursor = _HEAD.size
    for _ in range(n_fields):
        if cursor + _FIELD.size > len(raw):
            raise DocumentError("truncated field header")
        key_len, type_code, value_len = _FIELD.unpack_from(raw, cursor)
        cursor += _FIELD.size
        if cursor + key_len + value_len > len(raw):
            raise DocumentError("truncated field body")
        key = raw[cursor : cursor + key_len].decode("utf-8")
        cursor += key_len
        payload = raw[cursor : cursor + value_len]
        cursor += value_len
        if type_code == _TYPE_BYTES:
            fields[key] = bytes(payload)
        elif type_code == _TYPE_STR:
            fields[key] = payload.decode("utf-8")
        elif type_code == _TYPE_INT:
            (fields[key],) = struct.unpack("<q", payload)
        else:
            raise DocumentError(f"unknown field type {type_code}")
    return fields


# -- versioned records (the transaction layer's slot format) -----------------------
#
# One fixed-size DB slot per key holds the newest *installed* version:
#
#     magic u16 | key_len u16 | value_len u16 | commit_ts u64 | txid u64
#     key | value
#
# Version metadata (commit timestamp + writer transaction id) rides in
# the record so a one-sided replica read is self-describing: a reader
# can tell a visible version from a newer one — or from an orphan left
# by a commit that installed durably but never published.

_VERSION_MAGIC = 0x7A58  # "Xz"
_VERSION_HEAD = struct.Struct("<HHHQQ")


def encode_version_record(commit_ts: int, txid: int, key: bytes, value: bytes) -> bytes:
    """Serialize one versioned key slot."""
    if commit_ts < 0 or txid < 0:
        raise DocumentError("version metadata must be non-negative")
    return (
        _VERSION_HEAD.pack(_VERSION_MAGIC, len(key), len(value), commit_ts, txid)
        + key
        + value
    )


def decode_version_record(raw: bytes):
    """Inverse of :func:`encode_version_record`.

    Returns ``(commit_ts, txid, key, value)``, or ``None`` for bytes
    that are not a complete record (an empty or torn slot).
    """
    if len(raw) < _VERSION_HEAD.size:
        return None
    magic, key_len, value_len, commit_ts, txid = _VERSION_HEAD.unpack_from(raw, 0)
    if magic != _VERSION_MAGIC:
        return None
    cursor = _VERSION_HEAD.size
    if cursor + key_len + value_len > len(raw):
        return None
    key = bytes(raw[cursor : cursor + key_len])
    value = bytes(raw[cursor + key_len : cursor + key_len + value_len])
    return commit_ts, txid, key, value
