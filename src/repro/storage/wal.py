"""Write-ahead log: record format and region layout.

Matches §5's description: "Each log record is a redo-log and
structured as a list of modifications to the database. Each entry in
the list contains a 3-tuple of (data, len, offset) representing that
data of length len is to be copied at offset in the database."

The replicated region of a storage system is laid out as::

    0                 lock word (8 bytes, group lock)
    64                WAL header: head u64, tail u64 (byte offsets
                      into the WAL area, monotonically increasing;
                      physical position is offset % wal_size)
    128               WAL area (ring buffer of serialized records)
    128 + wal_size    database area

Record wire format::

    magic u32 | crc u32 | lsn u64 | n_entries u16 | body_len u32 | entries...
    entry: db_offset u64 | len u32 | data bytes

Records are padded to 8-byte alignment. The CRC covers lsn, entry
count, body length and the body, so a record torn by a power failure
mid-write never deserializes; a record whose magic does not match
terminates recovery scans (unwritten space).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

__all__ = [
    "HEADER_SIZE",
    "ENTRY_SIZE",
    "LogEntry",
    "LogRecord",
    "RegionLayout",
    "RECORD_MAGIC",
    "WRAP_MAGIC",
    "scan_records",
]

RECORD_MAGIC = 0x57414C52  # "WALR"
WRAP_MAGIC = 0x57524150  # "WRAP": rest of the ring lap is padding

_HEADER = struct.Struct("<IIQHI")  # magic, crc, lsn, n_entries, body_len
HEADER_SIZE = _HEADER.size
ENTRY_SIZE = 12
_ENTRY = struct.Struct("<QI")  # db_offset, len


@dataclass(frozen=True)
class LogEntry:
    """One modification: copy ``data`` to ``db_offset`` in the DB area."""

    db_offset: int
    data: bytes

    @property
    def length(self) -> int:
        return len(self.data)


@dataclass(frozen=True)
class LogRecord:
    """A redo-log record: the atomic unit of a transaction."""

    lsn: int
    entries: Tuple[LogEntry, ...]

    def serialize(self) -> bytes:
        """Pack to the on-NVM wire format (8-byte aligned)."""
        body = b"".join(
            _ENTRY.pack(entry.db_offset, entry.length) + entry.data
            for entry in self.entries
        )
        crc = zlib.crc32(
            struct.pack("<QHI", self.lsn, len(self.entries), len(body)) + body
        )
        raw = _HEADER.pack(RECORD_MAGIC, crc, self.lsn, len(self.entries), len(body)) + body
        if len(raw) % 8:
            raw += bytes(8 - len(raw) % 8)
        return raw

    @property
    def serialized_size(self) -> int:
        size = _HEADER.size + sum(_ENTRY.size + entry.length for entry in self.entries)
        return size + (-size % 8)

    @classmethod
    def deserialize(cls, raw: bytes) -> Optional["LogRecord"]:
        """Decode one record from ``raw``; ``None`` if no valid record
        starts there (unwritten or torn space)."""
        if len(raw) < _HEADER.size:
            return None
        magic, crc, lsn, n_entries, body_len = _HEADER.unpack_from(raw, 0)
        if magic != RECORD_MAGIC:
            return None
        if _HEADER.size + body_len > len(raw):
            return None
        body = raw[_HEADER.size : _HEADER.size + body_len]
        expected = zlib.crc32(struct.pack("<QHI", lsn, n_entries, body_len) + body)
        if crc != expected:
            return None
        entries: List[LogEntry] = []
        cursor = _HEADER.size
        for _ in range(n_entries):
            if cursor + _ENTRY.size > len(raw):
                return None
            db_offset, length = _ENTRY.unpack_from(raw, cursor)
            cursor += _ENTRY.size
            if cursor + length > len(raw):
                return None
            entries.append(LogEntry(db_offset, bytes(raw[cursor : cursor + length])))
            cursor += length
        return cls(lsn=lsn, entries=tuple(entries))

    @classmethod
    def make(cls, lsn: int, changes: List[Tuple[int, bytes]]) -> "LogRecord":
        """Build a record from ``(db_offset, data)`` pairs."""
        return cls(lsn=lsn, entries=tuple(LogEntry(o, d) for o, d in changes))


@dataclass(frozen=True)
class RegionLayout:
    """Byte layout of a storage system's replicated region."""

    wal_size: int
    db_size: int
    lock_offset: int = 0
    header_offset: int = 64

    @property
    def wal_offset(self) -> int:
        return 128

    @property
    def db_offset(self) -> int:
        return self.wal_offset + self.wal_size

    @property
    def region_size(self) -> int:
        return self.db_offset + self.db_size

    @property
    def head_offset(self) -> int:
        """Region offset of the WAL head pointer."""
        return self.header_offset

    @property
    def tail_offset(self) -> int:
        """Region offset of the WAL tail pointer."""
        return self.header_offset + 8

    def wal_position(self, logical: int) -> int:
        """Region offset for a logical (monotonic) WAL offset."""
        return self.wal_offset + (logical % self.wal_size)

    def db_position(self, db_offset: int) -> int:
        """Region offset for a database-area offset."""
        if db_offset < 0 or db_offset >= self.db_size:
            raise ValueError(f"db offset {db_offset} outside db of {self.db_size}")
        return self.db_offset + db_offset

    def contiguous_room(self, logical_tail: int) -> int:
        """Bytes until the WAL ring wraps, from a logical offset.

        Records never straddle the wrap point; appends that would wrap
        skip to the ring start (callers pad via :class:`LogRecord`
        framing: a scan hitting non-magic bytes at the old position
        jumps to the wrap).
        """
        return self.wal_size - (logical_tail % self.wal_size)


def scan_records(
    raw: bytes, start: int, end: int, wal_size: int
) -> Iterator[Tuple[int, "LogRecord"]]:
    """Iterate ``(logical_offset, record)`` over WAL bytes.

    ``raw`` is the whole WAL area; ``start``/``end`` are logical
    (monotonic) offsets. Writers stamp :data:`WRAP_MAGIC` where a
    record would have straddled the ring end; the scan follows those
    markers and stops at torn/unwritten space.
    """
    logical = start
    while logical < end:
        position = logical % wal_size
        room = wal_size - position
        if room < 4:
            logical += room
            continue
        (magic,) = struct.unpack_from("<I", raw, position)
        if magic == WRAP_MAGIC:
            logical += room
            continue
        if magic != RECORD_MAGIC:
            return
        record = LogRecord.deserialize(raw[position : position + room])
        if record is None:
            return
        yield logical, record
        logical += record.serialized_size
