"""A minimal RDMA SEND/RECV RPC layer.

Used for the *native* storage-server path: a client machine sends a
query to a server process (e.g. a MongoDB primary), whose daemon must
be scheduled onto a CPU to parse, execute and reply. This is exactly
the path HyperLoop removes from replication — the RPC layer exists so
the baseline systems can keep it.

One :class:`RpcServer` task serves one request at a time (a mongod
worker); requests and responses are byte strings. The server daemon
supports event-driven and polling completion handling, like the
replica daemons.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from ..hw.cpu import Task
from ..hw.host import Host
from ..hw.wqe import FLAG_VALID, Opcode, Wqe
from ..sim import Resource

__all__ = ["RpcServer", "RpcChannel"]

_MAX_MSG = 16 * 1024
_SLOTS = 64


class RpcServer:
    """Serves byte-string requests with a host task.

    Parameters
    ----------
    host:
        Where the server process runs.
    handler:
        ``handler(task, request: bytes) -> Generator[..., bytes]`` —
        a task-generator returning the response bytes. It runs on the
        server's CPU with all the scheduling that implies.
    mode:
        ``"event"`` or ``"polling"`` completion handling.
    """

    def __init__(
        self,
        host: Host,
        handler: Callable[[Task, bytes], Generator],
        mode: str = "event",
        pinned_core: Optional[int] = None,
        name: str = "rpc",
    ):
        if mode not in ("event", "polling"):
            raise ValueError(f"bad rpc mode {mode!r}")
        self.host = host
        self.handler = handler
        self.mode = mode
        self.name = name
        self._buffers = host.memory.alloc(_SLOTS * _MAX_MSG, label=f"{name}.bufs")
        self._channels: List["RpcChannel"] = []
        self._next_slot = 0
        self.requests_served = 0
        self.task = host.os.spawn(self._body, name=name, pinned_core=pinned_core)

    def attach(self, client_host: Host, name: str = "") -> "RpcChannel":
        """Create a channel from ``client_host`` to this server."""
        channel = RpcChannel(client_host, self, name or f"{self.name}.ch{len(self._channels)}")
        self._channels.append(channel)
        for _ in range(4):
            self._post_recv(channel)
        return channel

    def _post_recv(self, channel: "RpcChannel") -> None:
        slot = self._next_slot % _SLOTS
        self._next_slot += 1
        channel.server_qp.post_recv(
            Wqe(local_addr=self._buffers.addr + slot * _MAX_MSG, length=_MAX_MSG, wr_id=slot)
        )

    def _body(self, task: Task) -> Generator:
        while True:
            # Wait for a request on any channel. A real server has one
            # epoll across connections; here channels share the serving
            # task, and each channel has its own CQ.
            cqe, channel = yield from self._next_request(task)
            yield from task.compute(1_000)  # demux + dispatch
            request = self.host.nic.cache.read(
                self._buffers.addr + cqe.wr_id * _MAX_MSG, cqe.byte_len
            )
            self._post_recv(channel)
            response = yield from self.handler(task, request)
            if len(response) > _MAX_MSG:
                raise ValueError("rpc response too large")
            staging = self._buffers.addr + (cqe.wr_id % _SLOTS) * _MAX_MSG
            self.host.nic.host_write(staging, response)
            yield from task.compute(channel.server_qp.post_cost(1))
            channel.server_qp.post_send(
                Wqe(
                    opcode=Opcode.SEND,
                    flags=FLAG_VALID,
                    length=len(response),
                    local_addr=staging,
                )
            )
            self.requests_served += 1

    def _next_request(self, task: Task) -> Generator:
        while True:
            for channel in self._channels:
                cqes = channel.server_qp.recv_cq.poll(1)
                if cqes:
                    return cqes[0], channel
            events = [c.server_qp.recv_cq.next_event() for c in self._channels]
            any_event = self.host.sim.any_of(events)
            if self.mode == "polling":
                yield from task.poll_wait(any_event)
            else:
                yield from task.wait(any_event)


class RpcChannel:
    """Client endpoint: serialized request/response over one QP pair."""

    def __init__(self, client_host: Host, server: RpcServer, name: str):
        self.client_host = client_host
        self.server = server
        self.name = name
        self.client_qp = client_host.dev.create_qp(
            send_slots=_SLOTS, recv_slots=_SLOTS, name=f"{name}.c"
        )
        self.server_qp = server.host.dev.create_qp(
            send_slots=_SLOTS, recv_slots=_SLOTS, name=f"{name}.s"
        )
        self.client_qp.connect(self.server_qp)
        self._buffers = client_host.memory.alloc(2 * _MAX_MSG, label=f"{name}.bufs")
        self._lock = Resource(client_host.sim, capacity=1, name=f"{name}.lock")

    def call(self, task: Task, request: bytes) -> Generator:
        """Send ``request``; yields until the response arrives."""
        if len(request) > _MAX_MSG:
            raise ValueError("rpc request too large")
        yield from task.wait(self._lock.acquire())
        try:
            self.client_qp.post_recv(
                Wqe(local_addr=self._buffers.addr + _MAX_MSG, length=_MAX_MSG)
            )
            self.client_host.nic.host_write(self._buffers.addr, request)
            yield from task.compute(self.client_qp.post_cost(1) + 300)
            self.client_qp.post_send(
                Wqe(
                    opcode=Opcode.SEND,
                    flags=FLAG_VALID,
                    length=len(request),
                    local_addr=self._buffers.addr,
                )
            )
            cq = self.client_qp.recv_cq
            expect = cq.completions_total + 1
            cqe_count = yield from task.wait(cq.threshold_event(expect))
            cqes = cq.poll(1)
            response = self.client_host.nic.cache.read(
                self._buffers.addr + _MAX_MSG, cqes[0].byte_len
            )
        finally:
            self._lock.release()
        return response
