"""One-sided remote reads from the client to any replica.

Storage systems read from replicas with RDMA READ — no replica CPU —
for lock words, lock-free one-sided value reads (the FaRM-style mode
§5 mentions), and recovery catch-up. This helper owns a dedicated QP
per replica plus a bounce buffer, serializing readers per QP.
"""

from __future__ import annotations

from typing import Generator, List, Sequence

from ..hw.cpu import Task
from ..hw.host import Host
from ..hw.wqe import FLAG_SIGNALED, FLAG_VALID, Opcode, Wqe
from ..sim import Resource
from .verbs import Mr

__all__ = ["RemoteReader"]

_BUFFER_SIZE = 1 << 16


class RemoteReader:
    """Client-side READ channels to each replica's region."""

    def __init__(self, client: Host, replicas: Sequence[Host], mrs: Sequence[Mr], name: str):
        self.client = client
        self.mrs = list(mrs)
        self._qps = []
        self._locks: List[Resource] = []
        buffer_region = client.memory.alloc(
            _BUFFER_SIZE * len(mrs), label=f"{name}.readbuf"
        )
        self._buffer = buffer_region
        for index, replica in enumerate(replicas):
            qp = client.dev.create_qp(send_slots=32, recv_slots=8, name=f"{name}.rd{index}")
            remote = replica.dev.create_qp(send_slots=8, recv_slots=8, name=f"{name}.rd{index}r")
            qp.connect(remote)
            self._qps.append(qp)
            self._locks.append(Resource(client.sim, capacity=1, name=f"{name}.rdlock{index}"))

    def pread(self, task: Task, replica: int, offset: int, size: int) -> Generator:
        """RDMA READ ``size`` bytes at ``offset`` of a replica's region.

        Pays the real round trip; serializes concurrent readers of the
        same replica. Returns the bytes.
        """
        if size > _BUFFER_SIZE:
            raise ValueError(f"pread larger than bounce buffer: {size}")
        mr = self.mrs[replica]
        if offset < 0 or offset + size > mr.length:
            raise ValueError(f"pread [{offset}, {offset + size}) outside region")
        qp = self._qps[replica]
        lock = self._locks[replica]
        buffer_addr = self._buffer.addr + replica * _BUFFER_SIZE
        yield from task.wait(lock.acquire())
        try:
            yield from task.compute(qp.post_cost(1))
            expect = qp.send_cq.completions_total + 1
            qp.post_send(
                Wqe(
                    opcode=Opcode.READ,
                    flags=FLAG_VALID | FLAG_SIGNALED,
                    length=size,
                    local_addr=buffer_addr,
                    remote_addr=mr.addr + offset,
                    rkey=mr.rkey,
                )
            )
            yield from task.wait(qp.send_cq.threshold_event(expect))
            cqes = qp.send_cq.poll()
            if cqes and not cqes[-1].ok:
                raise RuntimeError(f"pread failed: {cqes[-1]!r}")
            data = self.client.nic.cache.read(buffer_addr, size)
        finally:
            lock.release()
        return data
