"""Userspace verbs layer: the driver between software and the RNIC.

This plays the role of ``libibverbs``/``libmlx4`` in the paper. It
owns WQE rings (plain memory regions), serializes work requests into
them, rings doorbells, and registers memory.

Two driver personalities exist, selected per device:

* **stock** — posting a work request always sets the VALID flag,
  transferring ownership to the NIC immediately. Descriptors cannot
  change after posting. This is unmodified ``libmlx4``.
* **hyperloop** — the 58-line driver modification of §4.2: posting may
  *defer* ownership (VALID clear), and a QP's rings can be registered
  as RDMA-writable memory so a remote client can patch pre-posted
  descriptors and grant ownership later.

CPU cost: driver calls themselves are instantaneous simulator-wise;
code running inside an OS :class:`~repro.hw.cpu.Task` should charge
``POST_COST_NS`` per posted WQE (see
:meth:`QueuePair.post_cost`) so posting shows up as CPU time.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..hw.memory import MemoryRegion
from ..hw.nic import AccessFlags, HwCq, NicQp, Rnic, pack_sges
from ..hw.wqe import FLAG_VALID, Opcode, Wqe, WQE_SIZE

__all__ = ["RdmaDevice", "QueuePair", "Mr", "POST_COST_NS", "AccessFlags"]

POST_COST_NS = 200
"""CPU nanoseconds a task should charge per posted work request."""


class Mr:
    """A registered memory region: keys plus the underlying region."""

    def __init__(self, device: "RdmaDevice", region: MemoryRegion, rkey: int, access: int):
        self.device = device
        self.region = region
        self.rkey = rkey
        self.lkey = rkey  # one key namespace, as on mlx4
        self.access = access

    @property
    def addr(self) -> int:
        return self.region.addr

    @property
    def length(self) -> int:
        return self.region.length

    def deregister(self) -> None:
        self.device.nic.deregister(self.rkey)

    def __repr__(self) -> str:
        return f"<Mr rkey={self.rkey:#x} addr={self.addr:#x} len={self.length}>"


class QueuePair:
    """Software handle for one RC queue pair.

    Owns the ring memory; translates :class:`~repro.rdma.wqe.Wqe`
    objects to ring bytes and doorbells. Slot addresses are exposed so
    HyperLoop can hand them to remote clients for descriptor patching.
    """

    def __init__(
        self,
        device: "RdmaDevice",
        hw: NicQp,
        send_ring: MemoryRegion,
        recv_ring: MemoryRegion,
    ):
        self.device = device
        self.hw = hw
        self.send_ring = send_ring
        self.recv_ring = recv_ring
        self.send_slots = hw.send_slots
        self.recv_slots = hw.recv_slots
        self._send_posted = 0
        self._recv_posted = 0

    # -- identity ------------------------------------------------------------

    @property
    def qpn(self) -> int:
        return self.hw.qpn

    @property
    def send_cq(self) -> HwCq:
        return self.hw.send_cq

    @property
    def recv_cq(self) -> HwCq:
        return self.hw.recv_cq

    def send_slot_addr(self, index: int) -> int:
        """Physical address of send-ring slot for absolute index."""
        return self.send_ring.addr + (index % self.send_slots) * WQE_SIZE

    def recv_slot_addr(self, index: int) -> int:
        return self.recv_ring.addr + (index % self.recv_slots) * WQE_SIZE

    # -- connection ------------------------------------------------------------

    def connect(self, remote: "QueuePair") -> None:
        """Connect two QPs to each other (both directions)."""
        self.hw.connect(remote.device.nic.name, remote.qpn)
        remote.hw.connect(self.device.nic.name, self.qpn)

    def connect_loopback(self) -> None:
        """Connect the QP to itself for on-NIC local RDMA (§4.2:
        HyperLoop creates an additional QP per replica for local CAS
        and memory-copy operations)."""
        self.hw.connect(self.device.nic.name, self.qpn)

    # -- posting ------------------------------------------------------------------

    def post_send(self, wqe: Wqe, defer_ownership: bool = False) -> int:
        """Serialize one WQE into the send ring and ring the doorbell.

        Returns the absolute slot index. With ``defer_ownership`` the
        VALID flag is left as the caller set it (HyperLoop driver
        only); the stock driver always grants ownership at post time.
        """
        if defer_ownership and not self.device.hyperloop:
            raise PermissionError(
                "deferred ownership requires the modified (hyperloop) driver"
            )
        if not defer_ownership:
            wqe.flags |= FLAG_VALID
        index = self._send_posted
        if index - self.hw.send_consumer >= self.send_slots:
            raise RuntimeError(f"send ring overflow on qp{self.qpn}")
        self.device.nic.host_write(self.send_slot_addr(index), wqe.pack())
        self._send_posted += 1
        self.hw.ring_send_doorbell(self._send_posted)
        return index

    def post_send_batch(self, wqes: Sequence[Wqe], defer_ownership: bool = False) -> int:
        """Post several WQEs, one doorbell. Returns first slot index."""
        first = self._send_posted
        for wqe in wqes:
            if not defer_ownership:
                wqe.flags |= FLAG_VALID
            elif not self.device.hyperloop:
                raise PermissionError(
                    "deferred ownership requires the modified (hyperloop) driver"
                )
            index = self._send_posted
            if index - self.hw.send_consumer >= self.send_slots:
                raise RuntimeError(f"send ring overflow on qp{self.qpn}")
            self.device.nic.host_write(self.send_slot_addr(index), wqe.pack())
            self._send_posted += 1
        self.hw.ring_send_doorbell(self._send_posted)
        return first

    def post_recv(self, wqe: Wqe) -> int:
        """Post one receive WQE. Returns the absolute slot index."""
        wqe.opcode = Opcode.RECV
        wqe.flags |= FLAG_VALID
        index = self._recv_posted
        if index - self.hw.recv_consumer >= self.recv_slots:
            raise RuntimeError(f"recv ring overflow on qp{self.qpn}")
        self.device.nic.host_write(self.recv_slot_addr(index), wqe.pack())
        self._recv_posted += 1
        self.hw.ring_recv_doorbell(self._recv_posted)
        return index

    def advance_send_producer(self, slots: int) -> None:
        """Re-arm ``slots`` already-written send WQEs (one doorbell).

        Ring laps: when WQE programs are lap-invariant (consuming
        WAITs, per-position addresses), the driver re-enables a
        consumed region of the ring without re-serializing anything —
        one MMIO write, which is how HyperLoop keeps replica CPU near
        zero under sustained load.
        """
        if slots < 0:
            raise ValueError("slots must be >= 0")
        new_producer = self.hw.send_producer + slots
        if new_producer - self.hw.send_consumer > self.send_slots:
            raise RuntimeError(f"send ring overflow on qp{self.qpn}")
        self._send_posted = new_producer
        self.hw.ring_send_doorbell(new_producer)

    def advance_recv_producer(self, slots: int) -> None:
        """Re-arm ``slots`` already-written recv WQEs (one doorbell)."""
        if slots < 0:
            raise ValueError("slots must be >= 0")
        new_producer = self.hw.recv_producer + slots
        if new_producer - self.hw.recv_consumer > self.recv_slots:
            raise RuntimeError(f"recv ring overflow on qp{self.qpn}")
        self._recv_posted = new_producer
        self.hw.ring_recv_doorbell(new_producer)

    @staticmethod
    def post_cost(n_wqes: int = 1) -> int:
        """CPU ns a task should charge for posting ``n_wqes``."""
        return POST_COST_NS * n_wqes

    # -- introspection ----------------------------------------------------------------

    @property
    def send_backlog(self) -> int:
        """Posted-but-unexecuted send WQEs."""
        return self._send_posted - self.hw.send_consumer

    @property
    def recv_backlog(self) -> int:
        """Posted-but-unconsumed receive WQEs."""
        return self._recv_posted - self.hw.recv_consumer

    @property
    def send_posted(self) -> int:
        return self._send_posted

    @property
    def recv_posted(self) -> int:
        return self._recv_posted

    def __repr__(self) -> str:
        return f"<QueuePair {self.device.nic.name}/qp{self.qpn}>"


class RdmaDevice:
    """Verbs context for one host.

    Parameters
    ----------
    nic:
        The hardware (:class:`~repro.hw.nic.Rnic`).
    hyperloop:
        Run the modified driver (deferred ownership + ring
        registration). The stock driver refuses both.
    """

    def __init__(self, nic: Rnic, hyperloop: bool = False):
        self.nic = nic
        self.hyperloop = hyperloop
        self.qps: List[QueuePair] = []

    @property
    def sim(self):
        return self.nic.sim

    @property
    def memory(self):
        return self.nic.memory

    # -- resources ---------------------------------------------------------------

    def reg_mr(self, region: MemoryRegion, access: int = AccessFlags.LOCAL) -> Mr:
        """Register ``region`` for (remote) access. Returns the MR."""
        reg = self.nic.register(region.addr, region.length, access)
        return Mr(self, region, reg.rkey, access)

    def create_cq(self, name: str = "") -> HwCq:
        return self.nic.create_cq(name=name)

    def create_qp(
        self,
        send_cq: Optional[HwCq] = None,
        recv_cq: Optional[HwCq] = None,
        send_slots: int = 1024,
        recv_slots: int = 1024,
        name: str = "",
    ) -> QueuePair:
        """Allocate rings and create a QP."""
        send_cq = send_cq or self.create_cq(name=f"{name}.scq" if name else "")
        recv_cq = recv_cq or self.create_cq(name=f"{name}.rcq" if name else "")
        send_ring = self.memory.alloc(
            send_slots * WQE_SIZE, label=f"{name or 'qp'}.sring"
        )
        recv_ring = self.memory.alloc(
            recv_slots * WQE_SIZE, label=f"{name or 'qp'}.rring"
        )
        hw = self.nic.create_qp(send_ring, recv_ring, send_cq, recv_cq)
        qp = QueuePair(self, hw, send_ring, recv_ring)
        self.qps.append(qp)
        return qp

    def expose_send_ring(self, qp: QueuePair) -> Mr:
        """Register a QP's send ring as remotely writable (HyperLoop).

        This is the §4.1 mechanism: "we … register the driver metadata
        region itself to be RDMA-accessible (with safety checks) from
        other NICs." The NIC is also told to watch the ring so the
        engine re-examines stalled WQEs when remote bytes land.
        """
        if not self.hyperloop:
            raise PermissionError("ring registration requires the hyperloop driver")
        mr = self.reg_mr(qp.send_ring, AccessFlags.REMOTE_WRITE)
        self.nic.watch_ring(qp.hw, which="send")
        return mr

    # -- convenience builders -------------------------------------------------------

    @staticmethod
    def sge_table_bytes(entries: List[Tuple[int, int]]) -> bytes:
        """Pack an SGE table for SGL-mode WQEs."""
        return pack_sges(entries)

    def __repr__(self) -> str:
        kind = "hyperloop" if self.hyperloop else "stock"
        return f"<RdmaDevice {self.nic.name} ({kind})>"
