"""Re-export shim: the WQE/CQE format lives in :mod:`repro.hw.wqe`.

The format is hardware-defined (the NIC parses these bytes), so the
canonical module sits with the hardware models; this alias keeps the
verbs-flavoured import path working.
"""

from ..hw.wqe import *  # noqa: F401,F403
from ..hw.wqe import (  # noqa: F401
    OFF_COMPARE,
    OFF_FLAGS,
    OFF_LENGTH,
    OFF_LOCAL_ADDR,
    OFF_OPCODE,
    OFF_REMOTE_ADDR,
    OFF_SWAP,
)
