"""RDMA verbs layer: WQE/CQE formats and the userspace driver."""

from .verbs import AccessFlags, Mr, POST_COST_NS, QueuePair, RdmaDevice
from .wqe import (
    Cqe,
    FLAG_SGL,
    FLAG_SIGNALED,
    FLAG_VALID,
    Opcode,
    WC_REMOTE_ACCESS_ERROR,
    WC_SUCCESS,
    Wqe,
    WQE_SIZE,
)

__all__ = [
    "RdmaDevice",
    "QueuePair",
    "Mr",
    "AccessFlags",
    "POST_COST_NS",
    "Wqe",
    "Cqe",
    "Opcode",
    "WQE_SIZE",
    "FLAG_VALID",
    "FLAG_SIGNALED",
    "FLAG_SGL",
    "WC_SUCCESS",
    "WC_REMOTE_ACCESS_ERROR",
]
