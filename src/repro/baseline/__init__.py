"""Baselines: Naïve-RDMA (CPU-forwarded chain) and fan-out (§7)."""

from .fanout import FanoutGroup
from .naive import NaiveGroup, NaiveParams

__all__ = ["NaiveGroup", "NaiveParams", "FanoutGroup"]
