"""Naïve-RDMA baseline: the same group operations, CPU-forwarded.

This is the comparison point the paper builds (§6, "Baseline RDMA
implementation"): it performs the same set of operations (gWRITE,
gMEMCPY, gCAS) and provides the same API as HyperLoop, but involves
**backup CPUs** to receive, parse, execute and forward every message.

Per replica a daemon task:

1. learns of an inbound command — either by blocking on the
   completion channel (``replica_mode="event"``) or by busy-polling
   the CQ (``replica_mode="polling"``, optionally on a pinned core);
2. parses the command and executes it against local memory with the
   CPU (memcpy for gMEMCPY, compare-and-swap for gCAS, durability
   flush for all durable ops);
3. posts the forwarding work requests to the next node in the chain
   (or the ack to the client at the tail).

Every one of those steps needs the daemon to *hold a core*, so under
multi-tenant CPU load the per-hop latency inherits the host's
scheduling delays — which is precisely the effect Figures 8-12
measure. The RDMA data path underneath is identical to HyperLoop's
(same NICs, same fabric); only the control transfer differs.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence

from ..core.chain import GCAS, GMEMCPY, GWRITE, OpSpec, SKIP_SENTINEL
from ..hw.cpu import Task
from ..hw.host import Host
from ..hw.nic import AccessFlags
from ..hw.wqe import FLAG_VALID, Opcode, Wqe
from ..rdma.reader import RemoteReader
from ..rdma.verbs import Mr, QueuePair
from ..sim import Event, Resource

__all__ = ["NaiveGroup", "NaiveParams"]

# Command header: kind, round, offset, size, src, dst, compare, swap,
# execute bitmap. The result map (g * 8 bytes) follows.
_CMD = struct.Struct("<BQQIQQQQQ")
_KINDS = {GWRITE: 1, GMEMCPY: 2, GCAS: 3}
_KIND_NAMES = {v: k for k, v in _KINDS.items()}


@dataclass
class NaiveParams:
    """CPU costs of the software data path (per message)."""

    parse_ns: int = 600
    """Receive handling: completion demux + command parse."""
    handle_ns: int = 400
    """Bookkeeping per operation around the actual work."""
    post_ns: int = 200
    """Per posted work request (same as the verbs layer's figure)."""
    memcpy_ns_per_byte: float = 0.12
    """CPU copy throughput ~ 8 GB/s including cache effects."""
    flush_base_ns: int = 300
    """Fixed cost of a durability flush (clflush/fence sequence)."""
    poll_slice_ns: int = 200
    """CPU burned per empty poll iteration in polling mode."""


class _ReplicaPlumbing:
    """Per-replica QPs and buffers for the software chain."""

    def __init__(self, host: Host, index: int):
        self.host = host
        self.index = index
        self.qp_prev: QueuePair = None
        self.qp_next: QueuePair = None
        self.cmd_region: Mr = None  # R command slots
        self.posted_recvs = 0


class NaiveGroup:
    """CPU-forwarded replication group (drop-in for HyperLoopGroup).

    Parameters mirror :class:`~repro.core.group.HyperLoopGroup`;
    additionally ``replica_mode`` selects event-driven or polling
    daemons and ``replica_cores`` optionally pins each daemon.
    """

    def __init__(
        self,
        client: Host,
        replicas: Sequence[Host],
        region_size: int = 1 << 20,
        rounds: int = 256,
        durable: bool = True,
        nvm: bool = True,
        replica_mode: str = "event",
        replica_cores: Optional[Sequence[Optional[int]]] = None,
        client_mode: str = "event",
        client_core: Optional[int] = None,
        params: Optional[NaiveParams] = None,
        name: str = "naive",
        autostart: bool = True,
    ):
        if not replicas:
            raise ValueError("a group needs at least one replica")
        if replica_mode not in ("event", "polling"):
            raise ValueError(f"bad replica_mode {replica_mode!r}")
        if client_mode not in ("event", "polling"):
            raise ValueError(f"bad client_mode {client_mode!r}")
        self.client = client
        self.replicas = list(replicas)
        self.region_size = region_size
        self.rounds = rounds
        self.durable = durable
        self.replica_mode = replica_mode
        self.replica_cores = list(replica_cores or [None] * len(replicas))
        self.client_mode = client_mode
        self.client_core = client_core
        self.params = params or NaiveParams()
        self.name = name
        self.errors: List[str] = []
        self.g = len(self.replicas)
        self.result_size = self.g * 8
        self.cmd_size = _CMD.size + self.result_size
        self.next_round = 0
        self.client_region = client.memory.alloc(
            region_size, label=f"{name}.client_region"
        )
        self.replica_mrs: List[Mr] = []
        for index, host in enumerate(self.replicas):
            region = host.memory.alloc(
                region_size, nvm=nvm, label=f"{name}.r{index}.region"
            )
            self.replica_mrs.append(host.dev.reg_mr(region, AccessFlags.ALL_REMOTE))
        self._reader = RemoteReader(client, self.replicas, self.replica_mrs, name)
        self._plumbing: List[_ReplicaPlumbing] = []
        self._setup()
        self._flow = Resource(client.sim, capacity=max(rounds // 2, 1))
        self._waiters: Dict[int, Event] = {}
        self._tasks: List[Task] = []
        self._replica_tasks: List[Task] = []
        self._started = False
        if autostart:
            self.start()

    @property
    def sim(self):
        return self.client.sim

    @property
    def group_size(self) -> int:
        return self.g

    # -- wiring ---------------------------------------------------------------

    def _setup(self) -> None:
        for index, host in enumerate(self.replicas):
            plumbing = _ReplicaPlumbing(host, index)
            label = f"{self.name}.r{index}"
            plumbing.qp_prev = host.dev.create_qp(
                send_slots=8, recv_slots=self.rounds, name=f"{label}.prev"
            )
            plumbing.qp_next = host.dev.create_qp(
                send_slots=self.rounds * 4, recv_slots=8, name=f"{label}.next"
            )
            cmd_region = host.memory.alloc(
                self.rounds * self.cmd_size, label=f"{label}.cmds"
            )
            plumbing.cmd_region = host.dev.reg_mr(cmd_region)
            self._plumbing.append(plumbing)
        client = self.client
        self.client_qp = client.dev.create_qp(
            send_slots=self.rounds * 4, recv_slots=8, name=f"{self.name}.client"
        )
        self.ack_qp = client.dev.create_qp(
            send_slots=8, recv_slots=self.rounds, name=f"{self.name}.ack"
        )
        acks = client.memory.alloc(
            self.rounds * self.result_size, label=f"{self.name}.acks"
        )
        self.ack_region = client.dev.reg_mr(acks, AccessFlags.REMOTE_WRITE)
        staging = client.memory.alloc(
            self.rounds * self.cmd_size, label=f"{self.name}.cstaging"
        )
        self.client_staging = staging
        self.client_qp.connect(self._plumbing[0].qp_prev)
        for index in range(self.g - 1):
            self._plumbing[index].qp_next.connect(self._plumbing[index + 1].qp_prev)
        self._plumbing[-1].qp_next.connect(self.ack_qp)
        for plumbing in self._plumbing:
            for round_ in range(self.rounds):
                self._post_cmd_recv(plumbing)
        for _ in range(self.rounds):
            self.ack_qp.post_recv(Wqe(local_addr=0, length=0))

    def _post_cmd_recv(self, plumbing: _ReplicaPlumbing) -> None:
        slot = plumbing.posted_recvs % self.rounds
        plumbing.qp_prev.post_recv(
            Wqe(
                local_addr=plumbing.cmd_region.addr + slot * self.cmd_size,
                length=self.cmd_size,
                wr_id=plumbing.posted_recvs,
            )
        )
        plumbing.posted_recvs += 1

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        """Spawn replica daemons and the client completion handler."""
        if self._started:
            return
        self._started = True
        for index in range(self.g):
            task = self.replicas[index].os.spawn(
                self._daemon_body(index),
                name=f"{self.name}.r{index}.daemon",
                pinned_core=self.replica_cores[index],
            )
            self._tasks.append(task)
            self._replica_tasks.append(task)
        task = self.client.os.spawn(
            self._ack_handler_body(),
            name=f"{self.name}.acks",
            pinned_core=self.client_core,
        )
        self._tasks.append(task)

    # -- public operations (same surface as HyperLoopGroup) ----------------------------

    def write_local(self, offset: int, data: bytes) -> None:
        """Stage data in the client's local copy (see gwrite)."""
        self.client_region.write(offset, data)

    def read_replica(self, replica: int, offset: int, size: int) -> bytes:
        mr = self.replica_mrs[replica]
        return self.replicas[replica].nic.cache.read(mr.addr + offset, size)

    def pread(self, task: Task, replica: int, offset: int, size: int) -> Generator:
        """One-sided RDMA READ from a replica (no replica CPU)."""
        data = yield from self._reader.pread(task, replica, offset, size)
        return data

    def gwrite(self, task: Task, offset: int, size: int) -> Generator:
        """Replicate ``size`` bytes at ``offset`` to all replicas."""
        result = yield from self._run(task, OpSpec(GWRITE, offset=offset, size=size))
        return result

    def gflush(self, task: Task) -> Generator:
        """Explicit durability barrier (zero-byte durable gwrite)."""
        result = yield from self._run(task, OpSpec(GWRITE, offset=0, size=0))
        return result

    def gmemcpy(self, task: Task, src_offset: int, dst_offset: int, size: int) -> Generator:
        """CPU copy of ``size`` bytes on every replica."""
        result = yield from self._run(
            task, OpSpec(GMEMCPY, src_offset=src_offset, dst_offset=dst_offset, size=size)
        )
        return result

    def gcas(
        self,
        task: Task,
        offset: int,
        compare: int,
        swap: int,
        execute_map: Optional[Sequence[bool]] = None,
    ) -> Generator:
        """Group compare-and-swap executed by replica CPUs."""
        result = yield from self._run(
            task,
            OpSpec(GCAS, offset=offset, compare=compare, swap=swap, execute_map=execute_map),
        )
        return result

    def _run(self, task: Task, op: OpSpec) -> Generator:
        yield from task.wait(self._flow.acquire())
        try:
            cost = 300 + self.params.post_ns * (2 if op.kind == GWRITE else 1)
            yield from task.compute(cost)
            round_ = self._client_post(op)
            ack = self.sim.event(name=f"{self.name}.op{round_}")
            self._waiters[round_] = ack
            result = yield from task.wait(ack)
        finally:
            self._flow.release()
        return result

    def _client_post(self, op: OpSpec) -> int:
        round_ = self.next_round
        self.next_round += 1
        position = round_ % self.rounds
        execute_bits = 0
        for index in range(self.g):
            if op.execute_map is None or op.execute_map[index]:
                execute_bits |= 1 << index
        command = _CMD.pack(
            _KINDS[op.kind],
            round_,
            op.offset,
            op.size,
            op.src_offset,
            op.dst_offset,
            op.compare,
            op.swap,
            execute_bits,
        ) + struct.pack("<Q", SKIP_SENTINEL) * self.g
        staging_addr = self.client_staging.addr + position * self.cmd_size
        self.client.nic.host_write(staging_addr, command)
        wqes: List[Wqe] = []
        head = self.replica_mrs[0]
        if op.kind == GWRITE and op.size > 0:
            wqes.append(
                Wqe(
                    opcode=Opcode.WRITE,
                    flags=FLAG_VALID,
                    length=op.size,
                    local_addr=self.client_region.addr + op.offset,
                    remote_addr=head.addr + op.offset,
                    rkey=head.rkey,
                    wr_id=round_,
                )
            )
        wqes.append(
            Wqe(
                opcode=Opcode.SEND,
                flags=FLAG_VALID,
                length=self.cmd_size,
                local_addr=staging_addr,
                wr_id=round_,
            )
        )
        self.client_qp.post_send_batch(wqes)
        return round_

    # -- replica daemon ------------------------------------------------------------------

    def _daemon_body(self, index: int):
        plumbing = self._plumbing[index]
        params = self.params
        host = self.replicas[index]
        region = self.replica_mrs[index]
        is_tail = index == self.g - 1

        def handle(task: Task, round_: int) -> Generator:
            position = round_ % self.rounds
            cmd_addr = plumbing.cmd_region.addr + position * self.cmd_size
            raw = host.nic.cache.read(cmd_addr, self.cmd_size)
            (kind, cmd_round, offset, size, src, dst, compare, swap, bits) = _CMD.unpack(
                raw[: _CMD.size]
            )
            if cmd_round != round_:
                self.errors.append(f"r{index}: round skew {cmd_round} != {round_}")
            yield from task.compute(params.handle_ns)
            if kind == _KINDS[GWRITE]:
                if self.durable:
                    # Data arrived via RDMA into the NIC's volatile
                    # window; the CPU forces it to the durable domain.
                    yield from task.compute(
                        params.flush_base_ns + int(size * 0.01)
                    )
                    host.nic.cache.flush_all()
            elif kind == _KINDS[GMEMCPY]:
                data = host.nic.cache.read(region.addr + src, size)
                yield from task.compute(
                    int(size * params.memcpy_ns_per_byte) + 100
                )
                host.memory.write(region.addr + dst, data)
                if self.durable:
                    yield from task.compute(params.flush_base_ns)
            elif kind == _KINDS[GCAS]:
                if bits & (1 << index):
                    original = host.nic.cache.read(region.addr + offset, 8)
                    if original == compare.to_bytes(8, "little"):
                        host.memory.write(region.addr + offset, swap.to_bytes(8, "little"))
                    result_off = _CMD.size + index * 8
                    host.memory.write(cmd_addr + result_off, original)
            else:
                self.errors.append(f"r{index}: bad command kind {kind}")
                return
            # Forward down the chain (or ack the client from the tail).
            if is_tail:
                wqes = [
                    Wqe(
                        opcode=Opcode.WRITE_IMM,
                        flags=FLAG_VALID,
                        length=self.result_size,
                        local_addr=cmd_addr + _CMD.size,
                        remote_addr=self.ack_region.addr + position * self.result_size,
                        rkey=self.ack_region.rkey,
                        compare=round_ & 0xFFFF_FFFF,
                        wr_id=round_,
                    )
                ]
            else:
                next_region = self.replica_mrs[index + 1]
                wqes = []
                if kind == _KINDS[GWRITE] and size > 0:
                    wqes.append(
                        Wqe(
                            opcode=Opcode.WRITE,
                            flags=FLAG_VALID,
                            length=size,
                            local_addr=region.addr + offset,
                            remote_addr=next_region.addr + offset,
                            rkey=next_region.rkey,
                            wr_id=round_,
                        )
                    )
                wqes.append(
                    Wqe(
                        opcode=Opcode.SEND,
                        flags=FLAG_VALID,
                        length=self.cmd_size,
                        local_addr=cmd_addr,
                        wr_id=round_,
                    )
                )
            yield from task.compute(params.post_ns * (len(wqes) + 1))
            plumbing.qp_next.post_send_batch(wqes)
            self._post_cmd_recv(plumbing)

        def body(task: Task) -> Generator:
            handled = 0
            cq = plumbing.qp_prev.recv_cq
            while True:
                if self.replica_mode == "polling":
                    yield from task.poll_wait(
                        cq.next_event(), check_ns=params.poll_slice_ns
                    )
                else:
                    yield from task.wait(cq.next_event())
                cqes = cq.poll(64)
                if cqes:
                    yield from task.compute(params.parse_ns * len(cqes))
                for cqe in cqes:
                    if not cqe.ok:
                        self.errors.append(f"r{index}: recv error {cqe!r}")
                        continue
                    yield from handle(task, handled)
                    handled += 1
                # Drain send CQ (errors only; sends are unsignaled).
                for cqe in plumbing.qp_next.send_cq.poll(64):
                    if not cqe.ok:
                        self.errors.append(f"r{index}: send error {cqe!r}")

        return body

    # -- client completion handling --------------------------------------------------------

    def _ack_handler_body(self):
        params = self.params

        def body(task: Task) -> Generator:
            expected = 0
            cq = self.ack_qp.recv_cq
            while True:
                if self.client_mode == "polling":
                    yield from task.poll_wait(
                        cq.next_event(), check_ns=params.poll_slice_ns
                    )
                else:
                    yield from task.wait(cq.next_event())
                cqes = cq.poll(64)
                if cqes:
                    yield from task.compute(300 * len(cqes))
                for cqe in cqes:
                    if not cqe.ok:
                        self.errors.append(f"ack error: {cqe!r}")
                        continue
                    round_ = expected
                    expected += 1
                    result = self._parse_result_map(round_)
                    self.ack_qp.post_recv(Wqe(local_addr=0, length=0))
                    waiter = self._waiters.pop(round_, None)
                    if waiter is not None:
                        waiter.succeed(result)

        return body

    def _parse_result_map(self, round_: int) -> List[Optional[int]]:
        position = round_ % self.rounds
        raw = self.client.nic.cache.read(
            self.ack_region.addr + position * self.result_size, self.result_size
        )
        out: List[Optional[int]] = []
        for replica in range(self.g):
            (value,) = struct.unpack_from("<Q", raw, replica * 8)
            out.append(None if value == SKIP_SENTINEL else value)
        return out

    # -- metrics ---------------------------------------------------------------------------

    def replica_cpu_ns(self) -> int:
        """Total CPU time burned by replica daemons."""
        return sum(task.cpu_ns for task in self._replica_tasks)

    def __repr__(self) -> str:
        return (
            f"<NaiveGroup {self.name} g={self.g} mode={self.replica_mode} "
            f"durable={self.durable}>"
        )
