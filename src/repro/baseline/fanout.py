"""Fan-out replication: one primary coordinates all backups (§7).

The paper argues for chain replication partly on NIC load-balancing
grounds: "Chain replication has a good load balancing property where
there is at most one active write-QP per active partition as opposed
to several per partition such as in fan-out protocols." This variant
exists to measure that claim (the chain-vs-fanout ablation bench):

* The client sends data + command to the primary (replica 0).
* The primary's **CPU** posts one WRITE+SEND per backup (all egress
  serialized through the primary's one NIC port), waits for every
  backup's ack, then acks the client.

Functionally equivalent to :class:`~repro.baseline.naive.NaiveGroup`
for gWRITE; only the topology differs.
"""

from __future__ import annotations

import struct
from typing import Dict, Generator, List, Sequence

from ..hw.cpu import Task
from ..hw.host import Host
from ..hw.nic import AccessFlags
from ..hw.wqe import FLAG_VALID, Opcode, Wqe
from ..sim import Event, Resource
from ..rdma.verbs import Mr, QueuePair

__all__ = ["FanoutGroup"]

_CMD = struct.Struct("<QQI")  # round, offset, size


class FanoutGroup:
    """Primary/backup fan-out replication of gWRITE (ablation only)."""

    def __init__(
        self,
        client: Host,
        replicas: Sequence[Host],
        region_size: int = 1 << 20,
        rounds: int = 256,
        nvm: bool = True,
        replica_mode: str = "event",
        name: str = "fanout",
        autostart: bool = True,
    ):
        if len(replicas) < 2:
            raise ValueError("fan-out needs a primary and at least one backup")
        self.client = client
        self.replicas = list(replicas)
        self.region_size = region_size
        self.rounds = rounds
        self.replica_mode = replica_mode
        self.name = name
        self.g = len(self.replicas)
        self.next_round = 0
        self.errors: List[str] = []
        self.client_region = client.memory.alloc(region_size, label=f"{name}.client")
        self.replica_mrs: List[Mr] = []
        for index, host in enumerate(self.replicas):
            region = host.memory.alloc(region_size, nvm=nvm, label=f"{name}.r{index}")
            self.replica_mrs.append(host.dev.reg_mr(region, AccessFlags.ALL_REMOTE))
        self._setup()
        self._flow = Resource(client.sim, capacity=max(rounds // 2, 1))
        self._waiters: Dict[int, Event] = {}
        self._tasks = []
        self._replica_tasks = []
        self._started = False
        if autostart:
            self.start()

    @property
    def sim(self):
        return self.client.sim

    @property
    def group_size(self) -> int:
        return self.g

    def _setup(self) -> None:
        primary = self.replicas[0]
        self.cmd_size = _CMD.size
        # client -> primary
        self.client_qp = self.client.dev.create_qp(
            send_slots=self.rounds * 4, recv_slots=8, name=f"{self.name}.c"
        )
        self.primary_qp = primary.dev.create_qp(
            send_slots=8, recv_slots=self.rounds, name=f"{self.name}.p"
        )
        self.client_qp.connect(self.primary_qp)
        # primary -> each backup (several active write QPs on one NIC:
        # the §7 scalability concern, reproduced structurally)
        self.backup_qps: List[QueuePair] = []
        self.backup_remote_qps: List[QueuePair] = []
        for index in range(1, self.g):
            qp = primary.dev.create_qp(
                send_slots=self.rounds * 4, recv_slots=8, name=f"{self.name}.pb{index}"
            )
            remote = self.replicas[index].dev.create_qp(
                send_slots=8, recv_slots=self.rounds, name=f"{self.name}.b{index}"
            )
            qp.connect(remote)
            self.backup_qps.append(qp)
            self.backup_remote_qps.append(remote)
        # primary -> client acks
        self.ack_qp = self.client.dev.create_qp(
            send_slots=8, recv_slots=self.rounds, name=f"{self.name}.ack"
        )
        self.primary_ack_qp = primary.dev.create_qp(
            send_slots=self.rounds * 2, recv_slots=8, name=f"{self.name}.pack"
        )
        self.primary_ack_qp.connect(self.ack_qp)
        ack_region = self.client.memory.alloc(8, label=f"{self.name}.ackslot")
        self.ack_region = self.client.dev.reg_mr(ack_region, AccessFlags.REMOTE_WRITE)
        # buffers
        self.cmd_buf = primary.dev.reg_mr(
            primary.memory.alloc(self.rounds * self.cmd_size, label=f"{self.name}.cmds")
        )
        self.client_staging = self.client.memory.alloc(
            self.rounds * self.cmd_size, label=f"{self.name}.cstage"
        )
        backup_cmds = []
        for index in range(1, self.g):
            region = self.replicas[index].memory.alloc(
                self.rounds * self.cmd_size, label=f"{self.name}.b{index}.cmds"
            )
            backup_cmds.append(self.replicas[index].dev.reg_mr(region))
        self.backup_cmds = backup_cmds
        for _ in range(self.rounds):
            self.primary_qp.post_recv(
                Wqe(local_addr=self.cmd_buf.addr, length=self.cmd_size)
            )
            for index, remote in enumerate(self.backup_remote_qps):
                remote.post_recv(
                    Wqe(local_addr=backup_cmds[index].addr, length=self.cmd_size)
                )
            self.ack_qp.post_recv(Wqe(local_addr=0, length=0))

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        primary_task = self.replicas[0].os.spawn(
            self._primary_body(), name=f"{self.name}.primary"
        )
        self._tasks.append(primary_task)
        self._replica_tasks.append(primary_task)
        for index in range(1, self.g):
            task = self.replicas[index].os.spawn(
                self._backup_body(index), name=f"{self.name}.b{index}"
            )
            self._tasks.append(task)
            self._replica_tasks.append(task)
        self._tasks.append(
            self.client.os.spawn(self._ack_body(), name=f"{self.name}.acks")
        )

    # -- public API (gwrite only; the ablation's subject) ---------------------------

    def write_local(self, offset: int, data: bytes) -> None:
        self.client_region.write(offset, data)

    def read_replica(self, replica: int, offset: int, size: int) -> bytes:
        mr = self.replica_mrs[replica]
        return self.replicas[replica].nic.cache.read(mr.addr + offset, size)

    def gwrite(self, task: Task, offset: int, size: int) -> Generator:
        """Replicate via the primary's fan-out."""
        yield from task.wait(self._flow.acquire())
        try:
            yield from task.compute(700)
            round_ = self.next_round
            self.next_round += 1
            command = _CMD.pack(round_, offset, size)
            staging = self.client_staging.addr + (round_ % self.rounds) * self.cmd_size
            self.client.nic.host_write(staging, command)
            primary_mr = self.replica_mrs[0]
            self.client_qp.post_send_batch(
                [
                    Wqe(
                        opcode=Opcode.WRITE,
                        flags=FLAG_VALID,
                        length=size,
                        local_addr=self.client_region.addr + offset,
                        remote_addr=primary_mr.addr + offset,
                        rkey=primary_mr.rkey,
                    ),
                    Wqe(
                        opcode=Opcode.SEND,
                        flags=FLAG_VALID,
                        length=self.cmd_size,
                        local_addr=staging,
                    ),
                ]
            )
            ack = self.sim.event(name=f"{self.name}.op{round_}")
            self._waiters[round_] = ack
            result = yield from task.wait(ack)
        finally:
            self._flow.release()
        return result

    # -- daemons ---------------------------------------------------------------------

    def _primary_body(self):
        primary = self.replicas[0]
        region = self.replica_mrs[0]

        def body(task: Task) -> Generator:
            cq = self.primary_qp.recv_cq
            backup_ack_counts = [qp.send_cq for qp in self.backup_qps]
            handled = 0
            while True:
                if self.replica_mode == "polling":
                    yield from task.poll_wait(cq.next_event())
                else:
                    yield from task.wait(cq.next_event())
                cqes = cq.poll(16)
                yield from task.compute(600 * max(len(cqes), 1))
                for cqe in cqes:
                    raw = primary.nic.cache.read(self.cmd_buf.addr, self.cmd_size)
                    round_, offset, size = _CMD.unpack(raw)
                    self.primary_qp.post_recv(
                        Wqe(local_addr=self.cmd_buf.addr, length=self.cmd_size)
                    )
                    # Fan out: one WRITE + SEND per backup, all through
                    # the primary's single NIC port.
                    expected = []
                    for index, qp in enumerate(self.backup_qps):
                        backup_mr = self.replica_mrs[index + 1]
                        yield from task.compute(qp.post_cost(2))
                        qp.post_send_batch(
                            [
                                Wqe(
                                    opcode=Opcode.WRITE,
                                    flags=FLAG_VALID,
                                    length=size,
                                    local_addr=region.addr + offset,
                                    remote_addr=backup_mr.addr + offset,
                                    rkey=backup_mr.rkey,
                                ),
                                Wqe(
                                    opcode=Opcode.SEND,
                                    flags=FLAG_VALID | 0x02,  # signaled
                                    length=self.cmd_size,
                                    local_addr=self.cmd_buf.addr,
                                ),
                            ]
                        )
                        expected.append(qp.send_cq.completions_total + 1)
                    # Wait for every backup's transport-level ack, then
                    # wait for their application-level acks (backup
                    # daemons bump a counter via their own sends).
                    for index, qp in enumerate(self.backup_qps):
                        yield from task.wait(
                            qp.send_cq.threshold_event(expected[index])
                        )
                        qp.send_cq.poll(16)
                    yield from task.compute(self.primary_ack_qp.post_cost(1))
                    self.primary_ack_qp.post_send(
                        Wqe(
                            opcode=Opcode.WRITE_IMM,
                            flags=FLAG_VALID,
                            length=0,
                            local_addr=region.addr,
                            remote_addr=self.ack_region.addr,
                            rkey=self.ack_region.rkey,
                            compare=round_ & 0xFFFF_FFFF,
                        )
                    )
                    handled += 1

        return body

    def _backup_body(self, index: int):
        qp = self.backup_remote_qps[index - 1]
        cmd_mr = self.backup_cmds[index - 1]

        def body(task: Task) -> Generator:
            cq = qp.recv_cq
            while True:
                if self.replica_mode == "polling":
                    yield from task.poll_wait(cq.next_event())
                else:
                    yield from task.wait(cq.next_event())
                cqes = cq.poll(16)
                yield from task.compute(600 * max(len(cqes), 1))
                for _cqe in cqes:
                    qp.post_recv(Wqe(local_addr=cmd_mr.addr, length=self.cmd_size))

        return body

    def _ack_body(self):
        def body(task: Task) -> Generator:
            expected = 0
            cq = self.ack_qp.recv_cq
            while True:
                yield from task.wait(cq.next_event())
                for cqe in cq.poll(16):
                    self.ack_qp.post_recv(Wqe(local_addr=0, length=0))
                    waiter = self._waiters.pop(expected, None)
                    expected += 1
                    if waiter is not None:
                        waiter.succeed(expected - 1)
                yield from task.compute(400)

        return body

    def replica_cpu_ns(self) -> int:
        return sum(task.cpu_ns for task in self._replica_tasks)

    def __repr__(self) -> str:
        return f"<FanoutGroup {self.name} g={self.g}>"
