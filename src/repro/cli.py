"""Command-line interface: run experiments and demos without pytest.

Examples::

    python -m repro list
    python -m repro latency --system hyperloop --size 4096 --ops 2000
    python -m repro latency --system naive-polling --stress 6
    python -m repro throughput --size 8192
    python -m repro fig2 --replica-sets 18
    python -m repro fig11
    python -m repro fig12 --workload A
    python -m repro sweep          # the tenancy sweep headline table
    python -m repro bench --shards 4 --oracle-check   # sharded engine vs oracle
    python -m repro trace          # traced run -> Chrome-trace JSON + report
    python -m repro chaos --seed 7 # fault-injection matrix, invariant report
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .bench import format_table
from .bench.experiments import (
    fig2_mongodb_motivation,
    fig11_rocksdb,
    fig12_mongodb,
    microbench_latency,
    microbench_throughput,
)

__all__ = ["main", "build_parser"]

SYSTEMS = ["hyperloop", "naive-event", "naive-polling"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HyperLoop reproduction — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    latency = sub.add_parser("latency", help="§6.1 latency microbenchmark")
    latency.add_argument("--system", choices=SYSTEMS, default="hyperloop")
    latency.add_argument("--primitive", choices=["gwrite", "gmemcpy", "gcas"], default="gwrite")
    latency.add_argument("--size", type=int, default=1024, help="message bytes")
    latency.add_argument("--group", type=int, default=3, help="replicas in the chain")
    latency.add_argument("--ops", type=int, default=2000)
    latency.add_argument("--stress", type=int, default=6, help="tenants per replica core")
    latency.add_argument("--seed", type=int, default=42)

    throughput = sub.add_parser("throughput", help="§6.1 throughput benchmark")
    throughput.add_argument("--system", choices=SYSTEMS, default="hyperloop")
    throughput.add_argument("--size", type=int, default=4096)
    throughput.add_argument("--mbytes", type=int, default=32, help="total MB to write")

    fig2 = sub.add_parser("fig2", help="§2.2 MongoDB motivation study")
    fig2.add_argument("--replica-sets", type=int, default=18)
    fig2.add_argument("--cores", type=int, default=16)
    fig2.add_argument("--ops-per-set", type=int, default=40)

    fig11 = sub.add_parser("fig11", help="§6.2 replicated RocksDB comparison")
    fig11.add_argument("--ops", type=int, default=1200)
    fig11.add_argument("--stress", type=int, default=10)

    fig12 = sub.add_parser("fig12", help="§6.2 MongoDB YCSB comparison")
    fig12.add_argument("--workload", choices=list("ABDEF"), default="A")
    fig12.add_argument("--ops", type=int, default=450)

    sweep = sub.add_parser("sweep", help="latency vs tenancy, all systems")
    sweep.add_argument("--ops", type=int, default=1500)
    sweep.add_argument("--levels", type=int, nargs="+", default=[0, 2, 6, 10])

    bench = sub.add_parser(
        "bench",
        help="parallel seed/config sweep with merged stats",
        description=(
            "Fan independent simulations (seeds x systems x sizes) across "
            "worker processes; per-run seeds derive deterministically from "
            "--seed, and results are identical to a serial run."
        ),
    )
    bench.add_argument("--experiment", choices=["latency", "throughput"], default="latency")
    bench.add_argument("--systems", choices=SYSTEMS, nargs="+", default=["hyperloop"])
    bench.add_argument("--sizes", type=int, nargs="+", default=[1024])
    bench.add_argument("--seeds", type=int, default=4, help="independent seeds per config")
    bench.add_argument("--seed", type=int, default=42, help="base seed for derivation")
    bench.add_argument("--ops", type=int, default=500)
    bench.add_argument("--stress", type=int, default=3, help="tenants per replica core")
    bench.add_argument("--workers", type=int, default=None, help="processes (default: all cores)")
    bench.add_argument("--serial", action="store_true", help="run in-process (reference path)")
    bench.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "run the sharded-engine mesh program across N worker "
            "processes and print its deterministic render (stdout is "
            "byte-identical for any N; timing goes to stderr)"
        ),
    )
    bench.add_argument(
        "--oracle-check",
        action="store_true",
        help="with --shards: also run the single-process oracle and fail on any byte difference",
    )
    bench.add_argument("--hosts", type=int, default=24, help="mesh hosts (with --shards)")
    bench.add_argument("--messages", type=int, default=40, help="mesh messages per host (with --shards)")
    bench.add_argument("--mesh-group", type=int, default=6, help="mesh replication-group size (with --shards)")
    bench.add_argument(
        "--remote-permille",
        type=int,
        default=100,
        help="mesh cross-group traffic share, per mille (with --shards)",
    )

    txn = sub.add_parser(
        "txn",
        help="cross-group SSI transaction workload (repro.txn)",
        description=(
            "Run the deterministic multi-group transaction mix through the "
            "SSI coordinator (snapshot reads, first-committer-wins, pivot "
            "aborts) and verify the committed history offline. The report "
            "depends only on the arguments — two runs with the same seed "
            "print byte-identical output."
        ),
    )
    txn.add_argument("--seed", type=int, default=7)
    txn.add_argument(
        "--mode",
        choices=["ssi", "si"],
        default="ssi",
        help="ssi = abort dangerous structures; si = plain snapshot isolation",
    )
    txn.add_argument("--txns", type=int, default=24, help="mixed transactions")
    txn.add_argument("--groups", type=int, default=2, help="replica groups")
    txn.add_argument(
        "--write-skew-pairs",
        type=int,
        default=2,
        help="rendezvoused write-skew pairs (SI admits, SSI must abort)",
    )
    txn.add_argument(
        "--retry",
        choices=["none", "immediate", "backoff"],
        default=None,
        help="retry policy for aborted transactions "
        "(default: none for the mix, backoff for --ycsb)",
    )
    txn.add_argument(
        "--install",
        choices=["parallel", "sequential"],
        default=None,
        help="commit-install mode (default: REPRO_TXN_INSTALL or parallel)",
    )
    txn.add_argument(
        "--ycsb",
        action="store_true",
        help="run the transactional YCSB suite instead of the shaped mix",
    )
    txn.add_argument(
        "--mixes",
        default="A,B,C",
        help="comma-separated YCSB mixes for --ycsb (A/B/C/D/E/F)",
    )
    txn.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool width for --ycsb (output is worker-independent)",
    )

    trace = sub.add_parser(
        "trace",
        help="traced experiment run: Chrome-trace export + attribution report",
        description=(
            "Run one experiment with the repro.obs tracer enabled, export a "
            "Chrome-trace/Perfetto JSON timeline, and print the counter and "
            "kernel time-attribution report. Tracing changes no simulated "
            "result — the run produces exactly the numbers an untraced run "
            "would."
        ),
    )
    trace.add_argument("--system", choices=SYSTEMS, default="hyperloop")
    trace.add_argument(
        "--primitive", choices=["gwrite", "gmemcpy", "gcas"], default="gwrite"
    )
    trace.add_argument("--size", type=int, default=1024, help="message bytes")
    trace.add_argument("--ops", type=int, default=50)
    trace.add_argument("--stress", type=int, default=1, help="tenants per replica core")
    trace.add_argument("--cores", type=int, default=8)
    trace.add_argument("--seed", type=int, default=42)
    trace.add_argument(
        "--out", default="trace.json", help="Chrome-trace JSON path ('-' skips export)"
    )
    trace.add_argument(
        "--op",
        type=int,
        default=None,
        help="print this round's chain timeline (default: a mid-run round)",
    )
    trace.add_argument(
        "--capacity", type=int, default=None, help="ring-buffer record capacity"
    )

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection scenario matrix with invariant checks",
        description=(
            "Run the repro.faults chaos matrix: each scenario pairs a workload "
            "with a declarative fault plan (drops, partitions, NIC/host crashes, "
            "power failures) and checks the paper's guarantees afterwards. The "
            "report depends only on (scenario, seed) — two runs with the same "
            "seed print byte-identical output."
        ),
    )
    chaos.add_argument("--seed", type=int, default=42)
    chaos.add_argument(
        "--scenario",
        action="append",
        default=None,
        help="run only this scenario (repeatable; default: the full matrix)",
    )
    chaos.add_argument(
        "--list", action="store_true", dest="list_scenarios", help="list scenarios"
    )
    chaos.add_argument(
        "--trace",
        default=None,
        help="also export a Chrome-trace JSON of the run (fault events included)",
    )
    chaos.add_argument(
        "--sweep",
        type=int,
        default=None,
        metavar="N",
        help=(
            "chaos sweep: N derived seeds x the compound+generated matrix "
            "through the parallel pool; byte-identical report for any "
            "--workers value. On a generated-plan failure the plan is "
            "shrunk and the replay command printed."
        ),
    )
    chaos.add_argument(
        "--workers",
        type=int,
        default=None,
        help="sweep worker processes (default: all cores; 1 = in-process)",
    )
    chaos.add_argument(
        "--replay",
        default=None,
        metavar="SPEC",
        help=(
            "re-run one failure: scenario:seed, or generated:seed:i0,i1,... "
            "for a (shrunk) generated plan subset"
        ),
    )
    chaos.add_argument(
        "--sabotage",
        default=None,
        help=(
            "append a deliberately-broken invariant to generated runs "
            "(corrupt-fired / drop-fired / any-fault) — a shrinker demo/test "
            "hook"
        ),
    )

    return parser


def _cmd_list() -> int:
    rows = [
        ("latency", "gWRITE/gMEMCPY/gCAS latency distribution (Fig 8, 10, Table 2)"),
        ("throughput", "bulk gWRITE throughput + replica CPU (Fig 9)"),
        ("fig2", "vanilla MongoDB under multi-tenancy (Fig 2)"),
        ("fig11", "replicated RocksDB, three data paths (Fig 11)"),
        ("fig12", "split MongoDB on YCSB, native vs HyperLoop (Fig 12)"),
        ("sweep", "the headline tenancy sweep"),
        ("bench", "parallel seed/config sweep with merged stats"),
        ("trace", "traced run: Chrome-trace timeline + attribution report"),
        ("chaos", "fault-injection scenario matrix with invariant checks"),
        ("txn", "cross-group SSI transactions with Available-Copies reads"),
    ]
    print(format_table("Experiments", ["command", "what it reproduces"], rows))
    return 0


def _cmd_latency(args) -> int:
    result = microbench_latency(
        args.system,
        primitive=args.primitive,
        message_size=args.size,
        group_size=args.group,
        n_ops=args.ops,
        stress_per_core=args.stress,
        seed=args.seed,
    )
    stats = result.stats
    rows = [
        (
            args.system,
            args.primitive,
            args.size,
            round(stats.mean, 1),
            round(stats.p50, 1),
            round(stats.p95, 1),
            round(stats.p99, 1),
            f"{result.replica_cpu_fraction * 100:.2f}%",
        )
    ]
    print(
        format_table(
            f"Latency (us), group={args.group}, {args.stress} tenants/core",
            ["system", "primitive", "size_B", "avg", "p50", "p95", "p99", "replica CPU"],
            rows,
        )
    )
    if result.errors:
        print(f"errors: {result.errors[:3]}", file=sys.stderr)
        return 1
    return 0


def _cmd_throughput(args) -> int:
    result = microbench_throughput(
        args.system, message_size=args.size, total_bytes=args.mbytes << 20
    )
    rows = [
        (
            args.system,
            args.size,
            round(result.throughput_kops, 1),
            f"{result.replica_cpu_fraction * 100:.1f}%",
        )
    ]
    print(
        format_table(
            "Throughput",
            ["system", "size_B", "Kops/s", "replica CPU"],
            rows,
        )
    )
    return 0


def _cmd_fig2(args) -> int:
    result = fig2_mongodb_motivation(
        args.replica_sets, n_cores=args.cores, ops_per_set=args.ops_per_set
    )
    stats = result.stats
    rows = [
        (
            args.replica_sets,
            args.cores,
            round(stats.mean / 1000, 2),
            round(stats.p99 / 1000, 2),
            result.context_switches,
        )
    ]
    print(
        format_table(
            "Figure 2 configuration",
            ["replica-sets", "cores", "avg_ms", "p99_ms", "ctx switches"],
            rows,
        )
    )
    return 0


def _cmd_fig11(args) -> int:
    rows = []
    for system in ("naive-event", "naive-polling", "hyperloop"):
        stats = fig11_rocksdb(system, n_ops=args.ops, stress_per_core=args.stress)
        rows.append((system, round(stats.mean, 1), round(stats.p99, 1)))
    print(
        format_table(
            "Figure 11: RocksDB update latency (us)",
            ["system", "avg", "p99"],
            rows,
        )
    )
    return 0


def _cmd_fig12(args) -> int:
    rows = []
    for label, offloaded in (("native", False), ("hyperloop", True)):
        stats = fig12_mongodb(offloaded, args.workload, n_ops=args.ops)
        rows.append(
            (label, round(stats.mean / 1000, 2), round(stats.p99 / 1000, 2))
        )
    print(
        format_table(
            f"Figure 12: MongoDB YCSB-{args.workload} (ms)",
            ["system", "avg_ms", "p99_ms"],
            rows,
        )
    )
    return 0


def _cmd_sweep(args) -> int:
    rows = []
    for level in args.levels:
        for system in SYSTEMS:
            result = microbench_latency(
                system, "gwrite", 1024, n_ops=args.ops, stress_per_core=level
            )
            rows.append(
                (
                    level,
                    system,
                    round(result.stats.mean, 1),
                    round(result.stats.p99, 1),
                )
            )
    print(
        format_table(
            "Latency (us) vs tenants-per-core",
            ["tenants/core", "system", "avg", "p99"],
            rows,
        )
    )
    return 0


def _cmd_bench_shards(args) -> int:
    """``bench --shards N``: sharded mesh run with deterministic stdout.

    Everything on stdout is a pure function of ``(params, seed)`` —
    identical for any shard count and for the oracle — so CI byte-diffs
    it (the ``shard-equivalence`` job). Timing and per-shard stats go
    to stderr.
    """
    from .bench.mesh import mesh_params
    from .sim.shard import run_oracle, run_sharded

    params = mesh_params(
        hosts=args.hosts,
        messages=args.messages,
        group_size=args.mesh_group,
        remote_permille=args.remote_permille,
    )
    run = run_sharded("mesh", args.shards, seed=args.seed, params=params)
    if args.oracle_check and args.shards > 1:
        oracle = run_oracle("mesh", seed=args.seed, params=params)
        if run.rendered != oracle.rendered or run.report != oracle.report:
            print(
                f"FAIL: {args.shards}-shard run diverged from the oracle",
                file=sys.stderr,
            )
            return 1
        print(
            f"oracle check passed: {args.shards} shards byte-identical",
            file=sys.stderr,
        )
    print(run.rendered)
    for stats in run.shard_stats:
        print(
            f"shard {stats['shard']}: hosts={stats['hosts']} "
            f"events={stats['events']} wall={stats['wall_s']:.3f}s",
            file=sys.stderr,
        )
    print(
        f"shards={run.shards} sync_rounds={run.sync_rounds} "
        f"lookahead={run.lookahead_ns}ns wall={run.wall_s:.3f}s",
        file=sys.stderr,
    )
    return 0


def _cmd_bench(args) -> int:
    import time

    if args.shards is not None:
        return _cmd_bench_shards(args)

    from .bench.parallel import (
        make_specs,
        merge_run_stats,
        run_parallel,
        run_serial,
    )

    grid = [
        {"system": system, "message_size": size}
        for system in args.systems
        for size in args.sizes
    ]
    common = dict(stress_per_core=args.stress)
    if args.experiment == "latency":
        common["n_ops"] = args.ops
    specs = make_specs(args.experiment, args.seed, args.seeds, grid=grid, **common)
    started = time.perf_counter()
    if args.serial:
        results = run_serial(specs)
        mode = "serial"
    else:
        results = run_parallel(specs, workers=args.workers)
        mode = f"parallel x{args.workers or 'auto'}"
    elapsed = time.perf_counter() - started

    rows = []
    for result in results:
        spec = result.spec
        params = spec.kwargs
        stats = result.stats_dict()
        if args.experiment == "throughput":
            rows.append(
                (
                    params["system"],
                    params["message_size"],
                    spec.seed,
                    round(result.output["throughput_kops"], 1),
                )
            )
        else:
            rows.append(
                (
                    params["system"],
                    params["message_size"],
                    spec.seed,
                    round(stats["mean"], 1),
                    round(stats["p99"], 1),
                )
            )
    columns = (
        ["system", "size_B", "seed", "Kops/s"]
        if args.experiment == "throughput"
        else ["system", "size_B", "seed", "avg_us", "p99_us"]
    )
    print(format_table(f"Sweep ({mode}, {elapsed:.1f}s wall)", columns, rows))
    if args.experiment == "latency":
        merged = merge_run_stats(results)
        print(
            f"merged over {len(results)} runs: n={merged.count} "
            f"avg={merged.mean:.1f}us p50={merged.p50:.1f}us "
            f"p95={merged.p95:.1f}us p99={merged.p99:.1f}us"
        )
    return 0


def _cmd_trace(args) -> int:
    from .obs import (
        op_timeline,
        render_report,
        tracing,
        validate_chrome_trace,
        write_chrome_trace,
    )

    with tracing(capacity=args.capacity) as tracer:
        result = microbench_latency(
            args.system,
            primitive=args.primitive,
            message_size=args.size,
            n_cores=args.cores,
            n_ops=args.ops,
            stress_per_core=args.stress,
            pipeline_depth=min(4, args.ops),
            rounds=512,
            seed=args.seed,
        )
    stats = result.stats
    print(
        f"{args.system} {args.primitive} {args.size}B x{args.ops}: "
        f"p50={stats.p50:.1f}us p99={stats.p99:.1f}us "
        f"({len(tracer)} trace records, {tracer.dispatches} dispatches)"
    )
    if args.out != "-":
        document = write_chrome_trace(tracer, args.out)
        problems = validate_chrome_trace(document)
        if problems:
            print(f"exported {args.out} has schema problems:", file=sys.stderr)
            for problem in problems[:10]:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print(
            f"wrote {args.out} ({len(document['traceEvents'])} events) — "
            "open in chrome://tracing or https://ui.perfetto.dev"
        )
    print()
    print(render_report(tracer))
    round_ = args.op if args.op is not None else args.ops // 2
    print()
    print(op_timeline(tracer, round_, primitive=args.primitive))
    if result.errors:
        print(f"errors: {result.errors[:3]}", file=sys.stderr)
        return 1
    return 0


def _cmd_txn(args) -> int:
    from .txn import run_txn_workload

    if args.ycsb:
        return _cmd_txn_ycsb(args)
    report = run_txn_workload(
        seed=args.seed,
        mode=args.mode,
        n_groups=args.groups,
        n_txns=args.txns,
        write_skew_pairs=args.write_skew_pairs,
        retry=args.retry or "none",
        install=args.install,
    )
    print(report.render())
    if report.errors:
        return 1
    if args.mode == "ssi":
        # The acceptance gate: a serializable mode must never commit an
        # anomalous history, and must catch at least one write skew
        # whenever the generator runs.
        if report.anomaly != "none":
            return 1
        if args.write_skew_pairs > 0 and report.aborts_ssi < 1:
            return 1
    return 0


def _cmd_txn_ycsb(args) -> int:
    from .txn import run_ycsb

    kwargs = {}
    if args.groups != 2:  # YCSB default is 4 groups, the scale-out shape
        kwargs["n_groups"] = args.groups
    report = run_ycsb(
        mixes=[mix.strip() for mix in args.mixes.split(",") if mix.strip()],
        seed=args.seed,
        workers=args.workers,
        retry=args.retry or "backoff",
        install=args.install,
        **kwargs,
    )
    print(report.render())
    return 0 if report.ok else 1


def _cmd_chaos(args) -> int:
    from .faults import SCENARIOS, render_matrix, run_matrix

    if args.list_scenarios:
        rows = [(name, spec.description) for name, spec in SCENARIOS.items()]
        rows.append(
            ("generated", "seeded random fault plan (the sweep fuzzer)")
        )
        print(format_table("Chaos scenarios", ["scenario", "what it injects"], rows))
        return 0
    if args.replay is not None:
        return _chaos_replay(args)
    if args.sweep is not None:
        return _chaos_sweep(args)
    names = args.scenario
    if names:
        unknown = [name for name in names if name not in SCENARIOS]
        if unknown:
            print(f"unknown scenario(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
    if args.trace:
        from .obs import tracing, write_chrome_trace

        with tracing() as tracer:
            reports = run_matrix(args.seed, names)
        document = write_chrome_trace(tracer, args.trace)
        fault_events = sum(
            1 for event in document["traceEvents"] if event.get("cat") == "fault"
        )
        print(f"wrote {args.trace} ({fault_events} fault events)", file=sys.stderr)
    else:
        reports = run_matrix(args.seed, names)
    print(render_matrix(reports))
    return 0 if all(report.passed for report in reports) else 1


def _chaos_sweep(args) -> int:
    from .faults import SCENARIOS, SWEEP_SCENARIOS, run_sweep, shrink_failure
    from .faults.sweep import GENERATED, replay_command, run_generated

    names = args.scenario or list(SWEEP_SCENARIOS)
    known = set(SCENARIOS) | {GENERATED}
    unknown = [name for name in names if name not in known]
    if unknown:
        print(f"unknown scenario(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    if args.sabotage is not None:
        # Sabotage applies to generated runs only; route around the
        # pool so the hook stays a plain function argument.
        from .bench.parallel import RunResult, derive_seed, normalize_result
        from .faults.sweep import build_report, make_sweep_specs

        specs = make_sweep_specs(args.seed, args.sweep, names)
        results = []
        for spec in specs:
            if spec.experiment == GENERATED:
                output = run_generated(spec.seed, sabotage=args.sabotage)
            else:
                output = SCENARIOS[spec.experiment].run(spec.seed)
            results.append(
                RunResult(spec=spec, output=normalize_result(output))
            )
        report = build_report(args.seed, args.sweep, names, results)
    else:
        report = run_sweep(
            args.seed, args.sweep, scenarios=names, workers=args.workers
        )
    print(report.render())
    if report.ok:
        return 0
    # Shrink every failing generated seed to a minimal replayable plan.
    for failure in report.failures:
        if failure["scenario"] != GENERATED:
            print(
                f"replay: python -m repro chaos "
                f"--scenario {failure['scenario']} --seed {failure['seed']}"
            )
            continue
        shrunk = shrink_failure(failure["seed"], sabotage=args.sabotage)
        if shrunk is None:
            print(
                f"seed {failure['seed']}: failure did not reproduce "
                "standalone (suspect cross-run state)"
            )
            continue
        keep, shrunk_report = shrunk
        print()
        print(
            f"shrunk seed {failure['seed']} to {len(keep)} event(s): "
            + "; ".join(shrunk_report.notes)
        )
        print(
            "replay: "
            + replay_command(failure["seed"], keep, sabotage=args.sabotage)
        )
    return 1


def _chaos_replay(args) -> int:
    from .faults import run_replay

    report = run_replay(args.replay, sabotage=args.sabotage)
    print(report.render())
    return 0 if report.passed else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": lambda: _cmd_list(),
        "latency": lambda: _cmd_latency(args),
        "throughput": lambda: _cmd_throughput(args),
        "fig2": lambda: _cmd_fig2(args),
        "fig11": lambda: _cmd_fig11(args),
        "fig12": lambda: _cmd_fig12(args),
        "sweep": lambda: _cmd_sweep(args),
        "bench": lambda: _cmd_bench(args),
        "trace": lambda: _cmd_trace(args),
        "chaos": lambda: _cmd_chaos(args),
        "txn": lambda: _cmd_txn(args),
    }
    return handlers[args.command]()


if __name__ == "__main__":
    sys.exit(main())
