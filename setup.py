"""Legacy shim so `pip install -e . --no-use-pep517` works offline.

The environment has no `wheel` package, which the PEP 517 editable
path requires; metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
