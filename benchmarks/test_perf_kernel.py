"""Perf suite smoke: the microbenchmarks run and the physics holds.

This is the CI face of ``repro.bench.perfsuite``. It asserts only
**correctness properties** — benchmarks complete, simulated results are
sane and deterministic, serial and parallel execution agree — never
wall-clock thresholds, which are noise on shared runners. The timing
numbers themselves go to ``BENCH_kernel.json`` via
``python -m repro.bench.perfsuite``, where humans (and future PRs)
compare them with hardware context attached.
"""

from repro.bench.perfsuite import (
    bench_fig8,
    bench_gwrite,
    bench_kernel_events,
    bench_parallel_scaling,
    bench_txn_commit,
    run_suite,
)


def test_kernel_events_benchmark_runs():
    result = bench_kernel_events(n_procs=20, events_per_proc=200)
    assert result["events"] == 4000
    assert result["events_per_sec"] > 0
    # Virtual end time is a simulation result: identical on every
    # machine, every run. 20 tickers with delays 1 + (i % 13) ending
    # after 200 yields — the slowest finishes at 200 * 13 ns.
    assert result["final_now"] == 2600


def test_kernel_events_fast_and_generic_agree():
    fast = bench_kernel_events(n_procs=10, events_per_proc=100)
    generic = bench_kernel_events(
        n_procs=10, events_per_proc=100, fast_dispatch=False
    )
    assert fast["final_now"] == generic["final_now"]
    assert fast["events"] == generic["events"]


def test_gwrite_benchmark_runs():
    result = bench_gwrite(total_bytes=1 << 19, message_size=4096)
    assert result["ops"] == 128
    assert result["sim_kops"] > 0


def test_fig8_benchmark_preserves_simulated_latency():
    result = bench_fig8(n_ops=60)
    # The simulated p50 is a model output, not a host-speed number:
    # HyperLoop's 1 KB gWRITE sits in the single-digit-microsecond
    # band (§6.1) regardless of how fast the simulator itself runs.
    assert 2.0 < result["p50_us"] < 50.0
    assert result["p99_us"] >= result["p50_us"]


def test_parallel_scaling_benchmark_is_exact():
    result = bench_parallel_scaling(workers=2, n_runs=2, n_ops=40)
    assert result["identical"], "pooled sweep diverged from serial reference"
    assert result["runs"] == 2


def test_txn_commit_benchmark_upholds_isolation():
    result = bench_txn_commit(n_txns=24)
    # Simulated outcomes, identical on every machine: the full default
    # mix commits, the write-skew pairs cost their SSI aborts, and the
    # committed history stays anomaly-free (asserted inside the bench).
    assert result["commits"] > 0
    assert result["aborts_ssi"] >= 1
    assert 0.0 < result["abort_rate"] < 0.5
    assert result["commits_per_sec"] > 0


def test_run_suite_quick_produces_complete_entry():
    entry = run_suite(quick=True, repeats=1)
    for key in (
        "kernel_events_per_sec",
        "gwrite_ops_per_sec",
        "fig8_wall_s",
        "fig8_p50_us",
        "txn_commits_per_sec",
        "txn_abort_rate",
        "cpu_count",
        "python",
    ):
        assert key in entry, f"suite entry missing {key}"
    assert entry["kernel_events_per_sec"] > 0
