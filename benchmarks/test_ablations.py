"""Ablations on the design choices DESIGN.md calls out.

1. **Interleaved gFLUSH on/off** — the latency price of §4.2's
   durability mechanism (a 0-byte READ per hop).
2. **Chain vs fan-out** (§7) — the NIC/egress load-balancing argument
   for chain replication.
3. **Tenancy sweep** — the §2.2 motivation curve: how each data path
   degrades as co-located CPU load grows.
4. **Ring sizing** — what happens when the pre-posted round budget is
   too small for the offered load (replenishment becomes visible).
"""

from conftest import scaled

from repro.baseline import FanoutGroup
from repro.bench import LatencyRecorder, format_table, run_until
from repro.bench.experiments import _build_group, _spawn_background, microbench_latency
from repro.core import HyperFanoutGroup, HyperLoopGroup
from repro.hw import Cluster
from repro.sim import Simulator

N_OPS = scaled(2000, 400)


class TestFlushAblation:
    def test_gflush_interleaving_cost(self, benchmark):
        """Durability costs a little latency (one extra hop-ordered
        READ) but nothing close to the CPU path's overhead."""

        def run():
            durable = microbench_latency(
                "hyperloop", "gwrite", 1024, n_ops=N_OPS, durable=True,
                stress_per_core=6,
            )
            volatile = microbench_latency(
                "hyperloop", "gwrite", 1024, n_ops=N_OPS, durable=False,
                stress_per_core=6,
            )
            return durable.stats, volatile.stats

        durable, volatile = benchmark.pedantic(run, rounds=1, iterations=1)
        print()
        print(
            format_table(
                "Ablation: interleaved gFLUSH (us)",
                ["variant", "avg", "p99"],
                [
                    ("durable (gWRITE+gFLUSH)", round(durable.mean, 2), round(durable.p99, 2)),
                    ("volatile (gWRITE only)", round(volatile.mean, 2), round(volatile.p99, 2)),
                ],
            )
        )
        assert volatile.mean <= durable.mean, "flushing cannot be free"
        assert durable.mean < volatile.mean + 20, (
            "gFLUSH should cost microseconds, not tens"
        )
        benchmark.extra_info["flush_cost_us"] = round(durable.mean - volatile.mean, 2)


class TestFanoutAblation:
    def _run(self, topology, group_size, n_ops):
        sim = Simulator(seed=51)
        cluster = Cluster(sim, n_hosts=group_size + 1, n_cores=8)
        if topology == "nic-chain":
            group = _build_group(
                "hyperloop", cluster[0], cluster.hosts[1:], 1 << 16, rounds=512
            )
        elif topology == "cpu-fanout":
            group = FanoutGroup(
                cluster[0], cluster.hosts[1:], region_size=1 << 16, rounds=512
            )
        else:  # nic-fanout: the §7 sketch, offloaded coordination
            group = HyperFanoutGroup(
                cluster[0], cluster.hosts[1:], region_size=1 << 16, rounds=512,
                client_mode="polling", client_core=0,
            )
        recorder = LatencyRecorder()
        done = {}

        def client(task):
            group.write_local(0, b"z" * 4096)
            for _ in range(n_ops):
                start = sim.now
                yield from group.gwrite(task, 0, 4096)
                recorder.record(sim.now - start)
            done["y"] = True

        cluster[0].os.spawn(client, "client", pinned_core=1)
        run_until(sim, lambda: "y" in done, deadline_ms=120_000)
        primary_tx = group.replicas[0].nic.port.tx_bytes
        other_tx = max(
            host.nic.port.tx_bytes for host in group.replicas[1:]
        )
        return recorder.stats(), primary_tx, other_tx

    def test_chain_load_balances_the_wire(self, benchmark):
        """§7: chain replication spreads egress across replicas; both
        fan-out variants (CPU-coordinated, and the NIC-offloaded
        sketch) concentrate ~(g-1)x the bytes on the primary NIC."""
        group_size = 5
        n_ops = scaled(600, 150)

        def run():
            return {
                "nic-chain": self._run("nic-chain", group_size, n_ops),
                "nic-fanout": self._run("nic-fanout", group_size, n_ops),
                "cpu-fanout": self._run("cpu-fanout", group_size, n_ops),
            }

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = []
        for topology, (stats, primary_tx, other_tx) in results.items():
            rows.append(
                (
                    topology,
                    round(stats.mean, 1),
                    primary_tx // 1024,
                    other_tx // 1024,
                    round(primary_tx / max(other_tx, 1024), 2),
                )
            )
        print()
        print(
            format_table(
                f"Ablation: chain vs fan-out (group={group_size}, 4KB writes)",
                ["topology", "avg_us", "primary_tx_KB", "max_other_tx_KB", "imbalance"],
                rows,
            )
        )
        _, chain_primary, chain_other = results["nic-chain"]
        chain_imbalance = chain_primary / max(chain_other, 1024)
        for topology in ("nic-fanout", "cpu-fanout"):
            _, fanout_primary, fanout_other = results[topology]
            fanout_imbalance = fanout_primary / max(fanout_other, 1024)
            assert fanout_imbalance > 2 * chain_imbalance, (
                f"{topology} should concentrate egress on the primary: "
                f"{fanout_imbalance:.2f} vs {chain_imbalance:.2f}"
            )
            benchmark.extra_info[f"{topology}_imbalance"] = round(fanout_imbalance, 2)
        benchmark.extra_info["chain_imbalance"] = round(chain_imbalance, 2)
        # The NIC-offloaded fan-out is still fast (no primary CPU).
        assert results["nic-fanout"][0].mean < results["cpu-fanout"][0].mean * 2


class TestTenancySweep:
    def test_latency_vs_colocation(self, benchmark):
        """The §2.2 curve: Naïve degrades with co-located load,
        HyperLoop does not."""
        levels = [0, 2, 6, 10]
        n_ops = scaled(1500, 400)

        def run():
            out = {}
            for system in ("hyperloop", "naive-event"):
                for level in levels:
                    result = microbench_latency(
                        system, "gwrite", 1024, n_ops=n_ops, stress_per_core=level
                    )
                    out[(system, level)] = result.stats
            return out

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [
            (
                system,
                level,
                round(results[(system, level)].mean, 1),
                round(results[(system, level)].p99, 1),
            )
            for system in ("hyperloop", "naive-event")
            for level in levels
        ]
        print()
        print(
            format_table(
                "Ablation: latency vs tenants-per-core (us)",
                ["system", "tenants/core", "avg", "p99"],
                rows,
            )
        )
        # HyperLoop: load-invariant (within 3x from idle to 10:1).
        hyper_idle = results[("hyperloop", 0)]
        hyper_loaded = results[("hyperloop", 10)]
        assert hyper_loaded.p99 < 3 * max(hyper_idle.p99, 10)
        # Naive: at least a 10x average blowup from idle to 10:1.
        naive_idle = results[("naive-event", 0)]
        naive_loaded = results[("naive-event", 10)]
        assert naive_loaded.mean > 10 * naive_idle.mean
        benchmark.extra_info["naive_degradation"] = round(
            naive_loaded.mean / naive_idle.mean, 1
        )


class TestRingSizing:
    def test_small_rings_expose_replenishment(self, benchmark):
        """With a generously sized ring the replica CPU's refill work
        never gates an operation; with a tiny ring the pipeline
        periodically stalls on maintenance (visible in the tail)."""
        n_ops = scaled(1200, 300)

        def run_with_rounds(rounds):
            sim = Simulator(seed=52)
            cluster = Cluster(sim, n_hosts=4, n_cores=8)
            _spawn_background(cluster, cluster.hosts[1:], 6)
            group = HyperLoopGroup(
                cluster[0],
                cluster.hosts[1:],
                region_size=1 << 16,
                rounds=rounds,
                client_mode="polling",
                client_core=0,
                name="g",
            )
            recorder = LatencyRecorder()
            done = {}

            def client(task):
                group.write_local(0, b"r" * 512)
                for _ in range(n_ops):
                    start = sim.now
                    yield from group.gwrite(task, 0, 512)
                    recorder.record(sim.now - start)
                done["y"] = True

            cluster[0].os.spawn(client, "client", pinned_core=1)
            run_until(sim, lambda: "y" in done, deadline_ms=300_000)
            return recorder.stats()

        def run():
            return {rounds: run_with_rounds(rounds) for rounds in (16, 4096)}

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [
            (rounds, round(stats.mean, 1), round(stats.p99, 1), round(stats.maximum, 0))
            for rounds, stats in results.items()
        ]
        print()
        print(
            format_table(
                "Ablation: pre-posted round budget (HyperLoop, us)",
                ["rounds", "avg", "p99", "max"],
                rows,
            )
        )
        small, big = results[16], results[4096]
        assert big.maximum < 100, "big rings should never stall"
        assert small.maximum > big.maximum, (
            "tiny rings must show replenishment stalls"
        )
        benchmark.extra_info["stall_max_us_small_ring"] = round(small.maximum, 0)


class TestConsistencySpectrum:
    """§7: the primitives compose into weaker models too.

    * full ACID     — durable append + locked execution per txn
    * RAMCloud-like — replicated + executed, durability primitive off
    * eventual      — durable append only; execution off the critical
                      path (higher read staleness, lower write latency)
    * cache-like    — non-durable replication only (Memcache/Redis
                      semantics)
    """

    def test_weaker_models_are_cheaper(self, benchmark):
        from repro.storage import TransactionManager

        n_ops = scaled(600, 150)

        def run_mode(mode):
            sim = Simulator(seed=53)
            cluster = Cluster(sim, n_hosts=4, n_cores=8)
            _spawn_background(cluster, cluster.hosts[1:], 4)
            durable = mode in ("acid", "eventual")
            group = HyperLoopGroup(
                cluster[0], cluster.hosts[1:], region_size=1 << 18,
                rounds=2048, durable=durable,
                client_mode="polling", client_core=0, name="g",
            )
            manager = TransactionManager(group)
            recorder = LatencyRecorder()
            done = {}

            def client(task):
                payload = b"s" * 512
                for index in range(n_ops):
                    start = sim.now
                    if mode in ("acid", "ramcloud"):
                        yield from manager.transact(task, [(index % 64 * 512, payload)])
                    elif mode == "eventual":
                        yield from manager.transact(
                            task, [(index % 64 * 512, payload)], execute=False
                        )
                        if index % 32 == 31:
                            yield from manager.locks.wr_lock(task, 1)
                            yield from manager.drain(task)
                            yield from manager.locks.wr_unlock(task, 1)
                            recorder.record(sim.now - start)
                            continue
                    else:
                        group.write_local(0, payload)
                        yield from group.gwrite(task, 0, 512)
                    recorder.record(sim.now - start)
                done["y"] = True

            cluster[0].os.spawn(client, "client", pinned_core=1)
            run_until(sim, lambda: "y" in done, deadline_ms=300_000)
            return recorder.stats()

        def run():
            return {
                mode: run_mode(mode)
                for mode in ("acid", "ramcloud", "eventual", "cache")
            }

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [
            (mode, round(stats.mean, 1), round(stats.p99, 1))
            for mode, stats in results.items()
        ]
        print()
        print(
            format_table(
                "Ablation: consistency spectrum (update latency, us)",
                ["mode", "avg", "p99"],
                rows,
            )
        )
        # The spectrum orders as expected on average.
        assert results["cache"].mean < results["eventual"].mean
        assert results["eventual"].mean < results["acid"].mean
        assert results["ramcloud"].mean <= results["acid"].mean * 1.1
        benchmark.extra_info["acid_avg"] = round(results["acid"].mean, 1)
        benchmark.extra_info["cache_avg"] = round(results["cache"].mean, 1)


class TestQpScalability:
    """§7's second fan-out argument: "the scalability of the RDMA
    NICs decreases with the number of active write-QPs. Chain
    replication has a good load balancing property where there is at
    most one active write-QP per active partition as opposed to
    several per partition such as in fan-out protocols."

    With many partitions per server, the fan-out primary's working set
    of QP contexts exceeds the on-NIC cache and every message pays a
    context fetch; the chain's per-NIC working set stays resident.
    """

    def _run(self, topology, n_partitions, ops_per_partition):
        from repro.core.fanout import HyperFanoutGroup
        from repro.hw import NicParams

        sim = Simulator(seed=54)
        cluster = Cluster(
            sim, n_hosts=5, n_cores=8,
            nic_params=NicParams(qp_cache_entries=64),
        )
        groups = []
        for index in range(n_partitions):
            if topology == "chain":
                group = HyperLoopGroup(
                    cluster[0], cluster.hosts[1:5], region_size=1 << 14,
                    rounds=32, primitives=("gwrite",), name=f"p{index}",
                )
            else:
                group = HyperFanoutGroup(
                    cluster[0], cluster.hosts[1:5], region_size=1 << 14,
                    rounds=32, name=f"p{index}",
                )
            groups.append(group)
        recorder = LatencyRecorder()
        state = {"running": n_partitions}

        def client(group):
            def body(task):
                group.write_local(0, b"q" * 1024)
                for _ in range(ops_per_partition):
                    start = sim.now
                    yield from group.gwrite(task, 0, 1024)
                    recorder.record(sim.now - start)
                state["running"] -= 1

            return body

        for index, group in enumerate(groups):
            cluster[0].os.spawn(client(group), f"c{index}", pinned_core=index % 8)
        run_until(sim, lambda: state["running"] == 0, deadline_ms=120_000)
        primary_misses = cluster.hosts[1].nic.qp_cache_misses
        return recorder.stats(), primary_misses

    def test_many_partitions_thrash_the_fanout_primary(self, benchmark):
        n_partitions = 24
        ops = scaled(60, 20)

        def run():
            return {
                "chain": self._run("chain", n_partitions, ops),
                "fanout": self._run("fanout", n_partitions, ops),
            }

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [
            (topology, round(stats.mean, 1), round(stats.p99, 1), misses)
            for topology, (stats, misses) in results.items()
        ]
        print()
        print(
            format_table(
                f"Ablation: QP-context scalability ({n_partitions} partitions)",
                ["topology", "avg_us", "p99_us", "head-NIC ctx misses"],
                rows,
            )
        )
        chain_stats, chain_misses = results["chain"]
        fanout_stats, fanout_misses = results["fanout"]
        assert fanout_misses > 3 * max(chain_misses, 1), (
            f"fan-out should thrash the primary's QP cache: "
            f"{fanout_misses} vs {chain_misses}"
        )
        benchmark.extra_info["fanout_misses"] = fanout_misses
        benchmark.extra_info["chain_misses"] = chain_misses


class TestRepairCost:
    """§5.1: membership change pauses writes for a catch-up copy.

    Measures the pause (catch-up READ + chain rebuild + image
    re-installation) as the region grows — the cost model behind the
    paper's "writes are paused for a short duration" and its pointer
    at chain-replication recovery research for faster control paths.
    """

    def _repair_time(self, region_size):
        from repro.storage import ChainRepair

        sim = Simulator(seed=55)
        cluster = Cluster(sim, n_hosts=6, n_cores=4)
        group = HyperLoopGroup(
            cluster[0], cluster.hosts[1:4], region_size=region_size,
            rounds=32, name="g0",
        )
        counter = {"n": 0}

        def factory(members):
            counter["n"] += 1
            return HyperLoopGroup(
                cluster[0], members, region_size=region_size,
                rounds=32, name=f"g{counter['n']}",
            )

        repair = ChainRepair(cluster[0], group, factory)
        done = {}

        def body(task):
            group.write_local(0, b"x" * 512)
            yield from group.gwrite(task, 0, 512)
            start = sim.now
            yield from repair.repair(task, failed_index=1, replacement=cluster.hosts[4])
            done["pause_ns"] = sim.now - start

        cluster[0].os.spawn(body, "coordinator")
        run_until(sim, lambda: "pause_ns" in done, deadline_ms=120_000)
        return done["pause_ns"]

    def test_pause_scales_with_region(self, benchmark):
        sizes = [1 << 16, 1 << 18, 1 << 20]

        def run():
            return {size: self._repair_time(size) for size in sizes}

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [
            (size >> 10, round(pause / 1e6, 2)) for size, pause in results.items()
        ]
        print()
        print(
            format_table(
                "Ablation: chain-repair write pause vs region size",
                ["region_KB", "pause_ms"],
                rows,
            )
        )
        # Monotone in region size, and a 1MB region repairs in well
        # under a second of simulated time.
        pauses = list(results.values())
        assert pauses[0] < pauses[1] < pauses[2]
        assert pauses[-1] < 1_000 * 1e6
        benchmark.extra_info["pause_ms_1mb"] = round(pauses[-1] / 1e6, 2)


class TestReadScaling:
    """§5: "reads can be served from more than one replica to meet
    demand" — HyperLoop keeps replicas strongly consistent cheaply, so
    read traffic can fan out across all of them instead of pinning on
    the head.

    Measures aggregate read throughput with all readers hitting one
    replica vs spreading across three.
    """

    def _run(self, spread, n_readers=6, reads_per_reader=None):
        from repro.storage import ReplicatedDocStore

        reads = reads_per_reader or scaled(300, 80)
        sim = Simulator(seed=56)
        cluster = Cluster(sim, n_hosts=4, n_cores=8)
        group = HyperLoopGroup(
            cluster[0], cluster.hosts[1:4], region_size=1 << 20,
            rounds=64, client_mode="polling", client_core=0, name="g",
        )
        store = ReplicatedDocStore(group, parse_ns=2_000, name="docs")
        state = {"running": n_readers, "loaded": False, "t0": 0, "t1": 0}

        def loader(task):
            for index in range(30):
                yield from store.insert(
                    task, f"doc{index:04d}".encode(), {"f": b"\x66" * 1024}
                )
            state["loaded"] = True
            state["t0"] = sim.now

        def reader(reader_index):
            def body(task):
                while not state["loaded"]:
                    yield from task.sleep(50_000)
                replica = reader_index % 3 if spread else 0
                for index in range(reads):
                    doc_id = f"doc{(index * 7 + reader_index) % 30:04d}".encode()
                    yield from store.read(task, doc_id, replica=replica)
                state["running"] -= 1
                if state["running"] == 0:
                    state["t1"] = sim.now

            return body

        cluster[0].os.spawn(loader, "load", pinned_core=1)
        for index in range(n_readers):
            cluster[0].os.spawn(reader(index), f"rd{index}", pinned_core=2 + index % 6)
        run_until(sim, lambda: state["running"] == 0, deadline_ms=120_000)
        elapsed = state["t1"] - state["t0"]
        total_reads = n_readers * reads
        return total_reads / (elapsed / 1e9)

    def test_spreading_reads_scales_throughput(self, benchmark):
        def run():
            return {
                "head only": self._run(spread=False),
                "all replicas": self._run(spread=True),
            }

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [
            (mode, round(rate / 1000, 1)) for mode, rate in results.items()
        ]
        print()
        print(
            format_table(
                "Ablation: read fan-out across consistent replicas",
                ["read target", "Kreads/s"],
                rows,
            )
        )
        assert results["all replicas"] > 1.5 * results["head only"], results
        benchmark.extra_info["scaling"] = round(
            results["all replicas"] / results["head only"], 2
        )
