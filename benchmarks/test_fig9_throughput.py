"""Figure 9: gWRITE throughput and critical-path CPU vs message size.

Paper result (§6.1): HyperLoop sustains the same throughput as
Naïve-RDMA across 1KB-64KB messages (both ultimately wire-limited),
but consumes almost no replica CPU, while Naïve-RDMA burns a full
polling core ("utilizes a whole CPU core ... almost no CPUs are
consumed in the critical path" for HyperLoop).

Shape assertions:
* throughput parity: HyperLoop within 2x of Naïve at every size
  (the paper shows near-identical curves);
* throughput decreases as messages grow (wire-bound regime);
* replica CPU: HyperLoop < 2% of a core; Naïve-polling > 50%.
"""

from conftest import scaled

from repro.bench import format_table
from repro.bench.experiments import MESSAGE_SIZES_FIG9, microbench_throughput

TOTAL_BYTES = scaled(32 << 20, 8 << 20)


def test_fig9_throughput_and_cpu(benchmark):
    def run():
        out = {}
        for system in ("naive-polling", "hyperloop"):
            for size in MESSAGE_SIZES_FIG9:
                out[(system, size)] = microbench_throughput(
                    system, message_size=size, total_bytes=TOTAL_BYTES
                )
                assert not out[(system, size)].errors
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for system in ("naive-polling", "hyperloop"):
        for size in MESSAGE_SIZES_FIG9:
            result = results[(system, size)]
            rows.append(
                (
                    system,
                    size,
                    round(result.throughput_kops, 1),
                    f"{result.replica_cpu_fraction * 100:.1f}%",
                )
            )
    print()
    print(
        format_table(
            "Figure 9: gWRITE throughput + critical-path CPU, group size 3",
            ["system", "size_B", "Kops/s", "replica CPU"],
            rows,
        )
    )
    for size in MESSAGE_SIZES_FIG9:
        hyper = results[("hyperloop", size)]
        naive = results[("naive-polling", size)]
        ratio = hyper.throughput_kops / naive.throughput_kops
        assert ratio > 0.5, f"throughput collapsed at {size}B: {ratio:.2f}"
        assert hyper.replica_cpu_fraction < 0.02, (
            f"HyperLoop replica CPU {hyper.replica_cpu_fraction:.3f} at {size}B"
        )
        assert naive.replica_cpu_fraction > 0.50, (
            f"Naive-polling replica CPU only {naive.replica_cpu_fraction:.3f}"
        )
    # Wire-bound regime: bigger messages, fewer ops/s.
    assert (
        results[("hyperloop", 65536)].throughput_kops
        < results[("hyperloop", 1024)].throughput_kops
    )
    benchmark.extra_info["hyperloop_cpu_4k"] = results[("hyperloop", 4096)].replica_cpu_fraction
    benchmark.extra_info["naive_cpu_4k"] = results[("naive-polling", 4096)].replica_cpu_fraction
