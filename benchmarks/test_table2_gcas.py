"""Table 2: latency of gCAS, HyperLoop vs Naïve-RDMA.

Paper numbers::

                 Average   95th pct   99th pct
    Naïve-RDMA   539 us    3928 us    11886 us
    HyperLoop    10 us     13 us      14 us

(= 53.9× average, 302× p95, 849× p99 reductions.)

Shape assertions: HyperLoop's average stays in the tens of
microseconds with a flat tail; Naïve-RDMA's average is ≥ 5× worse and
its p99 ≥ 50× worse.
"""

from conftest import scaled

from repro.bench import format_table
from repro.bench.experiments import microbench_latency

N_OPS = scaled(3000, 600)


def test_table2_gcas_latency(benchmark):
    def run():
        out = {}
        for system in ("naive-polling", "hyperloop"):
            result = microbench_latency(
                system, primitive="gcas", message_size=64, n_ops=N_OPS,
                stress_per_core=6,
            )
            assert not result.errors, result.errors
            out[system] = result.stats
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    naive, hyper = results["naive-polling"], results["hyperloop"]
    rows = [
        ("Naive-RDMA", round(naive.mean, 1), round(naive.p95, 1), round(naive.p99, 1)),
        ("HyperLoop", round(hyper.mean, 1), round(hyper.p95, 1), round(hyper.p99, 1)),
        ("paper Naive", 539, 3928, 11886),
        ("paper HyperLoop", 10, 13, 14),
    ]
    print()
    print(
        format_table(
            "Table 2: gCAS latency (us)",
            ["system", "avg", "p95", "p99"],
            rows,
        )
    )
    print(
        f"reductions: avg {naive.mean / hyper.mean:.1f}x (paper 53.9x), "
        f"p95 {naive.p95 / hyper.p95:.0f}x (paper 302x), "
        f"p99 {naive.p99 / hyper.p99:.0f}x (paper 849x)"
    )
    # Shape: HyperLoop flat and fast; Naïve slow on average, awful tail.
    assert hyper.mean < 60
    assert hyper.p99 < 5 * hyper.mean
    assert naive.mean > 5 * hyper.mean
    assert naive.p99 > 50 * hyper.p99
    benchmark.extra_info["avg_reduction"] = round(naive.mean / hyper.mean, 1)
    benchmark.extra_info["p99_reduction"] = round(naive.p99 / hyper.p99, 1)
