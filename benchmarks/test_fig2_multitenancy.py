"""Figure 2: the §2.2 motivation — vanilla MongoDB under multi-tenancy.

(a) With more replica-sets co-located on 3 servers, latency and
    context switches rise and the average/p99 gap widens.
(b) With the replica-set count fixed (18) and fewer cores enabled,
    latency and context switches rise; more cores means fewer context
    switches and lower latency.

Shape assertions follow the paper's reading of the figure: latency and
context switches increase monotonically-ish with replica-sets, and
decrease with core count.
"""

from conftest import scaled

from repro.bench import format_table
from repro.bench.experiments import fig2_mongodb_motivation

OPS_PER_SET = scaled(40, 15)
LOAD_DOCS = scaled(15, 8)
REPLICA_SET_COUNTS = [9, 18, 27]
CORE_COUNTS = [4, 8, 16]


def test_fig2a_latency_vs_replica_sets(benchmark):
    def run():
        return {
            count: fig2_mongodb_motivation(
                count, n_cores=16, ops_per_set=OPS_PER_SET, load_docs=LOAD_DOCS
            )
            for count in REPLICA_SET_COUNTS
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    max_switches = max(result.context_switches for result in results.values())
    rows = [
        (
            count,
            round(result.stats.mean / 1000, 2),
            round(result.stats.p95 / 1000, 2),
            round(result.stats.p99 / 1000, 2),
            round(result.context_switches / max_switches, 2),
        )
        for count, result in results.items()
    ]
    print()
    print(
        format_table(
            "Figure 2(a): MongoDB latency vs replica-sets (16 cores)",
            ["sets", "avg_ms", "p95_ms", "p99_ms", "norm_ctx_switches"],
            rows,
        )
    )
    low, high = results[REPLICA_SET_COUNTS[0]], results[REPLICA_SET_COUNTS[-1]]
    assert high.stats.mean > low.stats.mean, "latency should rise with tenancy"
    assert high.context_switches > low.context_switches
    # The avg <-> p99 gap widens under load.
    assert high.stats.p99 / high.stats.mean >= 1.5
    benchmark.extra_info["avg_ms_27_sets"] = round(high.stats.mean / 1000, 2)


def test_fig2b_latency_vs_cores(benchmark):
    def run():
        return {
            cores: fig2_mongodb_motivation(
                18, n_cores=cores, ops_per_set=OPS_PER_SET, load_docs=LOAD_DOCS
            )
            for cores in CORE_COUNTS
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    max_switches = max(result.context_switches for result in results.values())
    rows = [
        (
            cores,
            round(result.stats.mean / 1000, 2),
            round(result.stats.p99 / 1000, 2),
            round(result.context_switches / max_switches, 2),
        )
        for cores, result in results.items()
    ]
    print()
    print(
        format_table(
            "Figure 2(b): MongoDB latency vs cores (18 replica-sets)",
            ["cores", "avg_ms", "p99_ms", "norm_ctx_switches"],
            rows,
        )
    )
    few, many = results[CORE_COUNTS[0]], results[CORE_COUNTS[-1]]
    assert few.stats.mean > many.stats.mean, "fewer cores -> higher latency"
    assert few.context_switches > many.context_switches, (
        "fewer cores -> more context switches"
    )
    benchmark.extra_info["avg_ms_4_cores"] = round(few.stats.mean / 1000, 2)
    benchmark.extra_info["avg_ms_16_cores"] = round(many.stats.mean / 1000, 2)
