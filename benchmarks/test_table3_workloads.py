"""Table 3: YCSB workload operation mixes.

Not a performance table — it defines the workloads of §6.2. This
bench generates long operation streams from our YCSB implementation
and verifies every mix matches the paper's percentages.
"""

from collections import Counter

from repro.bench import format_table
from repro.workloads import WORKLOADS, YcsbWorkload

N_OPS = 40_000

EXPECTED = {
    # workload: (read, update, insert, modify, scan) in percent
    "A": (50, 50, 0, 0, 0),
    "B": (95, 5, 0, 0, 0),
    "D": (95, 0, 5, 0, 0),
    "E": (0, 0, 5, 0, 95),
    "F": (50, 0, 0, 50, 0),
}


def test_table3_workload_mixes(benchmark):
    def run():
        observed = {}
        for name in EXPECTED:
            workload = YcsbWorkload(WORKLOADS[name], record_count=10_000, seed=3)
            counts = Counter(op.kind for op in workload.operations(N_OPS))
            observed[name] = tuple(
                round(100 * counts.get(kind, 0) / N_OPS, 1)
                for kind in ("read", "update", "insert", "modify", "scan")
            )
        return observed

    observed = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (name, *observed[name])
        for name in EXPECTED
    ]
    print()
    print(
        format_table(
            "Table 3: generated YCSB operation mixes (%)",
            ["workload", "read", "update", "insert", "modify", "scan"],
            rows,
        )
    )
    for name, expected in EXPECTED.items():
        for got, want in zip(observed[name], expected):
            assert abs(got - want) < 1.0, (name, observed[name], expected)
