"""Shared configuration for the paper-reproduction benchmarks.

Each benchmark regenerates one table or figure from the paper's §6
(plus the §2.2 motivation figure and ablations). Set
``REPRO_BENCH_QUICK=1`` to run shrunken configurations (~4x faster,
noisier percentiles).
"""

import os

import pytest

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))


def scaled(full: int, quick: int) -> int:
    """Pick an operation count based on the quick flag."""
    return quick if QUICK else full


@pytest.fixture(scope="session")
def quick_mode():
    return QUICK
