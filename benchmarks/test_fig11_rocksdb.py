"""Figure 11: replicated RocksDB update latency, three data paths.

Paper result (§6.2): under heavy co-location (10:1 application
threads to cores), HyperLoop's tail is 5.7× lower than event-based
Naïve-RDMA and 24.2× lower than polling-based Naïve-RDMA — and,
notably, the *event* variant beats the *polling* variant because
"multiple tenants polling simultaneously increases the contention".

Shape assertions:
* HyperLoop p99 below both baselines' p99 by ≥ 3×;
* polling's p99 above event's p99 (the paper's inversion);
* HyperLoop average below both baselines' averages.
"""

from conftest import scaled

from repro.bench import format_table
from repro.bench.experiments import fig11_rocksdb

N_OPS = scaled(1500, 400)
SYSTEMS = ["naive-event", "naive-polling", "hyperloop"]


def test_fig11_rocksdb_update_latency(benchmark):
    def run():
        return {
            system: fig11_rocksdb(system, n_ops=N_OPS, stress_per_core=10)
            for system in SYSTEMS
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            system,
            round(stats.mean, 1),
            round(stats.p95, 1),
            round(stats.p99, 1),
        )
        for system, stats in results.items()
    ]
    print()
    print(
        format_table(
            "Figure 11: replicated RocksDB update latency (us), YCSB-A",
            ["system", "avg", "p95", "p99"],
            rows,
        )
    )
    hyper = results["hyperloop"]
    event = results["naive-event"]
    polling = results["naive-polling"]
    assert hyper.p99 * 3 < event.p99, (hyper.p99, event.p99)
    assert hyper.p99 * 3 < polling.p99, (hyper.p99, polling.p99)
    assert hyper.mean < event.mean and hyper.mean < polling.mean
    # The paper's inversion: under 10:1 co-location, polling's tail is
    # worse than event-driven handling.
    assert polling.p99 > event.p99, (polling.p99, event.p99)
    print(
        f"p99 reductions: vs event {event.p99 / hyper.p99:.1f}x (paper 5.7x), "
        f"vs polling {polling.p99 / hyper.p99:.1f}x (paper 24.2x)"
    )
    benchmark.extra_info["p99_vs_event"] = round(event.p99 / hyper.p99, 1)
    benchmark.extra_info["p99_vs_polling"] = round(polling.p99 / hyper.p99, 1)
