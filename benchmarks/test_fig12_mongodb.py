"""Figure 12: MongoDB latency across YCSB A/B/D/E/F, native vs HyperLoop.

Paper result (§6.2): HyperLoop reduces insert/update latency by up to
79% and narrows the average-to-99th-percentile gap by up to 81%;
read-dominated workloads (B, D) show much smaller absolute latencies
in both systems, with the residual latency dominated by the client's
MongoDB software stack (query parsing).

Shape assertions:
* write-heavy workloads (A, F): HyperLoop average ≥ 40% below native;
* HyperLoop narrows the p99/avg gap on write-heavy workloads;
* read-heavy workloads are cheaper than write-heavy ones in both
  systems (reads are one-sided in this architecture).
"""

from conftest import scaled

from repro.bench import format_table
from repro.bench.experiments import fig12_mongodb

N_OPS = scaled(450, 150)
WORKLOADS_RUN = ["A", "B", "D", "E", "F"]


def test_fig12_mongodb_ycsb(benchmark):
    def run():
        out = {}
        for name in WORKLOADS_RUN:
            out[("native", name)] = fig12_mongodb(False, name, n_ops=N_OPS)
            out[("hyperloop", name)] = fig12_mongodb(True, name, n_ops=N_OPS)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name in WORKLOADS_RUN:
        for system in ("native", "hyperloop"):
            stats = results[(system, name)]
            rows.append(
                (
                    name,
                    system,
                    round(stats.mean / 1000, 2),
                    round(stats.p95 / 1000, 2),
                    round(stats.p99 / 1000, 2),
                )
            )
    print()
    print(
        format_table(
            "Figure 12: MongoDB latency (ms) per YCSB workload",
            ["workload", "system", "avg_ms", "p95_ms", "p99_ms"],
            rows,
        )
    )
    for name in ("A", "F"):
        native = results[("native", name)]
        hyper = results[("hyperloop", name)]
        reduction = 1 - hyper.mean / native.mean
        assert reduction > 0.40, f"workload {name}: avg reduction only {reduction:.0%}"
        native_gap = native.p99 / native.mean
        hyper_gap = hyper.p99 / hyper.mean
        assert hyper_gap < native_gap * 1.2, (
            f"workload {name}: gap not narrowed ({hyper_gap:.1f} vs {native_gap:.1f})"
        )
    # Read-heavy workloads are cheaper than write-heavy in both systems.
    for system in ("native", "hyperloop"):
        assert results[(system, "B")].mean < results[(system, "A")].mean
    reduction_a = 1 - results[("hyperloop", "A")].mean / results[("native", "A")].mean
    print(f"workload A average reduction: {reduction_a:.0%} (paper: up to 79%)")
    benchmark.extra_info["avg_reduction_A"] = round(reduction_a, 3)
