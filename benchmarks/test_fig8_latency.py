"""Figure 8: latency of gWRITE and gMEMCPY vs message size.

Paper result (§6.1): with a replication group of 3 under background
CPU load, Naïve-RDMA shows 99th-percentile latencies orders of
magnitude above its average, while HyperLoop's average and tail stay
within microseconds of each other across all message sizes —
"99th percentile latency can be reduced by up to 801.8×" (gWRITE) and
848× (gMEMCPY).

Shape assertions:
* HyperLoop p99 stays below 10× its own average at every size.
* Naïve-RDMA p99 is ≥ 50× HyperLoop's p99 at every size.
* HyperLoop latency grows with message size (wire time) but stays
  in the tens of microseconds.
"""

from conftest import scaled

from repro.bench import format_table
from repro.bench.experiments import MESSAGE_SIZES_FIG8, microbench_latency

N_OPS = scaled(3000, 600)
STRESS = 6


def _sweep(primitive):
    rows = []
    results = {}
    for system in ("naive-polling", "hyperloop"):
        for size in MESSAGE_SIZES_FIG8:
            result = microbench_latency(
                system,
                primitive=primitive,
                message_size=size,
                n_ops=N_OPS,
                stress_per_core=STRESS,
            )
            assert not result.errors, result.errors
            results[(system, size)] = result.stats
            rows.append(
                (
                    system,
                    size,
                    round(result.stats.mean, 1),
                    round(result.stats.p95, 1),
                    round(result.stats.p99, 1),
                )
            )
    return rows, results


def _assert_shape(results):
    for size in MESSAGE_SIZES_FIG8:
        hyperloop = results[("hyperloop", size)]
        naive = results[("naive-polling", size)]
        assert hyperloop.p99 < 10 * hyperloop.mean, (
            f"HyperLoop tail not flat at {size}B: {hyperloop}"
        )
        assert naive.p99 > 50 * hyperloop.p99, (
            f"tail gap too small at {size}B: naive {naive.p99} vs "
            f"hyperloop {hyperloop.p99}"
        )
        assert hyperloop.mean < 100, f"HyperLoop avg too high at {size}B"


def test_fig8a_gwrite_latency(benchmark):
    def run():
        return _sweep("gwrite")

    rows, results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            "Figure 8(a): gWRITE latency (us), group size 3",
            ["system", "size_B", "avg", "p95", "p99"],
            rows,
        )
    )
    _assert_shape(results)
    worst = max(
        results[("naive-polling", s)].p99 / results[("hyperloop", s)].p99
        for s in MESSAGE_SIZES_FIG8
    )
    print(f"max p99 reduction: {worst:.0f}x (paper: up to 801.8x)")
    benchmark.extra_info["max_p99_reduction"] = round(worst, 1)


def test_fig8b_gmemcpy_latency(benchmark):
    def run():
        return _sweep("gmemcpy")

    rows, results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            "Figure 8(b): gMEMCPY latency (us), group size 3",
            ["system", "size_B", "avg", "p95", "p99"],
            rows,
        )
    )
    _assert_shape(results)
    worst = max(
        results[("naive-polling", s)].p99 / results[("hyperloop", s)].p99
        for s in MESSAGE_SIZES_FIG8
    )
    print(f"max p99 reduction: {worst:.0f}x (paper: up to 848x)")
    benchmark.extra_info["max_p99_reduction"] = round(worst, 1)
