"""Figure 10: 99th-percentile gWRITE latency vs group size (3, 5, 7).

Paper result (§6.1): "With HyperLoop, there is no significant
performance degradation as the group size increases, while with
Naïve-RDMA, 99th percentile latency increases by up to 2.97×", and
Naïve's tail is far above HyperLoop's at every group size.

Shape assertions:
* Naïve p99 ≥ 20× HyperLoop p99 at every (group, size) point;
* HyperLoop's p99 grows sub-linearly in group size (a longer chain
  adds only NIC/wire hops — microseconds);
* HyperLoop average latency varies little across group sizes
  (the "smaller variance of average latency" observation).
"""

from conftest import scaled

from repro.bench import format_table
from repro.bench.experiments import microbench_latency

N_OPS = scaled(2500, 500)
GROUP_SIZES = [3, 5, 7]
SIZES = [128, 1024, 8192]


def test_fig10_group_size_scaling(benchmark):
    def run():
        out = {}
        for system in ("naive-polling", "hyperloop"):
            for group_size in GROUP_SIZES:
                for size in SIZES:
                    result = microbench_latency(
                        system,
                        primitive="gwrite",
                        message_size=size,
                        group_size=group_size,
                        n_ops=N_OPS,
                        stress_per_core=6,
                    )
                    assert not result.errors, result.errors
                    out[(system, group_size, size)] = result.stats
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            system,
            group_size,
            size,
            round(results[(system, group_size, size)].mean, 1),
            round(results[(system, group_size, size)].p99, 1),
        )
        for system in ("naive-polling", "hyperloop")
        for group_size in GROUP_SIZES
        for size in SIZES
    ]
    print()
    print(
        format_table(
            "Figure 10: gWRITE p99 latency (us) vs group size",
            ["system", "group", "size_B", "avg", "p99"],
            rows,
        )
    )
    for group_size in GROUP_SIZES:
        for size in SIZES:
            hyper = results[("hyperloop", group_size, size)]
            naive = results[("naive-polling", group_size, size)]
            assert naive.p99 > 20 * hyper.p99, (group_size, size, naive.p99, hyper.p99)
    # HyperLoop: going 3 -> 7 replicas costs microseconds, not a blowup.
    for size in SIZES:
        small = results[("hyperloop", 3, size)]
        large = results[("hyperloop", 7, size)]
        assert large.p99 < 4 * small.p99, (size, small.p99, large.p99)
        assert abs(large.mean - small.mean) < 60, "HyperLoop avg should barely move"
    hyper_growth = results[("hyperloop", 7, 1024)].p99 / results[("hyperloop", 3, 1024)].p99
    naive_growth = results[("naive-polling", 7, 1024)].p99 / results[("naive-polling", 3, 1024)].p99
    print(
        f"p99 growth 3->7 replicas: hyperloop {hyper_growth:.2f}x, "
        f"naive {naive_growth:.2f}x (paper: naive up to 2.97x)"
    )
    benchmark.extra_info["hyperloop_p99_growth"] = round(hyper_growth, 2)
    benchmark.extra_info["naive_p99_growth"] = round(naive_growth, 2)
