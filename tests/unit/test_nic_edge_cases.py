"""Edge-case unit tests for the RNIC engines."""

import pytest

from repro.hw import AccessFlags, Cluster
from repro.hw.wqe import FLAG_SGL, FLAG_SIGNALED, FLAG_VALID, Opcode, Wqe
from repro.sim import MS, Simulator, US


@pytest.fixture
def rig():
    sim = Simulator(seed=19)
    cluster = Cluster(sim, n_hosts=2, n_cores=2)
    a, b = cluster[0], cluster[1]
    qp_a = a.dev.create_qp(name="a")
    qp_b = b.dev.create_qp(name="b")
    qp_a.connect(qp_b)
    buf_a = a.memory.alloc(8192)
    buf_b = b.memory.alloc(8192)
    mr_b = b.dev.reg_mr(buf_b, AccessFlags.ALL_REMOTE)
    return sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_b


class TestZeroLength:
    def test_zero_length_write_completes(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_b = rig
        qp_a.post_send(
            Wqe(
                opcode=Opcode.WRITE,
                flags=FLAG_SIGNALED,
                length=0,
                local_addr=buf_a.addr,
                remote_addr=buf_b.addr,
                rkey=mr_b.rkey,
            )
        )
        sim.run(until=1 * MS)
        cqes = qp_a.send_cq.poll()
        assert len(cqes) == 1 and cqes[0].ok

    def test_zero_length_send_consumes_recv(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_b = rig
        qp_b.post_recv(Wqe(local_addr=buf_b.addr, length=64, wr_id=5))
        qp_a.post_send(Wqe(opcode=Opcode.SEND, length=0, local_addr=buf_a.addr))
        sim.run(until=1 * MS)
        cqes = qp_b.recv_cq.poll()
        assert len(cqes) == 1 and cqes[0].wr_id == 5 and cqes[0].byte_len == 0


class TestGatherWrite:
    def test_sgl_gather_on_write(self, rig):
        """WRITE can gather from an SGE table too (used by the tail's
        result-map ack)."""
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_b = rig
        buf_a.write(0, b"AA")
        buf_a.write(512, b"BBB")
        table = a.dev.sge_table_bytes([(buf_a.addr, 2), (buf_a.addr + 512, 3)])
        buf_a.write(4096, table)
        qp_a.post_send(
            Wqe(
                opcode=Opcode.WRITE,
                flags=FLAG_SGL | FLAG_SIGNALED,
                length=2,
                local_addr=buf_a.addr + 4096,
                remote_addr=buf_b.addr,
                rkey=mr_b.rkey,
            )
        )
        sim.run(until=1 * MS)
        assert qp_a.send_cq.poll()[0].ok
        assert b.nic.cache.read(buf_b.addr, 5) == b"AABBB"


class TestOrderingAcrossOpcodes:
    def test_write_then_read_then_send_execute_in_order(self, rig):
        """RC in-order execution at the responder: the READ's flush
        covers the preceding WRITE; the SEND observes both."""
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_b = rig
        buf_a.write(0, b"ordered!")
        qp_b.post_recv(Wqe(local_addr=buf_b.addr + 4096, length=64))
        qp_a.post_send(
            Wqe(
                opcode=Opcode.WRITE,
                length=8,
                local_addr=buf_a.addr,
                remote_addr=buf_b.addr,
                rkey=mr_b.rkey,
            )
        )
        qp_a.post_send(
            Wqe(
                opcode=Opcode.READ,
                length=0,
                local_addr=buf_a.addr + 100,
                remote_addr=buf_b.addr,
                rkey=mr_b.rkey,
            )
        )
        qp_a.post_send(
            Wqe(opcode=Opcode.SEND, flags=FLAG_SIGNALED, length=8, local_addr=buf_a.addr)
        )
        sim.run(until=1 * MS)
        # By the time the SEND completed, the WRITE must be durable
        # (the 0-byte READ between them flushed the cache).
        assert qp_a.send_cq.completions_total >= 1
        b.nic.cache.drop()
        assert buf_b.read(0, 8) == b"ordered!"


class TestCacheDrainScheduling:
    def test_single_drain_scheduled_for_burst(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_b = rig
        for index in range(10):
            qp_a.post_send(
                Wqe(
                    opcode=Opcode.WRITE,
                    length=8,
                    local_addr=buf_a.addr,
                    remote_addr=buf_b.addr + index * 8,
                    rkey=mr_b.rkey,
                )
            )
        sim.run(until=1 * MS)
        assert not b.nic.cache.dirty  # lazy drain happened
        assert buf_b.read(0, 8) == bytes(8)

    def test_unknown_qp_message_raises(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_b = rig
        from repro.hw.nic import _WireMsg

        with pytest.raises(RuntimeError, match="unknown QP"):
            b.nic._on_wire("a", _WireMsg("write", 1, 9999))


class TestHostWriteCoherence:
    def test_host_write_not_resurrected_by_cache(self, rig):
        """A CPU store over a region the NIC recently wrote must not
        be undone by later cache activity (driver reposting rings)."""
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_b = rig
        qp_a.post_send(
            Wqe(
                opcode=Opcode.WRITE,
                length=8,
                local_addr=buf_a.addr,
                remote_addr=buf_b.addr,
                rkey=mr_b.rkey,
            )
        )
        sim.run(until=10 * US)  # delivered, still in the volatile window
        b.nic.host_write(buf_b.addr, b"CPUWRITE")
        b.nic.cache.drop()  # power-failure-style revert of other entries
        assert buf_b.read(0, 8) == b"CPUWRITE"
