"""Unit tests for failure detection and chain repair (§5.1).

HeartbeatMonitor: beat cadence, suspicion after missed beats, and
wait_for_suspicion. ChainRepair: a failed replica is replaced, the
replacement catches up from a survivor, and the rebuilt chain carries
writes again.
"""

import pytest

from repro.core import HyperLoopGroup
from repro.hw import Cluster
from repro.sim import MS, Simulator
from repro.storage.recovery import ChainRepair, HeartbeatMonitor


def make_cluster(n_hosts=5, seed=3):
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, n_hosts=n_hosts, n_cores=4)
    return sim, cluster


class TestHeartbeatMonitor:
    def test_beats_arrive_every_interval(self):
        sim, cluster = make_cluster(n_hosts=3)
        monitor = HeartbeatMonitor(
            cluster[0], cluster.hosts[1:], interval=1 * MS, miss_threshold=3
        )
        sim.run(until=5 * MS + 500_000)
        for index in range(2):
            last = monitor.last_beat(index)
            assert last > 0, f"replica {index} never beat"
            # The newest beat is at most one interval (plus scheduling
            # slack) old.
            assert sim.now - last < 2 * MS

    def test_healthy_replicas_not_suspected(self):
        sim, cluster = make_cluster(n_hosts=3)
        monitor = HeartbeatMonitor(
            cluster[0], cluster.hosts[1:], interval=1 * MS, miss_threshold=3
        )
        sim.run(until=10 * MS)
        assert not monitor.suspected(0)
        assert not monitor.suspected(1)

    def test_stopped_replica_suspected_within_bound(self):
        sim, cluster = make_cluster(n_hosts=3)
        monitor = HeartbeatMonitor(
            cluster[0], cluster.hosts[1:], interval=1 * MS, miss_threshold=3
        )
        sim.run(until=5 * MS)
        monitor.stop_beats(0)
        stopped_at = sim.now
        sim.run(until=stopped_at + 2 * MS)
        assert not monitor.suspected(0), "suspected before the threshold"
        sim.run(until=stopped_at + 6 * MS)
        assert monitor.suspected(0)
        assert not monitor.suspected(1)

    def test_halted_nic_stops_beats(self):
        sim, cluster = make_cluster(n_hosts=3)
        monitor = HeartbeatMonitor(
            cluster[0], cluster.hosts[1:], interval=1 * MS, miss_threshold=3
        )
        sim.run(until=5 * MS)
        cluster[1].nic.stall()
        sim.run(until=12 * MS)
        assert monitor.suspected(0)
        assert not monitor.suspected(1)
        # The beat task survives the stall: beats resume after the NIC
        # comes back, clearing the suspicion.
        cluster[1].nic.resume()
        sim.run(until=15 * MS)
        assert not monitor.suspected(0)

    def test_wait_for_suspicion_returns_failed_index(self):
        sim, cluster = make_cluster(n_hosts=4)
        monitor = HeartbeatMonitor(
            cluster[0], cluster.hosts[1:], interval=1 * MS, miss_threshold=3
        )
        observed = {}

        def body(task):
            index = yield from monitor.wait_for_suspicion(task)
            observed["index"] = index
            observed["at"] = sim.now

        cluster[0].os.spawn(body, "detector")
        sim.run(until=4 * MS)
        assert "index" not in observed, "suspicion with every replica healthy"
        monitor.stop_beats(1)
        sim.run(until=20 * MS)
        assert observed["index"] == 1
        # Detection within miss_threshold + slack intervals of the stop.
        assert observed["at"] - 4 * MS <= 6 * MS


class TestChainRepair:
    def test_repair_replaces_failed_replica(self):
        sim, cluster = make_cluster(n_hosts=5)
        client = cluster[0]
        replicas = cluster.hosts[1:4]
        spare = cluster[4]
        region_size = 1 << 13
        group = HyperLoopGroup(
            client, replicas, region_size=region_size, rounds=16, name="rep"
        )

        def factory(members):
            return HyperLoopGroup(
                client, members, region_size=region_size, rounds=16, name="rep2"
            )

        repairer = ChainRepair(client, group, factory)
        payload = bytes(range(1, 251)) * 4  # 1000 bytes
        outcome = {}

        def body(task):
            group.write_local(512, payload)
            yield from group.gwrite(task, 512, len(payload))
            # Mid-chain replica dies; the repair copies from replica 0.
            cluster[2].crash()
            new_group = yield from repairer.repair(task, 1, spare, copy_from=0)
            # The rebuilt chain carries writes again.
            new_group.write_local(0, b"post-repair")
            yield from new_group.gwrite(task, 0, 11)
            outcome["group"] = new_group

        client.os.spawn(body, "repair-driver")
        sim.run(until=100 * MS)
        new_group = outcome["group"]
        assert repairer.repairs == 1
        assert repairer.group is new_group
        assert not repairer.paused
        assert [host.name for host in new_group.replicas] == [
            "host1",
            "host3",
            "host4",
        ]
        # Catch-up installed the survivor's bytes everywhere, including
        # on the replacement, and post-repair writes replicated.
        for replica in range(3):
            assert new_group.read_replica(replica, 512, len(payload)) == payload
            assert new_group.read_replica(replica, 0, 11) == b"post-repair"
        assert not new_group.errors

    def test_repair_keeps_region_size(self):
        sim, cluster = make_cluster(n_hosts=5)
        client = cluster[0]
        group = HyperLoopGroup(
            client, cluster.hosts[1:4], region_size=1 << 13, rounds=16, name="sz"
        )

        def bad_factory(members):
            return HyperLoopGroup(
                client, members, region_size=1 << 12, rounds=16, name="sz2"
            )

        repairer = ChainRepair(client, group, bad_factory)
        outcome = {}

        def body(task):
            try:
                yield from repairer.repair(task, 1, cluster[4], copy_from=0)
            except ValueError as error:
                outcome["error"] = str(error)

        client.os.spawn(body, "repair-driver")
        sim.run(until=100 * MS)
        assert "region size" in outcome["error"]

    def test_old_group_stops_after_repair(self):
        sim, cluster = make_cluster(n_hosts=5)
        client = cluster[0]
        group = HyperLoopGroup(
            client, cluster.hosts[1:4], region_size=1 << 13, rounds=16, name="st"
        )

        def factory(members):
            return HyperLoopGroup(
                client, members, region_size=1 << 13, rounds=16, name="st2"
            )

        repairer = ChainRepair(client, group, factory)

        def body(task):
            cluster[2].crash()
            yield from repairer.repair(task, 1, cluster[4], copy_from=0)

        client.os.spawn(body, "repair-driver")
        sim.run(until=100 * MS)
        assert repairer.repairs == 1
        assert group._stopping, "retired group should stop its background tasks"
        assert not repairer.group._stopping
