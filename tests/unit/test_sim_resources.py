"""Unit tests for repro.sim.resources."""

import pytest

from repro.sim import Resource, Simulator, Store, TokenBucket


class TestResource:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), capacity=0)

    def test_acquire_within_capacity_is_immediate(self):
        sim = Simulator()
        resource = Resource(sim, capacity=2)
        assert resource.acquire().triggered
        assert resource.acquire().triggered
        assert resource.in_use == 2

    def test_acquire_beyond_capacity_blocks_until_release(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        order = []

        def holder():
            yield resource.acquire()
            order.append(("holder-in", sim.now))
            yield sim.timeout(100)
            resource.release()

        def waiter():
            yield sim.timeout(1)
            grant = resource.acquire()
            assert not grant.triggered
            yield grant
            order.append(("waiter-in", sim.now))
            resource.release()

        sim.spawn(holder())
        sim.spawn(waiter())
        sim.run()
        assert order == [("holder-in", 0), ("waiter-in", 100)]
        assert resource.in_use == 0

    def test_fifo_granting(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        order = []

        def worker(label, arrive):
            yield sim.timeout(arrive)
            yield resource.acquire()
            order.append(label)
            yield sim.timeout(10)
            resource.release()

        for label, arrive in [("a", 0), ("b", 1), ("c", 2)]:
            sim.spawn(worker(label, arrive))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_release_when_idle_raises(self):
        with pytest.raises(RuntimeError):
            Resource(Simulator()).release()

    def test_queue_length(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        resource.acquire()
        resource.acquire()
        resource.acquire()
        assert resource.queue_length == 2


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")
        request = store.get()
        assert request.triggered and request.value == "x"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)

        def getter():
            item = yield store.get()
            return (sim.now, item)

        def putter():
            yield sim.timeout(30)
            store.put("late")

        process = sim.spawn(getter())
        sim.spawn(putter())
        sim.run()
        assert process.value == (30, "late")

    def test_fifo_item_order(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(5):
            store.put(i)
        got = [store.get().value for _ in range(5)]
        assert got == [0, 1, 2, 3, 4]

    def test_getters_served_in_order(self):
        sim = Simulator()
        store = Store(sim)
        results = []

        def getter(label):
            item = yield store.get()
            results.append((label, item))

        sim.spawn(getter("first"))
        sim.spawn(getter("second"))
        sim.call_in(10, store.put, "a")
        sim.call_in(20, store.put, "b")
        sim.run()
        assert results == [("first", "a"), ("second", "b")]

    def test_try_get_and_peek(self):
        sim = Simulator()
        store = Store(sim)
        assert store.try_get() is None
        assert store.peek() is None
        store.put(1)
        store.put(2)
        assert store.peek() == 1
        assert store.try_get() == 1
        assert len(store) == 1


class TestTokenBucket:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(Simulator(), bytes_per_ns=0)

    def test_single_message_serialization_time(self):
        sim = Simulator()
        link = TokenBucket(sim, bytes_per_ns=1.0)  # 1 byte/ns = 8 Gbps

        def proc():
            yield link.transmit(1000)
            return sim.now

        assert sim.run_process(proc()) == 1000

    def test_messages_queue_behind_each_other(self):
        sim = Simulator()
        link = TokenBucket(sim, bytes_per_ns=1.0)
        done_times = []

        def proc():
            first = link.transmit(1000)
            second = link.transmit(500)
            yield first
            done_times.append(sim.now)
            yield second
            done_times.append(sim.now)

        sim.run_process(proc())
        assert done_times == [1000, 1500]

    def test_extra_delay_does_not_occupy_serializer(self):
        sim = Simulator()
        link = TokenBucket(sim, bytes_per_ns=1.0)
        done_times = {}

        def proc():
            first = link.transmit(100, extra_delay=1000)
            second = link.transmit(100)
            yield second
            done_times["second"] = sim.now
            yield first
            done_times["first"] = sim.now

        sim.run_process(proc())
        # Second finishes serializing at 200; first lands at 100+1000.
        assert done_times == {"second": 200, "first": 1100}

    def test_idle_gap_resets_start_time(self):
        sim = Simulator()
        link = TokenBucket(sim, bytes_per_ns=2.0)

        def proc():
            yield link.transmit(200)  # done at 100
            yield sim.timeout(400)  # now = 500
            yield link.transmit(200)  # done at 600
            return sim.now

        assert sim.run_process(proc()) == 600

    def test_zero_bytes_completes_immediately(self):
        sim = Simulator()
        link = TokenBucket(sim, bytes_per_ns=1.0)

        def proc():
            yield link.transmit(0)
            return sim.now

        assert sim.run_process(proc()) == 0
