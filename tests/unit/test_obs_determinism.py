"""S4: tracing must be observationally invisible to the simulation.

Two directions, both bit-for-bit:

* **Tracing off** — a simulator built with the tracer dark runs the
  original loop, so event order matches the seed kernel exactly (the
  fast-vs-generic harness from ``test_kernel_perf`` stands in for the
  pre-obs kernel, same as it stood in for the pre-rewrite one).
* **Tracing on** — ``run_traced`` pops the same heap entries in the
  same order, never schedules events, never consumes randomness: the
  event interleaving and full experiment outputs (stats *and* raw
  samples) are identical to an untraced run of the same seed.
"""

import dataclasses

import pytest

from repro.bench.experiments import microbench_latency
from repro.obs import TRACER, tracing
from repro.sim import Event, Simulator


@pytest.fixture(autouse=True)
def _tracer_off():
    TRACER.disable()
    TRACER.reset()
    yield
    TRACER.disable()
    TRACER.reset()


def mixed_run(fast_dispatch=True, until=None, chunk=None):
    """Timeouts + triggered events + callbacks: every dispatch shape
    the traced loop must reproduce. Returns the resume log + final now."""
    sim = Simulator(seed=11, fast_dispatch=fast_dispatch)
    log = []
    gate = Event(sim)

    def waiter(name):
        value = yield gate
        log.append((sim.now, name, value))
        yield sim.timeout(4)
        log.append((sim.now, name, "done"))

    def ticker(index):
        rng = sim.rng(f"tick/{index}")
        for step in range(25):
            log.append((sim.now, index, step))
            yield sim.timeout(rng.randrange(0, 6))

    for name in ("w0", "w1"):
        sim.spawn(waiter(name))
    for index in range(8):
        sim.spawn(ticker(index))
    sim.call_at(15, lambda: log.append((sim.now, "callback", None)))
    sim.call_at(20, lambda: gate.succeed("open"))
    if chunk:
        while sim._queue and (until is None or sim.now < until):
            sim.run(until=min(sim.now + chunk, until) if until else sim.now + chunk)
            if until is None and not sim._queue:
                break
    else:
        sim.run(until=until)
    return log, sim.now


def latency_output(**overrides):
    """Normalized output of a tiny Fig-8 slice (stats + raw samples)."""
    params = dict(
        system="hyperloop",
        message_size=256,
        n_ops=20,
        stress_per_core=1,
        pipeline_depth=2,
        n_cores=4,
        rounds=256,
        seed=7,
    )
    params.update(overrides)
    system = params.pop("system")
    return dataclasses.asdict(microbench_latency(system, **params))


class TestTracingOffMatchesSeedKernel:
    def test_fast_dispatch_matches_generic_with_obs_merged(self):
        # Same acceptance bar the hot-path rewrite had to clear: with
        # the observability layer merged but dark, the fast and generic
        # loops still interleave identically.
        assert mixed_run(True) == mixed_run(False)

    def test_repeated_runs_identical(self):
        assert mixed_run() == mixed_run()


class TestTracingOnIsInvisible:
    def test_event_order_identical_traced_vs_untraced(self):
        untraced = mixed_run()
        with tracing():
            traced = mixed_run()
        assert traced == untraced

    def test_generic_dispatch_path_also_identical(self):
        untraced = mixed_run(fast_dispatch=False)
        with tracing():
            traced = mixed_run(fast_dispatch=False)
        assert traced == untraced

    def test_until_semantics_identical(self):
        untraced = mixed_run(until=17)
        with tracing():
            traced = mixed_run(until=17)
        assert traced == untraced
        # until beyond the last event advances the clock identically
        untraced_far = mixed_run(until=10_000)
        with tracing():
            traced_far = mixed_run(until=10_000)
        assert traced_far == untraced_far
        assert traced_far[1] == 10_000

    def test_chunked_runs_identical(self):
        # run_until()-style repeated run(until=now+chunk) calls: the
        # traced loop must honour the same clock-advance rules.
        untraced = mixed_run(until=120, chunk=7)
        with tracing():
            traced = mixed_run(until=120, chunk=7)
        assert traced == untraced

    def test_record_kernel_off_still_identical(self):
        untraced = mixed_run()
        with tracing(record_kernel=False):
            traced = mixed_run()
        assert traced == untraced


class TestExperimentOutputsUnchanged:
    def test_fig8_slice_identical_traced_vs_untraced(self):
        untraced = latency_output()
        with tracing():
            traced = latency_output()
        # Full structural equality: latency stats, per-op raw samples,
        # error list — nothing about the simulated result may move.
        assert traced == untraced
        assert traced["samples_ns"] == untraced["samples_ns"]
        assert len(traced["samples_ns"]) == traced["stats"]["count"]

    def test_traced_run_actually_traced(self):
        with tracing() as tracer:
            latency_output()
        assert tracer.dispatches > 0
        cats = {rec.cat for rec in tracer.iter_records()}
        assert {"kernel", "nic", "fabric", "scheduler", "group"} <= cats
