"""Unit tests for the trace exporters (``repro.obs.export``).

One small traced HyperLoop latency run is shared across the module;
tests assert the Chrome-trace document is schema-valid, carries every
instrumented subsystem, and that the per-op timeline reconstructs a
gWRITE's replica chain from correlation ids alone.
"""

import json

import pytest

from repro.bench.experiments import microbench_latency
from repro.obs import (
    TRACER,
    op_records,
    op_timeline,
    to_chrome_trace,
    tracing,
    validate_chrome_trace,
    write_chrome_trace,
)

# Mid-run round whose records the correlation tests inspect.
ROUND = 3


@pytest.fixture(scope="module")
def traced():
    """(tracer, result, document) for one tiny traced Fig-8 slice."""
    TRACER.disable()
    TRACER.reset()
    with tracing() as tracer:
        result = microbench_latency(
            "hyperloop",
            message_size=256,
            n_ops=8,
            n_cores=4,
            stress_per_core=1,
            pipeline_depth=2,
            rounds=256,
            seed=7,
        )
    return tracer, result, to_chrome_trace(tracer)


class TestChromeTraceDocument:
    def test_document_is_schema_valid(self, traced):
        _, _, document = traced
        assert validate_chrome_trace(document) == []

    def test_every_instrumented_subsystem_appears(self, traced):
        _, _, document = traced
        cats = {
            event["cat"]
            for event in document["traceEvents"]
            if event["ph"] != "M"
        }
        assert {"kernel", "nic", "fabric", "scheduler", "group"} <= cats

    def test_pid_tid_are_ints_with_metadata_names(self, traced):
        _, _, document = traced
        events = document["traceEvents"]
        assert all(isinstance(e["pid"], int) for e in events)
        assert all(isinstance(e["tid"], int) for e in events)
        process_names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert "fabric" in process_names
        assert "kernel" in process_names
        assert any(name.startswith("group:") for name in process_names)

    def test_complete_spans_carry_durations(self, traced):
        _, _, document = traced
        x_events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert x_events
        assert all(isinstance(e["dur"], (int, float)) for e in x_events)
        # At least one span is a real interval, not a zero-width mark.
        assert any(e["dur"] > 0 for e in x_events)

    def test_timestamps_are_simulated_microseconds(self, traced):
        tracer, _, document = traced
        recs = list(tracer.iter_records())
        events = [e for e in document["traceEvents"] if e["ph"] != "M"]
        assert len(events) == len(recs)
        assert events[0]["ts"] == recs[0].ts / 1000.0

    def test_other_data_carries_counters_and_attribution(self, traced):
        tracer, _, document = traced
        other = document["otherData"]
        assert other["counters"] == tracer.counters
        assert other["dispatches"] == tracer.dispatches
        assert "wall_ns_by_subsystem" in other

    def test_write_round_trips_through_json(self, traced, tmp_path):
        tracer, _, _ = traced
        path = tmp_path / "trace.json"
        written = write_chrome_trace(tracer, str(path))
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(written))
        assert validate_chrome_trace(loaded) == []


class TestOpCorrelation:
    def test_op_records_are_time_ordered_and_correlated(self, traced):
        tracer, _, _ = traced
        records = op_records(tracer, ROUND)
        assert records
        assert [r.ts for r in records] == sorted(r.ts for r in records)
        for rec in records:
            assert (
                rec.args.get("round") == ROUND
                or rec.args.get("wr_id") == ROUND
            )

    def test_timeline_reconstructs_the_replica_chain(self, traced):
        tracer, _, _ = traced
        text = op_timeline(tracer, ROUND, primitive="gwrite")
        # The chain post, the replicated WRITE WQEs, and the completion
        # span must all be on the one-command timeline.
        assert f"round {ROUND} timeline" in text
        assert "chain.post.gwrite" in text
        assert "WRITE" in text
        assert "dur=" in text

    def test_unknown_round_reports_cleanly(self, traced):
        tracer, _, _ = traced
        assert "no traced events" in op_timeline(tracer, 10**9)


class TestValidateChromeTrace:
    def test_rejects_non_dict(self):
        assert validate_chrome_trace([]) != []

    def test_rejects_missing_event_list(self):
        assert validate_chrome_trace({"otherData": {}}) != []

    def test_rejects_bad_phase(self):
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "Z", "name": "x", "pid": 1, "tid": 1}]}
        )
        assert any("bad phase" in p for p in problems)

    def test_rejects_x_without_dur(self):
        problems = validate_chrome_trace(
            {
                "traceEvents": [
                    {
                        "ph": "X",
                        "name": "span",
                        "cat": "nic",
                        "ts": 1.0,
                        "pid": 1,
                        "tid": 1,
                    }
                ]
            }
        )
        assert any("dur" in p for p in problems)

    def test_rejects_string_pids(self):
        problems = validate_chrome_trace(
            {
                "traceEvents": [
                    {
                        "ph": "i",
                        "name": "mark",
                        "cat": "kernel",
                        "ts": 0.0,
                        "pid": "nic0",
                        "tid": 1,
                    }
                ]
            }
        )
        assert any("pid" in p for p in problems)

    def test_accepts_the_empty_document(self):
        assert validate_chrome_trace({"traceEvents": []}) == []
