"""Unit tests for the WAL format (repro.storage.wal)."""

import struct

import pytest

from repro.storage.wal import (
    LogEntry,
    LogRecord,
    RECORD_MAGIC,
    RegionLayout,
    WRAP_MAGIC,
    scan_records,
)


class TestLogRecord:
    def test_roundtrip(self):
        record = LogRecord.make(7, [(100, b"hello"), (200, b"world!")])
        decoded = LogRecord.deserialize(record.serialize())
        assert decoded == record

    def test_serialized_size_matches(self):
        record = LogRecord.make(1, [(0, b"x" * 13)])
        assert len(record.serialize()) == record.serialized_size

    def test_eight_byte_alignment(self):
        for length in range(1, 20):
            record = LogRecord.make(0, [(0, b"a" * length)])
            assert record.serialized_size % 8 == 0

    def test_empty_record(self):
        record = LogRecord.make(3, [])
        decoded = LogRecord.deserialize(record.serialize())
        assert decoded.lsn == 3 and decoded.entries == ()

    def test_bad_magic_returns_none(self):
        raw = bytearray(LogRecord.make(0, [(0, b"data")]).serialize())
        raw[0] ^= 0xFF
        assert LogRecord.deserialize(bytes(raw)) is None

    def test_truncated_body_returns_none(self):
        raw = LogRecord.make(0, [(0, b"data" * 10)]).serialize()
        assert LogRecord.deserialize(raw[: len(raw) - 8]) is None

    def test_torn_write_detected(self):
        """A record whose tail was lost to a power failure must not
        deserialize successfully."""
        raw = bytearray(LogRecord.make(5, [(64, b"p" * 32)]).serialize())
        torn = raw[:20] + bytes(len(raw) - 20)  # tail zeroed
        assert LogRecord.deserialize(bytes(torn)) is None


class TestRegionLayout:
    def test_offsets_are_disjoint_and_ordered(self):
        layout = RegionLayout(wal_size=4096, db_size=8192)
        assert layout.lock_offset < layout.header_offset < layout.wal_offset
        assert layout.wal_offset + layout.wal_size == layout.db_offset
        assert layout.region_size == layout.db_offset + 8192

    def test_wal_position_wraps(self):
        layout = RegionLayout(wal_size=1024, db_size=0x1000)
        assert layout.wal_position(0) == layout.wal_offset
        assert layout.wal_position(1024) == layout.wal_offset
        assert layout.wal_position(1030) == layout.wal_offset + 6

    def test_db_position_bounds(self):
        layout = RegionLayout(wal_size=1024, db_size=100)
        with pytest.raises(ValueError):
            layout.db_position(100)
        assert layout.db_position(99) == layout.db_offset + 99

    def test_contiguous_room(self):
        layout = RegionLayout(wal_size=1000, db_size=0)
        assert layout.contiguous_room(0) == 1000
        assert layout.contiguous_room(900) == 100
        assert layout.contiguous_room(2900) == 100


class TestScan:
    def _wal_with(self, records, wal_size=4096):
        area = bytearray(wal_size)
        cursor = 0
        for record in records:
            raw = record.serialize()
            area[cursor : cursor + len(raw)] = raw
            cursor += len(raw)
        return bytes(area), cursor

    def test_scan_yields_all_records(self):
        records = [LogRecord.make(i, [(i * 10, bytes([i]) * 8)]) for i in range(5)]
        raw, end = self._wal_with(records)
        found = list(scan_records(raw, 0, end, 4096))
        assert [record.lsn for _, record in found] == [0, 1, 2, 3, 4]

    def test_scan_respects_start(self):
        records = [LogRecord.make(i, [(0, b"12345678")]) for i in range(3)]
        raw, end = self._wal_with(records)
        size = records[0].serialized_size
        found = list(scan_records(raw, size, end, 4096))
        assert [record.lsn for _, record in found] == [1, 2]

    def test_scan_stops_at_torn_space(self):
        records = [LogRecord.make(i, [(0, b"abcdefgh")]) for i in range(3)]
        raw, end = self._wal_with(records)
        corrupted = bytearray(raw)
        corrupted[records[0].serialized_size] ^= 0xFF  # wreck record 1
        found = list(scan_records(bytes(corrupted), 0, end, 4096))
        assert [record.lsn for _, record in found] == [0]

    def test_scan_follows_wrap_marker(self):
        wal_size = 256
        area = bytearray(wal_size)
        first = LogRecord.make(0, [(0, b"x" * 100)])
        raw0 = first.serialize()
        area[: len(raw0)] = raw0
        # Next record would not fit; writer stamps WRAP at the tail
        # position and continues at the ring start (a new lap).
        struct.pack_into("<I", area, len(raw0), WRAP_MAGIC)
        second = LogRecord.make(1, [(0, b"y" * 50)])
        logical_second = wal_size  # start of the next lap
        raw1 = second.serialize()
        area[:0] = b""  # no-op; write at position 0 of the ring
        area[0 : len(raw1)] = raw1
        end = logical_second + len(raw1)
        found = list(scan_records(bytes(area), len(raw0), end, wal_size))
        assert [record.lsn for _, record in found] == [1]
