"""Unit tests for the CLI (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_latency_defaults(self):
        args = build_parser().parse_args(["latency"])
        assert args.system == "hyperloop"
        assert args.size == 1024 and args.ops == 2000

    def test_latency_options(self):
        args = build_parser().parse_args(
            ["latency", "--system", "naive-polling", "--size", "4096",
             "--primitive", "gcas", "--ops", "100", "--stress", "2"]
        )
        assert args.system == "naive-polling"
        assert args.primitive == "gcas"
        assert args.size == 4096

    def test_bad_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["latency", "--system", "quantum"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig12_workload_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig12", "--workload", "Z"])


class TestExecution:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "latency" in out and "fig12" in out

    def test_tiny_latency_run(self, capsys):
        code = main(
            ["latency", "--ops", "30", "--stress", "0", "--size", "256"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hyperloop" in out and "p99" in out

    def test_tiny_throughput_run(self, capsys):
        code = main(["throughput", "--mbytes", "1", "--size", "8192"])
        assert code == 0
        assert "Kops/s" in capsys.readouterr().out
