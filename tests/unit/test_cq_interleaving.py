"""CQ consumer interleaving under same-timestamp completion batches.

PR-5's batched dispatch makes same-time completion pushes land in one
kernel batch, and the send engine chains consecutive WQEs inside one
wakeup — regimes where a stale waiter list or a drained-CQE handoff
would first show. These tests drive ``poll``, ``next_event``, and
``threshold_event`` consumers *concurrently* against bursts of
completions arriving at one timestamp, and pin exactly-once delivery
plus batched-vs-generic interleaving identity.
"""

import pytest

from repro.hw.nic import HwCq
from repro.hw.wqe import Cqe, Opcode
from repro.sim import Simulator


def cqe(wr_id=0):
    return Cqe(wr_id=wr_id, opcode=Opcode.SEND)


def _burst(sim, cq, at, wr_ids):
    """Push a batch of completions at one timestamp."""
    for wr_id in wr_ids:
        sim.call_at(at, lambda w=wr_id: cq.push(cqe(w)))


def _mixed_consumers(fast_dispatch):
    """A channel consumer, a threshold waiter, and a periodic poller
    racing over bursts of same-timestamp completions. Returns the full
    observation log."""
    sim = Simulator(seed=9, fast_dispatch=fast_dispatch)
    cq = HwCq(sim, 1, name="shared")
    log = []

    def channel_consumer():
        while cq.completions_total < 9 or cq.entries:
            event = cq.next_event()
            if not event.triggered:
                yield event
            # Wake-then-poll: the value is a count, never a CQE.
            assert not isinstance(event.value, Cqe)
            for entry in cq.poll():
                log.append((sim.now, "chan", entry.wr_id))
            yield sim.timeout(1)

    def threshold_waiter(threshold):
        event = cq.threshold_event(threshold)
        if not event.triggered:
            yield event
        log.append((sim.now, "thresh", threshold, event.value))

    def poller():
        for _ in range(12):
            yield sim.timeout(5)
            for entry in cq.poll():
                log.append((sim.now, "poll", entry.wr_id))

    sim.spawn(channel_consumer())
    sim.spawn(threshold_waiter(3))
    sim.spawn(threshold_waiter(7))
    sim.spawn(poller())
    _burst(sim, cq, at=10, wr_ids=[0, 1, 2])
    _burst(sim, cq, at=10, wr_ids=[3])  # same timestamp, later seq
    _burst(sim, cq, at=25, wr_ids=[4, 5, 6, 7, 8])
    sim.run(until=200)
    log.append(("final", sim.now, cq.completions_total, len(cq.entries)))
    return log


class TestMixedConsumerInterleaving:
    def test_batched_matches_generic(self):
        assert _mixed_consumers(True) == _mixed_consumers(False)

    def test_exactly_once_delivery(self):
        log = _mixed_consumers(True)
        delivered = sorted(e[2] for e in log if e[1] in ("chan", "poll"))
        assert delivered == list(range(9)), "every CQE exactly once"

    def test_thresholds_fire_at_burst_timestamps(self):
        log = _mixed_consumers(True)
        fired = {e[2]: (e[0], e[3]) for e in log if e[1] == "thresh"}
        # Threshold 3 is met inside the t=10 burst, threshold 7 inside
        # the t=25 burst; the value is completions_total at fire time.
        assert fired[3][0] == 10 and fired[3][1] >= 3
        assert fired[7][0] == 25 and fired[7][1] >= 7


class TestSameTimestampChannelRaces:
    def test_two_channel_waiters_one_burst(self):
        """Both waiters wake on a same-timestamp burst; between them
        they claim each CQE exactly once via poll."""

        def run(fast_dispatch):
            sim = Simulator(seed=4, fast_dispatch=fast_dispatch)
            cq = HwCq(sim, 1)
            seen = []

            def consumer(label):
                while len(seen) < 4:
                    event = cq.next_event()
                    if not event.triggered:
                        yield event
                    for entry in cq.poll():
                        seen.append((sim.now, label, entry.wr_id))
                    yield sim.timeout(0)

            sim.spawn(consumer("a"))
            sim.spawn(consumer("b"))
            _burst(sim, cq, at=7, wr_ids=[0, 1])
            _burst(sim, cq, at=7, wr_ids=[2, 3])
            sim.run(until=100)
            return seen

        batched, generic = run(True), run(False)
        assert batched == generic
        assert sorted(wr for _t, _l, wr in batched) == [0, 1, 2, 3]

    def test_threshold_and_channel_same_push(self):
        """One push satisfies a threshold waiter and a channel waiter
        in the same batch; wake order matches the generic loop and the
        channel waiter sees a count, not the CQE."""

        def run(fast_dispatch):
            sim = Simulator(seed=2, fast_dispatch=fast_dispatch)
            cq = HwCq(sim, 1)
            order = []

            def via_threshold():
                event = cq.threshold_event(1)
                if not event.triggered:
                    yield event
                order.append((sim.now, "threshold", event.value))

            def via_channel():
                event = cq.next_event()
                if not event.triggered:
                    yield event
                order.append((sim.now, "channel", event.value))
                order.append((sim.now, "polled", [c.wr_id for c in cq.poll()]))

            sim.spawn(via_threshold())
            sim.spawn(via_channel())
            sim.call_at(12, lambda: cq.push(cqe(42)))
            sim.run(until=50)
            return order

        batched, generic = run(True), run(False)
        assert batched == generic
        assert (12, "polled", [42]) in batched

    def test_pretriggered_next_event_inside_batch(self):
        """A consumer calling next_event in the same timestamp batch
        as the push gets a pre-triggered event with the pending count
        and still claims the entry via poll."""
        sim = Simulator(seed=1)
        result = []

        cq = HwCq(sim, 1)

        def late_consumer():
            yield sim.timeout(12)  # resumes in the t=12 batch
            event = cq.next_event()
            result.append((event.triggered, event.value))
            result.append([c.wr_id for c in cq.poll()])

        sim.call_at(12, lambda: cq.push(cqe(5)))
        sim.spawn(late_consumer())
        sim.run(until=20)
        assert result == [(True, 1), [5]]
