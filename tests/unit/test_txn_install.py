"""Parallel commit installs vs the sequential oracle.

The PR 9 claim: overlapping per-group installs changes *latency*, not
*outcome*. For any fixed serial schedule the two install modes must
produce bit-identical commit results — the same per-key version chains
(writer txid and value, in order), the same commit/abort outcomes for
every transaction, the same durable install counts — while the
parallel path finishes the multi-group schedule in strictly less
virtual time. Raw timestamps are excluded on purpose: the clock
advances differently when installs overlap, and that is the entire
point.
"""

from repro.bench import run_until
from repro.hw import Cluster
from repro.sim import Simulator
from repro.txn import TxnAborted, build_txn_system

KEYS = [f"s{index:02d}".encode() for index in range(9)]


def _drive(sim, cluster, body, until_ms=30_000):
    done = {}

    def wrapper(task):
        done["r"] = yield from body(task)

    task = cluster[0].os.spawn(wrapper, "driver")
    run_until(
        sim, lambda: "r" in done or task.process.triggered, deadline_ms=until_ms
    )
    if task.process.triggered and not task.process.ok:
        raise task.process.value
    return done["r"]


def _run_schedule(install):
    """A fixed serial schedule of multi-group transactions.

    One driver task executes every transaction; interleavings are
    scripted (begin/commit order is explicit), so the outcome is a
    pure function of the schedule — the property that lets us diff the
    two install modes. The schedule covers: a wide init commit across
    all groups, read-modify-writes, a scripted first-committer-wins
    abort, and a scripted write-skew (SSI pivot) abort.
    """
    sim = Simulator(seed=11)
    cluster = Cluster(sim, n_hosts=4, n_cores=4)
    coordinator = build_txn_system(sim, cluster, n_groups=3, install=install)
    assert coordinator.install_mode == install
    outcomes = []
    finished = {}

    def run_txn(task, label, ops):
        txn = yield from coordinator.begin(task)
        try:
            for op in ops:
                if op[0] == "r":
                    yield from coordinator.read(task, txn, op[1])
                else:
                    coordinator.write(txn, op[1], op[2])
            yield from coordinator.commit(task, txn)
            outcomes.append((label, txn.txid, "commit"))
        except TxnAborted as exc:
            outcomes.append((label, txn.txid, f"abort:{exc.reason}"))

    def body(task):
        # Init: one commit spanning all three groups.
        yield from run_txn(
            task, "init", [("w", key, b"v0:" + key) for key in KEYS]
        )
        # Plain multi-group read-modify-writes, serially.
        for round_ in range(3):
            ops = []
            for key in KEYS[round_::3]:
                ops.append(("r", key))
                ops.append(("w", key, f"v{round_ + 1}:".encode() + key))
            yield from run_txn(task, f"rmw{round_}", ops)
        # Scripted first-committer-wins: loser snapshots, winner
        # commits the same key, loser must abort ww-conflict.
        loser = yield from coordinator.begin(task)
        yield from coordinator.read(task, loser, KEYS[0])
        yield from run_txn(
            task, "fcw-winner", [("w", KEYS[0], b"winner"), ("w", KEYS[4], b"winner")]
        )
        try:
            coordinator.write(loser, KEYS[0], b"loser")
            yield from coordinator.commit(task, loser)
            outcomes.append(("fcw-loser", loser.txid, "commit"))
        except TxnAborted as exc:
            outcomes.append(("fcw-loser", loser.txid, f"abort:{exc.reason}"))
        # Scripted write-skew: both sides read both keys, write the
        # other's key; the second committer is the SSI pivot.
        left = yield from coordinator.begin(task)
        right = yield from coordinator.begin(task)
        for txn in (left, right):
            yield from coordinator.read(task, txn, KEYS[1])
            yield from coordinator.read(task, txn, KEYS[2])
        coordinator.write(left, KEYS[2], b"skew-left")
        coordinator.write(right, KEYS[1], b"skew-right")
        for label, txn in (("skew-left", left), ("skew-right", right)):
            try:
                yield from coordinator.commit(task, txn)
                outcomes.append((label, txn.txid, "commit"))
            except TxnAborted as exc:
                outcomes.append((label, txn.txid, f"abort:{exc.reason}"))
        # run_until advances in coarse chunks; the schedule's true
        # duration is the clock when the last commit returned.
        finished["ns"] = sim.now

    _drive(sim, cluster, body)
    chains = {}
    installs = {}
    durable = {}
    for index, store in enumerate(coordinator.stores):
        for key, chain in store.versions.items():
            chains[key] = [(version.txid, version.value) for version in chain]
        installs[index] = store.installs
        for key in KEYS:
            if store.has_slot(key):
                record = store.read_durable_offline(0, key)
                durable[key] = record[1:] if record else None
    errors = [error for store in coordinator.stores for error in store.group.errors]
    return {
        "outcomes": outcomes,
        "chains": chains,
        "installs": installs,
        "durable": durable,
        "counters": coordinator.counters(),
        "anomaly_free": not errors,
        "sim_ns": finished["ns"],
    }


def test_parallel_installs_match_the_sequential_oracle():
    parallel = _run_schedule("parallel")
    sequential = _run_schedule("sequential")

    # The schedule exercised what it claims to.
    kinds = {outcome.split(":")[-1] for _, _, outcome in sequential["outcomes"]}
    assert "ww-conflict" in kinds and "ssi-pivot" in kinds
    assert sequential["counters"]["commits"] >= 5

    # Bit-identical commit outcomes: same per-key version chains
    # (writer txid + value, in order), same outcome per transaction,
    # same durable slot contents, same counters.
    assert parallel["outcomes"] == sequential["outcomes"]
    assert parallel["chains"] == sequential["chains"]
    assert parallel["installs"] == sequential["installs"]
    assert parallel["durable"] == sequential["durable"]
    assert parallel["counters"] == sequential["counters"]
    assert parallel["anomaly_free"] and sequential["anomaly_free"]

    # ...and the latency claim: overlapping the per-group installs
    # finishes the same schedule in strictly less virtual time.
    assert parallel["sim_ns"] < sequential["sim_ns"]


def test_env_toggle_selects_the_oracle(monkeypatch):
    monkeypatch.setenv("REPRO_TXN_INSTALL", "sequential")
    sim = Simulator(seed=1)
    cluster = Cluster(sim, n_hosts=4, n_cores=4)
    coordinator = build_txn_system(sim, cluster, n_groups=2)
    assert coordinator.install_mode == "sequential"
    monkeypatch.setenv("REPRO_TXN_INSTALL", "parallel")
    coordinator = build_txn_system(sim, cluster, n_groups=2)
    assert coordinator.install_mode == "parallel"
