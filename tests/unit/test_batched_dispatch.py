"""Equivalence tests for the batched same-timestamp dispatch loop.

The PR-5 rewrite pops every queue entry sharing one timestamp and
dispatches the batch without re-touching the heap per event; NIC
engines additionally chain consecutive WQEs and coalesce deliveries.
All of it is only admissible because it is *invisible*:
``fast_dispatch=False`` keeps the original one-pop-at-a-time loop as
the oracle, and these tests assert bit-for-bit identical event orders
— on randomized process soups, with tracing off and on, on a real NIC
workload, and across the parallel sweep runner (worker processes
flipped to the oracle via ``REPRO_FAST_DISPATCH``).
"""

import os
import random

import pytest

from repro.bench.parallel import make_specs, run_parallel, run_serial
from repro.hw import Cluster
from repro.obs import TRACER
from repro.rdma import AccessFlags, FLAG_SIGNALED, Opcode, Wqe
from repro.sim import AnyOf, Event, Simulator, US


@pytest.fixture(autouse=True)
def _tracer_off():
    TRACER.disable()
    TRACER.reset()
    yield
    TRACER.disable()
    TRACER.reset()


def _random_soup(seed, fast_dispatch, traced=False):
    """A randomized process soup covering every dispatch shape.

    Zero-delay timeouts, hops, event ping-pong, AnyOf composition,
    call_at callbacks, interrupts, and process joins — all scheduled
    from one seeded RNG so same-timestamp contention (the regime the
    batched loop rewrites) is maximal. Returns the resume log.
    """
    sim = Simulator(seed=seed, fast_dispatch=fast_dispatch)
    if traced:
        TRACER.enable()
        TRACER.install(sim)
    plan = random.Random(seed)
    log = []
    gates = [Event(sim, f"gate{i}") for i in range(3)]

    def timer(index):
        rng = sim.rng(f"timer/{index}")
        for step in range(plan.randrange(10, 40)):
            log.append((sim.now, "timer", index, step))
            yield sim.timeout(rng.randrange(0, 4))  # mostly same-time

    def hopper(index):
        for step in range(plan.randrange(5, 25)):
            log.append((sim.now, "hopper", index, step))
            if step % 3 == 0:
                yield sim.hop()
            else:
                yield sim.timeout(1)

    def waiter(index, gate):
        value = yield gate
        log.append((sim.now, "waiter", index, value))
        yield sim.timeout(0)
        log.append((sim.now, "waiter", index, "done"))

    def any_waiter(index):
        result = yield AnyOf(sim, [gates[index % 3], sim.timeout(plan.randrange(5, 30))])
        log.append((sim.now, "any", index, len(result)))

    def victim(index):
        try:
            yield sim.timeout(1000)
            log.append((sim.now, "victim", index, "survived"))
        except Exception:
            log.append((sim.now, "victim", index, "interrupted"))

    def joiner(index, target):
        yield target
        log.append((sim.now, "joiner", index, "joined"))

    procs = []
    for index in range(plan.randrange(4, 9)):
        procs.append(sim.spawn(timer(index)))
    for index in range(plan.randrange(2, 5)):
        procs.append(sim.spawn(hopper(index)))
    for index in range(plan.randrange(2, 6)):
        sim.spawn(waiter(index, gates[plan.randrange(3)]))
    for index in range(plan.randrange(1, 4)):
        sim.spawn(any_waiter(index))
    victims = [sim.spawn(victim(index)) for index in range(2)]
    sim.spawn(joiner(0, procs[0]))
    for i, gate in enumerate(gates):
        sim.call_at(plan.randrange(3, 25), lambda g=gate, i=i: g.succeed(i))
    interrupt_at = plan.randrange(2, 20)
    for index, proc in enumerate(victims):
        sim.call_at(interrupt_at, lambda p=proc, i=index: p.interrupt(f"chaos{i}"))
    sim.call_at(plan.randrange(1, 15), lambda: log.append((sim.now, "cb", 0, None)))
    sim.run()
    log.append(("final", sim.now))
    return log


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", [1, 7, 23, 91, 404, 1759])
    def test_batched_matches_generic(self, seed):
        assert _random_soup(seed, True) == _random_soup(seed, False)

    @pytest.mark.parametrize("seed", [7, 404])
    def test_batched_matches_generic_traced(self, seed):
        """The traced batched loop (obs on) must reproduce the same
        interleaving as the traced legacy loop *and* as untraced runs."""
        untraced = _random_soup(seed, True)
        batched = _random_soup(seed, True, traced=True)
        batched_dispatches = TRACER.dispatches
        assert batched_dispatches > 0
        TRACER.disable()
        TRACER.reset()
        generic = _random_soup(seed, False, traced=True)
        assert TRACER.dispatches > 0
        assert batched == generic == untraced

    def test_env_var_flips_default_dispatch_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST_DISPATCH", "0")
        assert Simulator()._fast_dispatch is False
        monkeypatch.setenv("REPRO_FAST_DISPATCH", "1")
        assert Simulator()._fast_dispatch is True
        monkeypatch.delenv("REPRO_FAST_DISPATCH")
        assert Simulator()._fast_dispatch is True
        # An explicit argument always wins over the environment.
        monkeypatch.setenv("REPRO_FAST_DISPATCH", "0")
        assert Simulator(fast_dispatch=True)._fast_dispatch is True


def _nic_workload(fast_dispatch):
    """Posts, doorbells, WAIT chaining, and a channel consumer on a
    real two-host cluster; returns every observable: consumer wakeups,
    polled completions with timestamps, and remote memory bytes."""
    sim = Simulator(seed=17, fast_dispatch=fast_dispatch)
    cluster = Cluster(sim, n_hosts=2, n_cores=2)
    a, b = cluster[0], cluster[1]
    qp_a = a.dev.create_qp(name="a")
    qp_b = b.dev.create_qp(name="b")
    qp_a.connect(qp_b)
    buf_a = a.memory.alloc(8192, label="buf_a")
    buf_b = b.memory.alloc(8192, label="buf_b")
    a.dev.reg_mr(buf_a, AccessFlags.ALL_REMOTE)
    mr_b = b.dev.reg_mr(buf_b, AccessFlags.ALL_REMOTE)
    log = []

    def consumer():
        while len(log) < 12:
            event = qp_a.send_cq.next_event()
            if not event.triggered:
                yield event
            for entry in qp_a.send_cq.poll():
                log.append((sim.now, entry.wr_id, entry.ok))
            yield sim.timeout(0)

    sim.spawn(consumer())

    def producer():
        # Burst-post to exercise the send engine's chained execution,
        # then trickle to exercise doorbell kicks from idle.
        for index in range(8):
            buf_a.write(index * 8, bytes([index + 1]) * 8)
            qp_a.post_send(
                Wqe(
                    opcode=Opcode.WRITE,
                    flags=FLAG_SIGNALED,
                    length=8,
                    local_addr=buf_a.addr + index * 8,
                    remote_addr=buf_b.addr + index * 8,
                    rkey=mr_b.rkey,
                    wr_id=index,
                )
            )
        yield sim.timeout(50 * US)
        for index in range(8, 12):
            qp_a.post_send(
                Wqe(
                    opcode=Opcode.WRITE,
                    flags=FLAG_SIGNALED,
                    length=8,
                    local_addr=buf_a.addr,
                    remote_addr=buf_b.addr + index * 8,
                    rkey=mr_b.rkey,
                    wr_id=index,
                )
            )
            yield sim.timeout(2 * US)

    sim.spawn(producer())
    sim.run(until=10_000 * US)
    log.append(("memory", b.nic.cache.read(buf_b.addr, 96)))
    log.append(("final", sim.now, qp_a.send_cq.completions_total))
    return log


class TestNicWorkloadEquivalence:
    def test_nic_batched_matches_generic(self):
        assert _nic_workload(True) == _nic_workload(False)

    def test_nic_batched_matches_generic_traced(self):
        TRACER.enable()
        batched = _nic_workload(True)
        assert TRACER.dispatches > 0
        TRACER.disable()
        TRACER.reset()
        assert batched == _nic_workload(False)


QUICK = dict(
    system="hyperloop",
    message_size=256,
    n_ops=30,
    stress_per_core=1,
    pipeline_depth=2,
    n_cores=4,
    rounds=256,
)


class TestParallelEquivalence:
    def test_worker_processes_match_generic_oracle(self, monkeypatch):
        """A sweep's worker processes run batched by default; the same
        sweep with workers flipped to the generic loop (via the
        ``REPRO_FAST_DISPATCH`` environment, inherited at pool start)
        must produce identical normalized results."""
        specs = make_specs("latency", base_seed=7, n_seeds=2, **QUICK)
        batched = run_parallel(specs, workers=2)
        monkeypatch.setenv("REPRO_FAST_DISPATCH", "0")
        generic = run_parallel(specs, workers=2)
        assert batched == generic
        # And both match the in-process serial reference (which here
        # runs generic too, proving the env gate reaches this process).
        serial = run_serial(specs)
        assert serial == generic
