"""Unit tests for HyperLoop chain layout and blob construction."""

import pytest

from repro.core import HyperLoopGroup, OpSpec, SKIP_SENTINEL
from repro.core.chain import GCAS, GMEMCPY, GWRITE
from repro.hw import Cluster
from repro.hw.wqe import Opcode, WQE_SIZE, Wqe
from repro.sim import Simulator


@pytest.fixture
def group():
    sim = Simulator(seed=41)
    cluster = Cluster(sim, n_hosts=4, n_cores=2)
    return HyperLoopGroup(
        cluster[0], cluster.hosts[1:4], region_size=1 << 16, rounds=8,
        autostart=False, name="lg",
    )


class TestLayout:
    def test_blob_sizes(self, group):
        chain = group.chains[GWRITE]
        assert chain.result_size == 3 * 8
        assert chain.blob_size == 3 * 8 + 3 * WQE_SIZE
        assert chain.payload_size == chain.blob_size + WQE_SIZE

    def test_slots_per_round(self, group):
        # durable gwrite: WAIT + WRITE + flush READ + SEND
        assert group.chains[GWRITE].spr_next == 4
        # gmemcpy/gcas downstream: WAIT + SEND
        assert group.chains[GMEMCPY].spr_next == 2
        # durable gmemcpy loopback: WAIT + copy + flush READ
        assert group.chains[GMEMCPY].spr_loop == 3
        # gcas loopback: WAIT + CAS
        assert group.chains[GCAS].spr_loop == 2

    def test_loopback_only_where_needed(self, group):
        assert not group.chains[GWRITE].uses_loopback
        assert group.chains[GMEMCPY].uses_loopback
        assert group.chains[GCAS].uses_loopback

    def test_op_slot_addresses_fall_in_the_right_ring(self, group):
        chain = group.chains[GWRITE]
        for replica in range(2):  # non-tail replicas
            for round_ in range(20):
                addr = chain.op_slot_addr(replica, round_)
                ring = chain.replicas[replica].qp_next.send_ring
                assert ring.addr <= addr < ring.addr + ring.length
        cas_chain = group.chains[GCAS]
        for replica in range(3):
            addr = cas_chain.op_slot_addr(replica, 5)
            ring = cas_chain.replicas[replica].qp_loop.send_ring
            assert ring.addr <= addr < ring.addr + ring.length

    def test_op_slots_wrap_with_ring(self, group):
        chain = group.chains[GWRITE]
        assert chain.op_slot_addr(0, 0) == chain.op_slot_addr(0, chain.rounds)

    def test_staging_slots_are_disjoint_per_round(self, group):
        chain = group.chains[GWRITE]
        state = chain.replicas[0]
        addresses = {
            chain.staging_slot_addr(state, round_) for round_ in range(chain.rounds)
        }
        assert len(addresses) == chain.rounds


class TestBlobConstruction:
    def test_gwrite_patch_targets_next_replica(self, group):
        chain = group.chains[GWRITE]
        patch = Wqe.unpack(chain.build_patch(0, 0, OpSpec(GWRITE, offset=100, size=50)))
        assert patch.opcode == Opcode.WRITE
        assert patch.valid
        assert patch.length == 50
        assert patch.local_addr == group.replica_mrs[0].addr + 100
        assert patch.remote_addr == group.replica_mrs[1].addr + 100
        assert patch.rkey == group.replica_mrs[1].rkey

    def test_gwrite_tail_patch_is_blank(self, group):
        chain = group.chains[GWRITE]
        assert chain.build_patch(2, 0, OpSpec(GWRITE, offset=0, size=8)) == bytes(WQE_SIZE)

    def test_gmemcpy_patch_is_local_loopback_write(self, group):
        chain = group.chains[GMEMCPY]
        patch = Wqe.unpack(
            chain.build_patch(1, 0, OpSpec(GMEMCPY, src_offset=0, dst_offset=4096, size=64))
        )
        assert patch.opcode == Opcode.WRITE
        assert patch.local_addr == group.replica_mrs[1].addr
        assert patch.remote_addr == group.replica_mrs[1].addr + 4096
        assert patch.rkey == group.replica_mrs[1].rkey

    def test_gcas_patch_execute_map(self, group):
        chain = group.chains[GCAS]
        spec = OpSpec(GCAS, offset=8, compare=1, swap=2, execute_map=[True, False, True])
        executed = Wqe.unpack(chain.build_patch(0, 0, spec))
        skipped = Wqe.unpack(chain.build_patch(1, 0, spec))
        assert executed.opcode == Opcode.CAS
        assert executed.compare == 1 and executed.swap == 2
        assert skipped.opcode == Opcode.NOP
        assert skipped.signaled  # a NOP must still advance the WAIT

    def test_gcas_result_lands_in_staging(self, group):
        chain = group.chains[GCAS]
        patch = Wqe.unpack(chain.build_patch(1, 3, OpSpec(GCAS, offset=0, compare=0, swap=1)))
        state = chain.replicas[1]
        expected = chain.staging_slot_addr(state, 3) + 1 * 8
        assert patch.local_addr == expected

    def test_payload_is_blob_plus_head_patch(self, group):
        chain = group.chains[GWRITE]
        spec = OpSpec(GWRITE, offset=0, size=16)
        payload = chain.build_payload(0, spec)
        assert len(payload) == chain.payload_size
        # Result map initialized to the skip sentinel.
        sentinel = SKIP_SENTINEL.to_bytes(8, "little")
        assert payload[: chain.result_size] == sentinel * 3
        # Trailing patch equals replica 0's patch.
        head_patch = chain.build_patch(0, 0, spec)
        assert payload[-WQE_SIZE:] == head_patch

    def test_retired_rounds_starts_at_zero(self, group):
        chain = group.chains[GWRITE]
        for replica in range(3):
            assert chain.retired_rounds(replica) == 0
