"""Unit tests for Task.poll_wait — the busy-polling model.

poll_wait must behave like a spin loop: it burns CPU while waiting,
keeps its core only as the scheduler allows, and cannot observe an
event while descheduled.
"""

import pytest

from repro.hw.cpu import OperatingSystem, SchedParams
from repro.sim import MS, Simulator, US


def make_os(sim, n_cores=1, **overrides):
    return OperatingSystem(sim, n_cores=n_cores, params=SchedParams(**overrides), name="h")


class TestPollWait:
    def test_returns_event_value(self):
        sim = Simulator()
        os_ = make_os(sim)

        def poller(task):
            value = yield from task.poll_wait(sim.timeout(50 * US, "payload"))
            return value

        task = os_.spawn(poller, "p")
        sim.run()
        assert task.process.value == "payload"

    def test_burns_cpu_while_waiting(self):
        sim = Simulator()
        os_ = make_os(sim)

        def poller(task):
            yield from task.poll_wait(sim.timeout(1 * MS))

        task = os_.spawn(poller, "p")
        sim.run()
        # The whole wait was spent spinning on the core.
        assert task.cpu_ns >= int(0.95 * MS)

    def test_wait_does_not_burn_cpu(self):
        """Contrast: blocking wait releases the core."""
        sim = Simulator()
        os_ = make_os(sim)

        def sleeper(task):
            yield from task.wait(sim.timeout(1 * MS))

        task = os_.spawn(sleeper, "s")
        sim.run()
        assert task.cpu_ns < 10 * US

    def test_pretriggered_event_is_fast(self):
        sim = Simulator()
        os_ = make_os(sim)

        def poller(task):
            event = sim.event()
            event.succeed("now")
            before = sim.now
            value = yield from task.poll_wait(event, check_ns=100)
            return (value, sim.now - before)

        task = os_.spawn(poller, "p")
        sim.run()
        value, took = task.process.value
        assert value == "now"
        assert took <= 10 * US

    def test_descheduled_poller_misses_the_event(self):
        """The defining behaviour: while another task holds the core,
        the poller cannot detect its event; detection waits for the
        poller's next slice."""
        sim = Simulator(seed=4)
        os_ = make_os(
            sim,
            n_cores=1,
            sched_latency_ns=12 * MS,
            min_granularity_ns=3 * MS,
            interactive_credit_ns=1 * MS,
        )
        os_.spawn_stress("hog")
        detect = {}

        def poller(task):
            # Burn credit so the poller is batch, then poll an event
            # that fires while the hog likely holds the core.
            yield from task.compute(2 * MS)
            fired_at = sim.now + 5 * MS
            yield from task.poll_wait(sim.timeout(5 * MS))
            detect["delay"] = sim.now - fired_at

        os_.spawn(poller, "p")
        sim.run(until=100 * MS)
        # The poller was timesharing with the hog: with 3ms slices the
        # detection delay is 0 (if on-core) or up to one hog slice.
        assert "delay" in detect
        assert detect["delay"] <= 13 * MS

    def test_poller_shares_core_fairly(self):
        sim = Simulator(seed=5)
        os_ = make_os(sim, n_cores=1)
        os_.spawn_stress("hog")

        def poller(task):
            yield from task.poll_wait(sim.timeout(100 * MS))

        task = os_.spawn(poller, "p")
        sim.run(until=100 * MS)
        share = task.cpu_ns / (100 * MS)
        assert 0.3 <= share <= 0.7, f"poller share {share:.2f}"

    def test_failed_event_raises(self):
        sim = Simulator()
        os_ = make_os(sim)
        event = sim.event()

        def poller(task):
            try:
                yield from task.poll_wait(event)
            except ValueError as exc:
                return f"caught {exc}"

        task = os_.spawn(poller, "p")
        sim.call_in(10 * US, lambda: event.fail(ValueError("boom")))
        sim.run()
        assert task.process.value == "caught boom"


class TestBurstyTenant:
    def test_alternates_compute_and_sleep(self):
        sim = Simulator(seed=6)
        os_ = make_os(sim, n_cores=1)
        task = os_.spawn_bursty("b", busy_ns=500 * US, idle_ns=500 * US)
        sim.run(until=100 * MS)
        share = task.cpu_ns / (100 * MS)
        assert 0.3 <= share <= 0.7, f"bursty duty {share:.2f}"
        assert task.wakeups > 20  # it sleeps and wakes repeatedly
