"""Partitioner determinism and clique atomicity.

``partition_topology`` is a pure function of ``(cliques, n_shards,
seed)``: the equivalence tests reconstruct a layout from those inputs
alone, so any nondeterminism here would show up as a sharded run that
cannot be reproduced.
"""

import random

import pytest

from repro.bench.mesh import mesh_params
from repro.sim.shard import Clique, partition_topology
from repro.bench.mesh import _cliques as mesh_cliques


def _random_cliques(rng, n):
    cliques = []
    host = 0
    for index in range(n):
        size = rng.randrange(1, 5)
        members = tuple(f"h{host + j:03d}" for j in range(size))
        host += size
        cliques.append(Clique(f"c{index:03d}", members, size))
    return cliques


def test_partition_is_deterministic():
    rng = random.Random(17)
    cliques = _random_cliques(rng, 23)
    for n_shards in (1, 2, 3, 4, 7):
        first = partition_topology(cliques, n_shards, seed=5)
        again = partition_topology(list(cliques), n_shards, seed=5)
        assert first == again
        # Input order must not matter either: the partitioner imposes
        # its own canonical order before assigning.
        shuffled = list(cliques)
        random.Random(99).shuffle(shuffled)
        assert partition_topology(shuffled, n_shards, seed=5) == first


def test_partition_never_splits_a_clique():
    rng = random.Random(23)
    cliques = _random_cliques(rng, 31)
    shards = partition_topology(cliques, 4, seed=1)
    seen = {}
    for index, shard in enumerate(shards):
        for clique in shard:
            assert clique.name not in seen
            seen[clique.name] = index
    assert len(seen) == len(cliques)


def test_partition_balances_weight():
    cliques = [Clique(f"c{i}", (f"h{i}",), 1) for i in range(40)]
    shards = partition_topology(cliques, 4, seed=0)
    loads = [sum(c.weight for c in shard) for shard in shards]
    assert max(loads) - min(loads) <= 1


def test_partition_rejects_bad_shard_count():
    with pytest.raises(ValueError):
        partition_topology([], 0)


def test_seed_changes_layout_not_contents():
    rng = random.Random(31)
    cliques = _random_cliques(rng, 29)
    a = partition_topology(cliques, 3, seed=1)
    b = partition_topology(cliques, 3, seed=2)
    flat = lambda shards: sorted(c.name for shard in shards for c in shard)
    assert flat(a) == flat(b)


def test_mesh_cliques_follow_group_size():
    params = mesh_params(hosts=10, group_size=4)
    cliques = mesh_cliques(params)
    assert [len(c.members) for c in cliques] == [4, 4, 2]
    assert [c.weight for c in cliques] == [4, 4, 2]
    members = [m for c in cliques for m in c.members]
    assert members == sorted(members)
    assert len(set(members)) == 10
