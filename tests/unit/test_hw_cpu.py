"""Unit tests for the CPU/OS scheduler model (repro.hw.cpu)."""

import pytest

from repro.hw.cpu import OperatingSystem, SchedParams, Task
from repro.sim import MS, Simulator, US


def make_os(sim, n_cores=2, **overrides):
    params = SchedParams(**overrides)
    return OperatingSystem(sim, n_cores=n_cores, params=params, name="h0")


class TestBasicExecution:
    def test_compute_consumes_virtual_time(self):
        sim = Simulator()
        os_ = make_os(sim)

        def body(task):
            yield from task.compute(100 * US)
            return sim.now

        task = os_.spawn(body, "t")
        sim.run()
        # 100us of compute; dispatch of a fresh task costs one switch.
        assert task.process.value == 100 * US + os_.params.context_switch_ns
        assert task.cpu_ns == 100 * US

    def test_sleep_then_compute(self):
        sim = Simulator()
        os_ = make_os(sim)

        def body(task):
            yield from task.sleep(50 * US)
            yield from task.compute(10 * US)
            return sim.now

        task = os_.spawn(body, "t")
        sim.run()
        # sleep(50us) + wake dispatch (no switch: core remembers it) + 10us
        assert task.process.value == pytest.approx(60 * US, abs=2 * os_.params.context_switch_ns)

    def test_two_tasks_share_machine_on_separate_cores(self):
        sim = Simulator()
        os_ = make_os(sim, n_cores=2)
        done = {}

        def body(label):
            def gen(task):
                yield from task.compute(1 * MS)
                done[label] = sim.now

            return gen

        os_.spawn(body("a"), "a")
        os_.spawn(body("b"), "b")
        sim.run()
        # Both finish in parallel: ~1ms each, not 2ms serialized.
        assert max(done.values()) < int(1.1 * MS)

    def test_wait_returns_event_value(self):
        sim = Simulator()
        os_ = make_os(sim)

        def body(task):
            value = yield from task.wait(sim.timeout(10 * US, "payload"))
            return value

        task = os_.spawn(body, "t")
        sim.run()
        assert task.process.value == "payload"

    def test_wait_on_triggered_event_does_not_deschedule(self):
        sim = Simulator()
        os_ = make_os(sim)

        def body(task):
            event = sim.event()
            event.succeed("fast")
            before = sim.now
            value = yield from task.wait(event)
            return (value, sim.now - before)

        task = os_.spawn(body, "t")
        sim.run()
        assert task.process.value == ("fast", 0)

    def test_pinned_task_stays_on_core(self):
        sim = Simulator()
        os_ = make_os(sim, n_cores=4)

        def body(task):
            for _ in range(10):
                yield from task.compute(10 * US)
                yield from task.sleep(5 * US)
            return task.last_core.index if task.core is None else task.core.index

        task = os_.spawn(body, "t", pinned_core=3)
        sim.run()
        assert task.process.value == 3
        assert os_.cores[3].busy_ns == 100 * US

    def test_invalid_pin_raises(self):
        sim = Simulator()
        os_ = make_os(sim, n_cores=2)
        with pytest.raises(ValueError):
            os_.spawn(lambda t: iter(()), "t", pinned_core=5)


class TestSchedulingContention:
    def test_batch_tasks_round_robin_one_core(self):
        sim = Simulator()
        os_ = make_os(sim, n_cores=1, sched_latency_ns=4 * MS, min_granularity_ns=1 * MS)
        done = {}

        def body(label):
            def gen(task):
                yield from task.compute(4 * MS)
                done[label] = sim.now

            return gen

        os_.spawn(body("a"), "a")
        os_.spawn(body("b"), "b")
        sim.run()
        # Serialized on one core: total ~8ms, interleaved.
        assert done["a"] > 4 * MS
        assert done["b"] > 4 * MS
        assert max(done.values()) >= 8 * MS
        assert os_.context_switches >= 3

    def test_wakeup_on_busy_core_is_two_regime(self):
        """Wakeups onto a busy core are usually fast (preemption at a
        kernel exit) but occasionally wait for the scheduler tick —
        the distribution driving the paper's tail-latency story."""
        sim = Simulator(seed=3)
        os_ = make_os(sim, n_cores=1, tick_ns=4 * MS)
        os_.spawn_stress("hog")
        delays = []

        def daemon(task):
            while sim.now < 900 * MS:
                fired_at = sim.now + 200 * US
                yield from task.wait(sim.timeout(200 * US))
                delays.append(sim.now - fired_at)
                yield from task.compute(1 * US)

        os_.spawn(daemon, "daemon")
        sim.run(until=1000 * MS)
        assert len(delays) > 200
        delays.sort()
        median = delays[len(delays) // 2]
        p99 = delays[int(len(delays) * 0.99)]
        # Fast path dominates the median; the tick bound shows at p99.
        assert median < 300 * US
        assert p99 > 1 * MS
        assert max(delays) <= int(4.5 * MS)

    def test_woken_task_immediate_on_idle_core(self):
        sim = Simulator()
        os_ = make_os(sim, n_cores=2, tick_ns=1 * MS)
        os_.spawn_stress("hog")  # occupies one core
        wake_delay = {}

        def daemon(task):
            fired_at = sim.now + 300 * US
            yield from task.wait(sim.timeout(300 * US))
            wake_delay["delay"] = sim.now - fired_at
            yield from task.compute(1 * US)

        os_.spawn(daemon, "daemon")
        sim.run(until=20 * MS)
        # A second core is idle: dispatch costs at most a context switch.
        assert wake_delay["delay"] <= 2 * os_.params.context_switch_ns

    def test_poller_demotes_to_batch(self):
        sim = Simulator()
        os_ = make_os(sim, n_cores=1, interactive_credit_ns=2 * MS)

        def poller(task):
            while sim.now < 10 * MS:
                yield from task.compute(1 * US)

        task = os_.spawn(poller, "poller")
        sim.run(until=10 * MS)
        assert not task.interactive

    def test_sleeper_regains_interactive_priority(self):
        sim = Simulator()
        os_ = make_os(sim, n_cores=1, interactive_credit_ns=2 * MS)

        def worker(task):
            yield from task.compute(5 * MS)  # burns all credit
            assert not task.interactive
            yield from task.sleep(1 * MS)
            assert task.interactive

        task = os_.spawn(worker, "w")
        sim.run()
        assert task.process.ok

    def test_context_switches_counted(self):
        sim = Simulator()
        os_ = make_os(sim, n_cores=1)
        os_.spawn_stress("a")
        os_.spawn_stress("b")
        sim.run(until=100 * MS)
        assert os_.context_switches >= 5

    def test_more_cores_fewer_context_switches(self):
        def run(cores):
            sim = Simulator()
            os_ = make_os(sim, n_cores=cores)
            for i in range(8):
                os_.spawn_stress(f"s{i}")
            sim.run(until=200 * MS)
            return os_.context_switches

        assert run(8) < run(2)

    def test_utilization_accounting(self):
        sim = Simulator()
        os_ = make_os(sim, n_cores=2)
        os_.spawn_stress("hog")
        sim.run(until=10 * MS)
        # One hog on two cores: ~50% average utilization.
        util = os_.utilization(0, 0)
        assert 0.45 <= util <= 0.55

    def test_many_daemons_queue_behind_each_other(self):
        """When many interactive tasks wake at once on a saturated
        machine, later ones wait multiple ticks — the Fig. 2 effect."""
        sim = Simulator()
        os_ = make_os(sim, n_cores=1, tick_ns=1 * MS)
        os_.spawn_stress("hog")
        delays = []

        def daemon(task):
            target = 500 * US
            yield from task.wait(sim.timeout(target))
            delays.append(sim.now - target)
            yield from task.compute(50 * US)

        for i in range(4):
            os_.spawn(daemon, f"d{i}")
        sim.run(until=50 * MS)
        assert len(delays) == 4
        assert max(delays) > min(delays) + 50 * US
        assert max(delays) >= 1 * MS


class TestCoreHotplug:
    def test_disabled_cores_not_used(self):
        sim = Simulator()
        os_ = make_os(sim, n_cores=4)
        os_.set_enabled_cores(2)
        for i in range(4):
            os_.spawn_stress(f"s{i}")
        sim.run(until=20 * MS)
        assert os_.cores[2].busy_ns == 0
        assert os_.cores[3].busy_ns == 0
        assert os_.cores[0].busy_ns > 0

    def test_bad_core_count_raises(self):
        sim = Simulator()
        os_ = make_os(sim, n_cores=4)
        with pytest.raises(ValueError):
            os_.set_enabled_cores(0)
        with pytest.raises(ValueError):
            os_.set_enabled_cores(5)
