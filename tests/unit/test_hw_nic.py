"""Unit tests for the RNIC model + verbs layer.

These exercise the exact hardware behaviours HyperLoop is built on:
one-sided verbs, WAIT chaining, deferred ownership, remote WQE
patching, SGL scatter/gather, the flush-on-READ durability mechanism,
and rkey safety checks.
"""

import pytest

from repro.hw import Cluster
from repro.rdma import (
    AccessFlags,
    FLAG_SGL,
    FLAG_SIGNALED,
    Opcode,
    WC_REMOTE_ACCESS_ERROR,
    Wqe,
)
from repro.sim import Simulator, MS, US


@pytest.fixture
def rig():
    """Two hosts with a connected QP and a registered buffer each."""
    sim = Simulator(seed=1)
    cluster = Cluster(sim, n_hosts=2)
    a, b = cluster[0], cluster[1]
    qp_a = a.dev.create_qp(name="a")
    qp_b = b.dev.create_qp(name="b")
    qp_a.connect(qp_b)
    buf_a = a.memory.alloc(8192, label="buf_a")
    buf_b = b.memory.alloc(8192, label="buf_b")
    mr_a = a.dev.reg_mr(buf_a, AccessFlags.ALL_REMOTE)
    mr_b = b.dev.reg_mr(buf_b, AccessFlags.ALL_REMOTE)
    return sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b


def run_until(sim, predicate, timeout_ns=50 * MS, step=10 * US):
    deadline = sim.now + timeout_ns
    while not predicate() and sim.now < deadline:
        sim.run(until=min(sim.now + step, deadline))
    assert predicate(), "condition not reached before timeout"


class TestRdmaWrite:
    def test_write_moves_data_without_remote_recv(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        buf_a.write(0, b"payload!")
        qp_a.post_send(
            Wqe(
                opcode=Opcode.WRITE,
                flags=FLAG_SIGNALED,
                length=8,
                local_addr=buf_a.addr,
                remote_addr=buf_b.addr,
                rkey=mr_b.rkey,
                wr_id=7,
            )
        )
        run_until(sim, lambda: qp_a.send_cq.completions_total >= 1)
        cqes = qp_a.send_cq.poll()
        assert len(cqes) == 1 and cqes[0].ok and cqes[0].wr_id == 7
        # Data visible through the remote NIC's cache overlay.
        assert b.nic.cache.read(buf_b.addr, 8) == b"payload!"

    def test_write_latency_is_microseconds(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        qp_a.post_send(
            Wqe(
                opcode=Opcode.WRITE,
                flags=FLAG_SIGNALED,
                length=64,
                local_addr=buf_a.addr,
                remote_addr=buf_b.addr,
                rkey=mr_b.rkey,
            )
        )
        def waiter():
            yield qp_a.send_cq.threshold_event(1)
            return sim.now

        done_at = sim.run_process(waiter())
        # Small RC WRITE round trip on ConnectX-3-ish hardware: 2-5 us.
        assert 1 * US < done_at < 10 * US

    def test_unsignaled_write_produces_no_cqe(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        qp_a.post_send(
            Wqe(
                opcode=Opcode.WRITE,
                flags=0,
                length=8,
                local_addr=buf_a.addr,
                remote_addr=buf_b.addr,
                rkey=mr_b.rkey,
            )
        )
        sim.run(until=1 * MS)
        assert qp_a.send_cq.completions_total == 0
        # ... but the data still arrived.
        assert b.nic.cache.read(buf_b.addr, 8) == bytes(8)

    def test_writes_complete_in_order(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        for i in range(5):
            buf_a.write(i * 16, bytes([i]) * 16)
            qp_a.post_send(
                Wqe(
                    opcode=Opcode.WRITE,
                    flags=FLAG_SIGNALED,
                    length=16,
                    local_addr=buf_a.addr + i * 16,
                    remote_addr=buf_b.addr + i * 16,
                    rkey=mr_b.rkey,
                    wr_id=i,
                )
            )
        run_until(sim, lambda: qp_a.send_cq.completions_total >= 5)
        ids = [cqe.wr_id for cqe in qp_a.send_cq.poll(16)]
        assert ids == [0, 1, 2, 3, 4]


class TestSendRecv:
    def test_send_consumes_recv_and_scatters(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        buf_a.write(0, b"two-sided")
        qp_b.post_recv(Wqe(local_addr=buf_b.addr + 100, length=64, wr_id=55))
        qp_a.post_send(
            Wqe(opcode=Opcode.SEND, flags=FLAG_SIGNALED, length=9, local_addr=buf_a.addr)
        )
        run_until(sim, lambda: qp_b.recv_cq.completions_total >= 1)
        cqe = qp_b.recv_cq.poll()[0]
        assert cqe.wr_id == 55 and cqe.byte_len == 9
        assert b.nic.cache.read(buf_b.addr + 100, 9) == b"two-sided"

    def test_send_blocks_until_recv_posted(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        qp_a.post_send(
            Wqe(opcode=Opcode.SEND, flags=FLAG_SIGNALED, length=4, local_addr=buf_a.addr)
        )
        sim.run(until=1 * MS)
        assert qp_b.recv_cq.completions_total == 0
        qp_b.post_recv(Wqe(local_addr=buf_b.addr, length=64, wr_id=1))
        run_until(sim, lambda: qp_b.recv_cq.completions_total >= 1)

    def test_write_imm_consumes_recv_and_carries_imm(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        buf_a.write(0, b"ackdata!")
        qp_b.post_recv(Wqe(local_addr=0, length=0, wr_id=9))
        qp_a.post_send(
            Wqe(
                opcode=Opcode.WRITE_IMM,
                flags=FLAG_SIGNALED,
                length=8,
                local_addr=buf_a.addr,
                remote_addr=buf_b.addr,
                rkey=mr_b.rkey,
                compare=4242,  # imm
            )
        )
        run_until(sim, lambda: qp_b.recv_cq.completions_total >= 1)
        cqe = qp_b.recv_cq.poll()[0]
        assert cqe.imm == 4242 and cqe.wr_id == 9
        assert b.nic.cache.read(buf_b.addr, 8) == b"ackdata!"


class TestReadAndFlush:
    def test_read_fetches_remote_data(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        buf_b.write(0, b"remote-bytes")
        qp_a.post_send(
            Wqe(
                opcode=Opcode.READ,
                flags=FLAG_SIGNALED,
                length=12,
                local_addr=buf_a.addr + 64,
                remote_addr=buf_b.addr,
                rkey=mr_b.rkey,
            )
        )
        run_until(sim, lambda: qp_a.send_cq.completions_total >= 1)
        assert a.nic.cache.read(buf_a.addr + 64, 12) == b"remote-bytes"

    def test_zero_byte_read_flushes_remote_cache(self, rig):
        """The gFLUSH mechanism: WRITE lands in the NIC cache; a
        0-byte READ forces it to the durable medium."""
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        nvm = b.memory.alloc(64, nvm=True)
        mr_nvm = b.dev.reg_mr(nvm, AccessFlags.ALL_REMOTE)
        buf_a.write(0, b"must-persist")
        qp_a.post_send(
            Wqe(
                opcode=Opcode.WRITE,
                length=12,
                local_addr=buf_a.addr,
                remote_addr=nvm.addr,
                rkey=mr_nvm.rkey,
            )
        )
        qp_a.post_send(
            Wqe(
                opcode=Opcode.READ,
                flags=FLAG_SIGNALED,
                length=0,
                local_addr=buf_a.addr,
                remote_addr=nvm.addr,
                rkey=mr_nvm.rkey,
            )
        )
        run_until(sim, lambda: qp_a.send_cq.completions_total >= 1)
        # After the READ completes, the bytes are in memory proper:
        # power failure no longer loses them.
        b.power_failure()
        assert nvm.read(0, 12) == b"must-persist"

    def test_unflushed_write_lost_on_power_failure(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        nvm = b.memory.alloc(64, nvm=True)
        mr_nvm = b.dev.reg_mr(nvm, AccessFlags.ALL_REMOTE)
        buf_a.write(0, b"acked-volatile")
        qp_a.post_send(
            Wqe(
                opcode=Opcode.WRITE,
                flags=FLAG_SIGNALED,
                length=14,
                local_addr=buf_a.addr,
                remote_addr=nvm.addr,
                rkey=mr_nvm.rkey,
            )
        )
        run_until(sim, lambda: qp_a.send_cq.completions_total >= 1)
        # ACKed to the requester, but if power fails before the lazy
        # drain the data is gone — the exact gap gFLUSH closes.
        assert sim.now < b.nic.params.cache_drain_ns
        b.power_failure()
        assert nvm.read(0, 14) == bytes(14)

    def test_lazy_drain_eventually_persists(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        buf_a.write(0, b"lazy")
        qp_a.post_send(
            Wqe(
                opcode=Opcode.WRITE,
                length=4,
                local_addr=buf_a.addr,
                remote_addr=buf_b.addr,
                rkey=mr_b.rkey,
            )
        )
        sim.run(until=5 * MS)
        assert not b.nic.cache.dirty
        assert buf_b.read(0, 4) == b"lazy"


class TestAtomics:
    def _post_cas(self, qp, buf_a, buf_b, mr_b, compare, swap):
        qp.post_send(
            Wqe(
                opcode=Opcode.CAS,
                flags=FLAG_SIGNALED,
                length=8,
                local_addr=buf_a.addr + 512,
                remote_addr=buf_b.addr,
                rkey=mr_b.rkey,
                compare=compare,
                swap=swap,
            )
        )

    def test_cas_success_swaps_and_returns_original(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        buf_b.write(0, (111).to_bytes(8, "little"))
        self._post_cas(qp_a, buf_a, buf_b, mr_b, compare=111, swap=222)
        run_until(sim, lambda: qp_a.send_cq.completions_total >= 1)
        assert int.from_bytes(buf_b.read(0, 8), "little") == 222
        returned = int.from_bytes(a.nic.cache.read(buf_a.addr + 512, 8), "little")
        assert returned == 111

    def test_cas_failure_leaves_value_and_reports_original(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        buf_b.write(0, (999).to_bytes(8, "little"))
        self._post_cas(qp_a, buf_a, buf_b, mr_b, compare=111, swap=222)
        run_until(sim, lambda: qp_a.send_cq.completions_total >= 1)
        assert int.from_bytes(buf_b.read(0, 8), "little") == 999
        returned = int.from_bytes(a.nic.cache.read(buf_a.addr + 512, 8), "little")
        assert returned == 999

    def test_cas_sees_cached_writes(self, rig):
        """A CAS right after a WRITE to the same location must observe
        the written value even while it is still in the NIC cache."""
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        buf_a.write(0, (5).to_bytes(8, "little"))
        qp_a.post_send(
            Wqe(
                opcode=Opcode.WRITE,
                length=8,
                local_addr=buf_a.addr,
                remote_addr=buf_b.addr,
                rkey=mr_b.rkey,
            )
        )
        self._post_cas(qp_a, buf_a, buf_b, mr_b, compare=5, swap=6)
        run_until(sim, lambda: qp_a.send_cq.completions_total >= 1)
        assert int.from_bytes(b.nic.cache.read(buf_b.addr, 8), "little") == 6


class TestSafetyChecks:
    def test_write_outside_registration_naks(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        secret = b.memory.alloc(64, label="secret")
        secret.write(0, b"secret")
        qp_a.post_send(
            Wqe(
                opcode=Opcode.WRITE,
                flags=FLAG_SIGNALED,
                length=6,
                local_addr=buf_a.addr,
                remote_addr=secret.addr,  # not covered by mr_b
                rkey=mr_b.rkey,
                wr_id=13,
            )
        )
        run_until(sim, lambda: qp_a.send_cq.completions_total >= 1)
        cqe = qp_a.send_cq.poll()[0]
        assert cqe.status == WC_REMOTE_ACCESS_ERROR
        assert secret.read(0, 6) == b"secret"

    def test_bogus_rkey_naks(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        qp_a.post_send(
            Wqe(
                opcode=Opcode.READ,
                flags=FLAG_SIGNALED,
                length=8,
                local_addr=buf_a.addr,
                remote_addr=buf_b.addr,
                rkey=0xDEAD,
            )
        )
        run_until(sim, lambda: qp_a.send_cq.completions_total >= 1)
        assert qp_a.send_cq.poll()[0].status == WC_REMOTE_ACCESS_ERROR

    def test_permission_flags_enforced(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        readonly = b.memory.alloc(64)
        mr_ro = b.dev.reg_mr(readonly, AccessFlags.REMOTE_READ)
        qp_a.post_send(
            Wqe(
                opcode=Opcode.WRITE,
                flags=FLAG_SIGNALED,
                length=4,
                local_addr=buf_a.addr,
                remote_addr=readonly.addr,
                rkey=mr_ro.rkey,
            )
        )
        run_until(sim, lambda: qp_a.send_cq.completions_total >= 1)
        assert qp_a.send_cq.poll()[0].status == WC_REMOTE_ACCESS_ERROR


class TestWaitChaining:
    def test_wait_blocks_until_threshold(self, rig):
        """A WAIT + SEND pre-posted on one QP fires only after the
        observed CQ reaches its threshold — the CORE-Direct behaviour
        HyperLoop forwarding is built from (Figure 4)."""
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        # On host B: a second QP back to A, pre-loaded with WAIT+WRITE
        # watching qp_b's recv CQ.
        qp_b2 = b.dev.create_qp(name="b2")
        qp_a2 = a.dev.create_qp(name="a2")
        qp_b2.connect(qp_a2)
        buf_b.write(200, b"forwarded")
        qp_b2.post_send(
            Wqe(
                opcode=Opcode.WAIT,
                compare=1,  # threshold: 1 completion
                swap=qp_b.recv_cq.cqn,
            )
        )
        qp_b2.post_send(
            Wqe(
                opcode=Opcode.WRITE,
                flags=FLAG_SIGNALED,
                length=9,
                local_addr=buf_b.addr + 200,
                remote_addr=buf_a.addr + 300,
                rkey=mr_a.rkey,
            )
        )
        sim.run(until=1 * MS)
        # Nothing happened yet: the WAIT holds the queue.
        assert a.nic.cache.read(buf_a.addr + 300, 9) == bytes(9)
        # Now trigger it: a SEND from A consumes a recv WQE on qp_b.
        qp_b.post_recv(Wqe(local_addr=buf_b.addr + 400, length=64))
        qp_a.post_send(Wqe(opcode=Opcode.SEND, length=4, local_addr=buf_a.addr))
        run_until(sim, lambda: qp_b2.send_cq.completions_total >= 1)
        assert a.nic.cache.read(buf_a.addr + 300, 9) == b"forwarded"

    def test_wait_threshold_counts_all_time_completions(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        qp_b2 = b.dev.create_qp(name="b2")
        qp_a2 = a.dev.create_qp(name="a2")
        qp_b2.connect(qp_a2)
        # Threshold of 3 recv completions.
        qp_b2.post_send(Wqe(opcode=Opcode.WAIT, compare=3, swap=qp_b.recv_cq.cqn))
        qp_b2.post_send(
            Wqe(
                opcode=Opcode.WRITE,
                flags=FLAG_SIGNALED,
                length=1,
                local_addr=buf_b.addr,
                remote_addr=buf_a.addr,
                rkey=mr_a.rkey,
            )
        )
        for _ in range(3):
            qp_b.post_recv(Wqe(local_addr=buf_b.addr + 128, length=64))
        for i in range(3):
            qp_a.post_send(Wqe(opcode=Opcode.SEND, length=4, local_addr=buf_a.addr))
            sim.run(until=(i + 1) * MS)
            fired = qp_b2.send_cq.completions_total >= 1
            assert fired == (i == 2), f"after {i + 1} sends fired={fired}"


class TestDeferredOwnershipAndPatching:
    def test_stock_driver_rejects_deferred_ownership(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        a.dev.hyperloop = False
        with pytest.raises(PermissionError):
            qp_a.post_send(Wqe(opcode=Opcode.WRITE, flags=0), defer_ownership=True)

    def test_stock_driver_rejects_ring_exposure(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        b.dev.hyperloop = False
        with pytest.raises(PermissionError):
            b.dev.expose_send_ring(qp_b)

    def test_invalid_wqe_stalls_queue(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        qp_a.post_send(
            Wqe(
                opcode=Opcode.WRITE,
                flags=FLAG_SIGNALED,  # VALID deliberately clear
                length=4,
                local_addr=buf_a.addr,
                remote_addr=buf_b.addr,
                rkey=mr_b.rkey,
            ),
            defer_ownership=True,
        )
        sim.run(until=2 * MS)
        assert qp_a.send_cq.completions_total == 0

    def test_remote_patch_activates_stalled_wqe(self, rig):
        """End-to-end remote work-request manipulation (Figure 5): a
        remote WRITE into the exposed send ring rewrites a pre-posted,
        ownership-deferred WQE and grants it to the NIC."""
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        ring_mr = b.dev.expose_send_ring(qp_b)
        buf_b.write(0, b"patched-payload")
        # B pre-posts an inert WQE (no VALID, no descriptor).
        slot = qp_b.post_send(Wqe(opcode=Opcode.NOP, flags=0), defer_ownership=True)
        slot_addr = qp_b.send_slot_addr(slot)
        sim.run(until=1 * MS)
        assert qp_b.send_cq.completions_total == 0
        # A remotely rewrites the whole slot: now it is a signaled
        # WRITE of B's buffer back into A's buffer — and VALID.
        patch = Wqe(
            opcode=Opcode.WRITE,
            flags=FLAG_SIGNALED | 0x01,
            length=15,
            local_addr=buf_b.addr,
            remote_addr=buf_a.addr + 1024,
            rkey=mr_a.rkey,
            wr_id=77,
        ).pack()
        buf_a.write(2048, patch)
        qp_a.post_send(
            Wqe(
                opcode=Opcode.WRITE,
                length=len(patch),
                local_addr=buf_a.addr + 2048,
                remote_addr=slot_addr,
                rkey=ring_mr.rkey,
            )
        )
        run_until(sim, lambda: qp_b.send_cq.completions_total >= 1)
        cqe = qp_b.send_cq.poll()[0]
        assert cqe.wr_id == 77 and cqe.ok
        assert a.nic.cache.read(buf_a.addr + 1024, 15) == b"patched-payload"


class TestSglMode:
    def test_gather_send(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        buf_a.write(0, b"AAAA")
        buf_a.write(100, b"BB")
        table = a.dev.sge_table_bytes([(buf_a.addr, 4), (buf_a.addr + 100, 2)])
        buf_a.write(4096, table)
        qp_b.post_recv(Wqe(local_addr=buf_b.addr, length=64))
        qp_a.post_send(
            Wqe(
                opcode=Opcode.SEND,
                flags=FLAG_SGL | FLAG_SIGNALED,
                length=2,  # SGE count
                local_addr=buf_a.addr + 4096,
            )
        )
        run_until(sim, lambda: qp_b.recv_cq.completions_total >= 1)
        assert qp_b.recv_cq.poll()[0].byte_len == 6
        assert b.nic.cache.read(buf_b.addr, 6) == b"AAAABB"

    def test_scatter_recv_splits_payload(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        buf_a.write(0, b"123456789")
        table = b.dev.sge_table_bytes(
            [(buf_b.addr, 3), (buf_b.addr + 1000, 4), (buf_b.addr + 2000, 10)]
        )
        buf_b.write(4096, table)
        qp_b.post_recv(Wqe(flags=FLAG_SGL, local_addr=buf_b.addr + 4096, length=3))
        qp_a.post_send(Wqe(opcode=Opcode.SEND, length=9, local_addr=buf_a.addr))
        run_until(sim, lambda: qp_b.recv_cq.completions_total >= 1)
        assert b.nic.cache.read(buf_b.addr, 3) == b"123"
        assert b.nic.cache.read(buf_b.addr + 1000, 4) == b"4567"
        assert b.nic.cache.read(buf_b.addr + 2000, 2) == b"89"


class TestLoopback:
    def test_loopback_write_copies_locally(self, rig):
        """Local RDMA (§4.2): the NIC copies memory on its own host
        through a loopback QP — the gMEMCPY building block."""
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        lqp = b.dev.create_qp(name="loop")
        lqp.connect_loopback()
        buf_b.write(0, b"log-record")
        lqp.post_send(
            Wqe(
                opcode=Opcode.WRITE,
                flags=FLAG_SIGNALED,
                length=10,
                local_addr=buf_b.addr,
                remote_addr=buf_b.addr + 4000,
                rkey=mr_b.rkey,
            )
        )
        run_until(sim, lambda: lqp.send_cq.completions_total >= 1)
        assert b.nic.cache.read(buf_b.addr + 4000, 10) == b"log-record"
        # No CPU task ever ran for this.
        assert b.os.busy_ns == 0

    def test_loopback_cas(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        lqp = b.dev.create_qp(name="loop")
        lqp.connect_loopback()
        buf_b.write(0, (10).to_bytes(8, "little"))
        lqp.post_send(
            Wqe(
                opcode=Opcode.CAS,
                flags=FLAG_SIGNALED,
                length=8,
                local_addr=buf_b.addr + 64,
                remote_addr=buf_b.addr,
                rkey=mr_b.rkey,
                compare=10,
                swap=20,
            )
        )
        run_until(sim, lambda: lqp.send_cq.completions_total >= 1)
        assert int.from_bytes(b.nic.cache.read(buf_b.addr, 8), "little") == 20


class TestRingManagement:
    def test_send_ring_overflow_raises(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        small = a.dev.create_qp(send_slots=4, recv_slots=4, name="small")
        small_b = b.dev.create_qp(name="smallb")
        small.connect(small_b)
        for _ in range(4):
            small.post_send(
                Wqe(opcode=Opcode.NOP, flags=0), defer_ownership=True
            )  # stalls queue, slots never free
        with pytest.raises(RuntimeError, match="overflow"):
            small.post_send(Wqe(opcode=Opcode.NOP))

    def test_doorbell_monotonicity(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        qp_a.hw.ring_send_doorbell(qp_a.hw.send_producer)
        with pytest.raises(ValueError):
            qp_a.hw.ring_send_doorbell(qp_a.hw.send_producer - 1)

    def test_nop_completes_without_wire_traffic(self, rig):
        sim, a, b, qp_a, qp_b, buf_a, buf_b, mr_a, mr_b = rig
        before = a.nic.port.tx_messages
        qp_a.post_send(Wqe(opcode=Opcode.NOP, flags=FLAG_SIGNALED, wr_id=3))
        run_until(sim, lambda: qp_a.send_cq.completions_total >= 1)
        assert a.nic.port.tx_messages == before
        assert qp_a.send_cq.poll()[0].wr_id == 3
