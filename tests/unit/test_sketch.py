"""Mergeable percentile sketch: accuracy, determinism, transport.

The sketch replaces whole-array ``samples_ns`` shipping for large
runs, so the properties that matter are (a) percentile error small
enough for the tables we print, (b) deterministic merging in a fixed
fold order, (c) faithful exact fields (count/sum/min/max), and (d)
the recorder's ship() threshold actually switching representations.
"""

import random

import pytest

from repro.bench.harness import LatencyRecorder, stats_from_sketch
from repro.bench.sketch import SKETCH_THRESHOLD, PercentileSketch


def _exact_percentile(samples, fraction):
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_sketch_percentiles_close_to_exact(seed):
    rng = random.Random(seed)
    samples = [int(rng.lognormvariate(8, 1.2)) + 1 for _ in range(20_000)]
    sketch = PercentileSketch.from_samples(samples)
    assert sketch.count == len(samples)
    assert sketch.total == sum(samples)
    assert sketch.minimum == min(samples)
    assert sketch.maximum == max(samples)
    spread = max(samples) - min(samples)
    for fraction in (0.5, 0.9, 0.95, 0.99):
        exact = _exact_percentile(samples, fraction)
        approx = sketch.percentile(fraction)
        assert abs(approx - exact) <= max(0.02 * exact, 0.002 * spread), (
            f"p{int(fraction * 100)}: sketch {approx} vs exact {exact}"
        )


def test_sketch_compresses():
    samples = list(range(50_000))
    sketch = PercentileSketch.from_samples(samples)
    assert len(sketch.centroids) < 2_000


def test_merge_is_deterministic_in_fold_order():
    rng = random.Random(7)
    chunks = [
        [int(rng.expovariate(1 / 5000)) + 1 for _ in range(4000)]
        for _ in range(5)
    ]
    def fold():
        merged = PercentileSketch()
        for chunk in chunks:
            merged.add_samples(chunk)
        return merged.to_dict()
    assert fold() == fold()


def test_dict_roundtrip():
    sketch = PercentileSketch.from_samples([3, 1, 4, 1, 5, 9, 2, 6])
    clone = PercentileSketch.from_dict(sketch.to_dict())
    assert clone.to_dict() == sketch.to_dict()
    assert clone.percentile(0.5) == sketch.percentile(0.5)


def test_recorder_ships_raw_below_threshold():
    recorder = LatencyRecorder("t")
    for value in range(100):
        recorder.record(value + 1)
    samples, sketch = recorder.ship()
    assert samples == list(range(1, 101))
    assert sketch is None


def test_recorder_ships_sketch_above_threshold():
    recorder = LatencyRecorder("t")
    rng = random.Random(11)
    for _ in range(SKETCH_THRESHOLD + 1):
        recorder.record(int(rng.expovariate(1 / 3000)) + 1)
    samples, sketch = recorder.ship()
    assert samples == []
    assert sketch is not None
    stats = stats_from_sketch(PercentileSketch.from_dict(sketch))
    exact = recorder.stats()
    assert stats.count == exact.count
    assert stats.mean == pytest.approx(exact.mean, rel=1e-9)
    assert stats.p99 == pytest.approx(exact.p99, rel=0.05)
    assert stats.minimum == exact.minimum
    assert stats.maximum == exact.maximum
