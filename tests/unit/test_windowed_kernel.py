"""The window-bounded run loop must be invisible to the simulation.

``Simulator(window_ns=W)`` chops ``run()`` into conservative windows —
the sharded engine's building block — but a single-process simulation
must produce bit-identical state, logs, and clock whatever W is, with
``sync_rounds`` the only observable difference.
"""

import os

import pytest

from repro.sim.kernel import Simulator


def _workload(sim):
    """A mixed workload with same-timestamp collisions and callbacks."""
    log = []

    def proc(name, gap, count):
        for index in range(count):
            yield sim.timeout(gap)
            log.append((sim.now, name, index))

    for name, gap in (("a", 7), ("b", 13), ("c", 7), ("d", 91)):
        sim.spawn(proc(name, gap, 40), name=name)
    sim.call_at(500, lambda: log.append((sim.now, "callback", -1)))
    return log


def _run(window_ns, until=None):
    sim = Simulator(seed=3, window_ns=window_ns)
    log = _workload(sim)
    sim.run(until=until)
    return log, sim.now, sim._sequence, sim.sync_rounds


def test_windowed_run_matches_plain():
    plain = _run(0)
    for window in (1, 13, 100, 1300, 10**9):
        windowed = _run(window)
        assert windowed[:3] == plain[:3], f"window_ns={window} diverged"


def test_windowed_run_with_until_matches_plain():
    plain = _run(0, until=700)
    windowed = _run(50, until=700)
    assert windowed[:3] == plain[:3]
    assert windowed[1] == 700  # clock pinned to until either way


def test_sync_rounds_counts_windows():
    plain = _run(0)
    assert plain[3] == 0
    windowed = _run(100)
    assert windowed[3] > 1
    # Wider windows, fewer rounds.
    assert _run(1000)[3] < windowed[3]


def test_window_from_environment(monkeypatch):
    monkeypatch.setenv("REPRO_WINDOW_NS", "250")
    sim = Simulator(seed=1)
    assert sim.window_ns == 250
    monkeypatch.delenv("REPRO_WINDOW_NS")
    assert Simulator(seed=1).window_ns == 0
    # Explicit argument beats the environment.
    monkeypatch.setenv("REPRO_WINDOW_NS", "250")
    assert Simulator(seed=1, window_ns=0).window_ns == 0


def test_on_window_hook_fires_once_per_round_with_monotonic_clock():
    sim = Simulator(seed=2, window_ns=64)
    _workload(sim)
    bounds = []
    sim.on_window = lambda s: bounds.append(s.now)
    sim.run()
    assert bounds == sorted(bounds)
    assert len(bounds) == sim.sync_rounds


def test_advance_clock_flag_leaves_clock_at_last_event():
    sim = Simulator(seed=4)
    log = _workload(sim)
    sim._advance_clock = False
    try:
        sim.run(until=10_000)
    finally:
        sim._advance_clock = True
    # All events fired, but the clock was not pinned to `until`.
    assert log
    assert sim.now < 10_000
