"""Unit tests for the benchmark harness (repro.bench)."""

import pytest

from repro.bench import CpuMeter, LatencyRecorder, format_table, run_until
from repro.hw import Cluster
from repro.sim import MS, Simulator


class TestLatencyRecorder:
    def test_stats_basic(self):
        recorder = LatencyRecorder("r")
        for sample in [1000, 2000, 3000, 4000]:
            recorder.record(sample)
        stats = recorder.stats()
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0 and stats.maximum == 4.0
        assert stats.p50 == pytest.approx(2.5)

    def test_single_sample(self):
        recorder = LatencyRecorder()
        recorder.record(5000)
        stats = recorder.stats()
        assert stats.p50 == stats.p99 == stats.mean == 5.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            LatencyRecorder().stats()

    def test_percentiles_match_numpy(self):
        import numpy

        samples = [i * 137 % 10007 for i in range(500)]
        recorder = LatencyRecorder()
        for sample in samples:
            recorder.record(sample)
        stats = recorder.stats()
        values = numpy.array(samples) / 1000.0
        assert stats.p50 == pytest.approx(numpy.percentile(values, 50))
        assert stats.p95 == pytest.approx(numpy.percentile(values, 95))
        assert stats.p99 == pytest.approx(numpy.percentile(values, 99))

    def test_row_rounding(self):
        recorder = LatencyRecorder()
        recorder.record(1234)
        row = recorder.stats().row()
        assert row["n"] == 1 and row["avg_us"] == 1.23


class TestRunUntil:
    def test_stops_when_done(self):
        sim = Simulator()
        flag = {}
        sim.call_in(3 * MS, lambda: flag.setdefault("y", 1))
        run_until(sim, lambda: "y" in flag, deadline_ms=100)
        assert "y" in flag
        assert sim.now < 20 * MS

    def test_raises_on_deadline(self):
        sim = Simulator()
        with pytest.raises(TimeoutError):
            run_until(sim, lambda: False, deadline_ms=10)


class TestFormatTable:
    def test_alignment_and_content(self):
        table = format_table("Title", ["a", "long_col"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[1] and "long_col" in lines[1]
        assert "1" in lines[3] and "2" in lines[3]
        assert "333" in lines[4]

    def test_empty_rows(self):
        table = format_table("T", ["x"], [])
        assert "x" in table


class TestCpuMeter:
    def test_measures_stress_load(self):
        sim = Simulator()
        cluster = Cluster(sim, n_hosts=1, n_cores=2)
        cluster[0].os.spawn_stress("hog")
        meter = CpuMeter([cluster[0].os])
        meter.start(sim)
        sim.run(until=10 * MS)
        assert 0.4 <= meter.utilization(sim) <= 0.6
