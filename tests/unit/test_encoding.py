"""Unit tests for the document codec (repro.storage.encoding)."""

import pytest

from repro.storage.encoding import DocumentError, decode_document, encode_document


class TestRoundtrip:
    def test_mixed_types(self):
        doc = {"_id": b"k1", "name": "alice", "age": 42, "blob": b"\x00\x01"}
        assert decode_document(encode_document(doc)) == doc

    def test_empty_document(self):
        assert decode_document(encode_document({})) == {}

    def test_field_order_preserved(self):
        doc = {"z": 1, "a": 2, "m": 3}
        assert list(decode_document(encode_document(doc))) == ["z", "a", "m"]

    def test_negative_and_large_ints(self):
        doc = {"neg": -12345, "big": 2**62}
        assert decode_document(encode_document(doc)) == doc

    def test_unicode_strings(self):
        doc = {"greeting": "héllo wörld ☺"}
        assert decode_document(encode_document(doc)) == doc

    def test_large_binary_value(self):
        doc = {"payload": bytes(range(256)) * 64}
        assert decode_document(encode_document(doc)) == doc

    def test_deterministic(self):
        doc = {"a": 1, "b": b"x"}
        assert encode_document(doc) == encode_document(doc)


class TestErrors:
    def test_unsupported_type(self):
        with pytest.raises(DocumentError):
            encode_document({"f": 1.5})

    def test_bool_rejected(self):
        with pytest.raises(DocumentError):
            encode_document({"f": True})

    def test_bad_magic(self):
        raw = bytearray(encode_document({"a": 1}))
        raw[0] ^= 0xFF
        with pytest.raises(DocumentError):
            decode_document(bytes(raw))

    def test_truncated(self):
        raw = encode_document({"a": b"0123456789"})
        with pytest.raises(DocumentError):
            decode_document(raw[: len(raw) - 4])

    def test_empty_bytes(self):
        with pytest.raises(DocumentError):
            decode_document(b"")
