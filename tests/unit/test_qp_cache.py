"""Unit tests for the on-NIC QP context (ICM) cache model."""

import pytest

from repro.hw import Cluster, NicParams
from repro.sim import Simulator


def make_nic(entries=4):
    sim = Simulator(seed=37)
    cluster = Cluster(
        sim, n_hosts=1, n_cores=1,
        nic_params=NicParams(qp_cache_entries=entries),
    )
    return cluster[0].nic


class TestQpContextCache:
    def test_first_touch_misses(self):
        nic = make_nic()
        assert nic.qp_context_penalty(1) == nic.params.qp_cache_miss_ns
        assert nic.qp_cache_misses == 1

    def test_hot_qp_hits(self):
        nic = make_nic()
        nic.qp_context_penalty(1)
        assert nic.qp_context_penalty(1) == 0
        assert nic.qp_cache_misses == 1

    def test_lru_eviction(self):
        nic = make_nic(entries=2)
        nic.qp_context_penalty(1)
        nic.qp_context_penalty(2)
        nic.qp_context_penalty(3)  # evicts 1
        assert nic.qp_context_penalty(2) == 0  # still resident
        assert nic.qp_context_penalty(1) != 0  # was evicted

    def test_touch_refreshes_recency(self):
        nic = make_nic(entries=2)
        nic.qp_context_penalty(1)
        nic.qp_context_penalty(2)
        nic.qp_context_penalty(1)  # refresh 1
        nic.qp_context_penalty(3)  # evicts 2, not 1
        assert nic.qp_context_penalty(1) == 0
        assert nic.qp_context_penalty(2) != 0

    def test_working_set_within_cache_never_misses_again(self):
        nic = make_nic(entries=8)
        for qpn in range(8):
            nic.qp_context_penalty(qpn)
        misses = nic.qp_cache_misses
        for _ in range(10):
            for qpn in range(8):
                assert nic.qp_context_penalty(qpn) == 0
        assert nic.qp_cache_misses == misses

    def test_thrash_when_working_set_exceeds_cache(self):
        """The §7 scalability effect: more active QPs than contexts
        fit on the adapter -> every touch misses."""
        nic = make_nic(entries=4)
        for _ in range(5):
            for qpn in range(8):  # round-robin over 2x the cache
                nic.qp_context_penalty(qpn)
        assert nic.qp_cache_misses == 40  # every single touch missed
