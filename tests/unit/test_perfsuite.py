"""Unit tests for perf-suite entry construction (no benchmarks run).

S1 regression guard: a parallel-scaling number measured on a
single-core host must be *flagged*, never asserted on — the PR-1
``speedup: 0.36`` entry read as a regression until the entry said what
it actually measured.
"""

from repro.bench.perfsuite import annotate_parallel_entry, bench_nic_hotpath

SCALING = {
    "runs": 4,
    "workers": 4,
    "serial_s": 3.131,
    "parallel_s": 8.604,
    "speedup": 0.3639,
    "identical": True,
    "wall_s": 11.7,
}


class TestAnnotateParallelEntry:
    def test_records_cpu_count_alongside_speedup(self):
        entry = annotate_parallel_entry(SCALING, cpu_count=8)
        assert entry["cpu_count"] == 8
        assert entry["speedup"] == 0.36
        assert entry["runs"] == 4
        assert entry["workers"] == 4

    def test_single_core_host_is_flagged_not_asserted(self):
        entry = annotate_parallel_entry(SCALING, cpu_count=1)
        assert "speedup_flag" in entry
        assert "single-core" in entry["speedup_flag"]
        assert "pool overhead" in entry["speedup_flag"]

    def test_unknown_cpu_count_is_treated_as_single_core(self):
        # os.cpu_count() may return None; the conservative reading is
        # "cannot claim real parallelism", so the flag applies.
        entry = annotate_parallel_entry(SCALING, cpu_count=None)
        assert "speedup_flag" in entry

    def test_multi_core_entry_carries_no_flag(self):
        entry = annotate_parallel_entry(SCALING, cpu_count=4)
        assert "speedup_flag" not in entry


class TestNicHotpathBench:
    def test_completes_all_ops_and_is_deterministic(self):
        # Tiny sizing: this is a correctness check of the harness, not
        # a timing assertion (timing on shared runners is noise).
        first = bench_nic_hotpath(n_ops=64, burst=8)
        second = bench_nic_hotpath(n_ops=64, burst=8)
        assert first["ops"] == second["ops"] == 64
        assert first["final_now"] == second["final_now"]
        assert first["wqe_per_sec"] > 0
