"""Unit tests for the parallel experiment runner and stats merging.

The acceptance bar (DESIGN.md decision 7 applied to the runner): for a
fixed seed set, experiment output is bit-for-bit identical serial vs
parallel, and identical with the kernel's fast dispatch on or off.
Merging is order-independent.
"""

import dataclasses

import pytest

from repro.bench import experiments as experiments_module
from repro.bench.harness import LatencyRecorder, LatencyStats, merge_stats
from repro.bench.parallel import (
    RunResult,
    RunSpec,
    derive_seed,
    make_specs,
    merge_run_stats,
    normalize_result,
    run_parallel,
    run_serial,
)
from repro.sim import Simulator

# One cheap-but-real configuration used by every runner test: a full
# HyperLoop group with background tenants, shrunk to tens of ops.
QUICK = dict(
    system="hyperloop",
    message_size=256,
    n_ops=30,
    stress_per_core=1,
    pipeline_depth=2,
    n_cores=4,
    rounds=256,
)


def quick_specs(n_seeds=2):
    return make_specs("latency", base_seed=7, n_seeds=n_seeds, **QUICK)


class TestSeedDerivation:
    def test_stable_across_calls(self):
        assert derive_seed(42, 0) == derive_seed(42, 0)

    def test_known_values(self):
        # Pinned: these must never change, or every recorded sweep
        # stops being reproducible.
        assert derive_seed(42, 0) == 3899403707
        assert derive_seed(42, 1) == 776859331

    def test_distinct_per_index_and_base(self):
        seeds = {derive_seed(base, i) for base in (1, 2) for i in range(50)}
        assert len(seeds) == 100


class TestSpecs:
    def test_make_specs_is_deterministic(self):
        assert quick_specs() == quick_specs()

    def test_grid_expansion_order(self):
        specs = make_specs(
            "latency", 1, 2, grid=[{"message_size": 128}, {"message_size": 256}]
        )
        sizes = [spec.kwargs["message_size"] for spec in specs]
        assert sizes == [128, 256, 128, 256]
        assert len({spec.seed for spec in specs}) == 4

    def test_specs_are_hashable_and_picklable(self):
        import pickle

        spec = RunSpec.make("latency", 3, message_size=64)
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert len({spec, spec}) == 1


class TestSerialParallelEquivalence:
    def test_parallel_matches_serial_bit_for_bit(self):
        specs = quick_specs()
        serial = run_serial(specs)
        parallel = run_parallel(specs, workers=2)
        assert serial == parallel

    def test_parallel_result_independent_of_worker_count(self):
        specs = quick_specs()
        assert run_parallel(specs, workers=2) == run_parallel(specs, workers=3)

    def test_single_spec_short_circuits(self):
        specs = quick_specs(n_seeds=1)
        assert run_parallel(specs, workers=4) == run_serial(specs)

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            run_parallel(quick_specs(), workers=0)


class TestHotPathEquivalence:
    def test_experiment_output_identical_fast_vs_generic(self, monkeypatch):
        """Before/after the rewrite: the generic dispatch path stands in
        for the pre-PR kernel and must reproduce the exact results."""
        spec = quick_specs(n_seeds=1)[0]
        fast = run_serial([spec])

        def generic_simulator(seed=0):
            return Simulator(seed=seed, fast_dispatch=False)

        monkeypatch.setattr(experiments_module, "Simulator", generic_simulator)
        generic = run_serial([spec])
        assert fast == generic


class TestMerging:
    def test_recorder_merge_is_sample_exact(self):
        reference = LatencyRecorder("all")
        left = LatencyRecorder("a")
        right = LatencyRecorder("b")
        for index, sample in enumerate([1500, 900, 4200, 800, 2600, 3100]):
            reference.record(sample)
            (left if index % 2 else right).record(sample)
        merged = LatencyRecorder("merged")
        merged.merge(left)
        merged.merge(right)
        assert merged.stats() == reference.stats()

    def test_recorder_merge_order_independent(self):
        parts = []
        for offset in range(3):
            recorder = LatencyRecorder(f"p{offset}")
            for sample in range(1000 + offset * 7, 1100 + offset * 7, 13):
                recorder.record(sample)
            parts.append(recorder)
        forward = LatencyRecorder("f")
        backward = LatencyRecorder("b")
        for part in parts:
            forward.merge(part)
        for part in reversed(parts):
            backward.merge(part)
        assert forward.stats() == backward.stats()

    def test_stats_cache_tracks_new_samples(self):
        recorder = LatencyRecorder("cache")
        recorder.record(1000)
        first = recorder.stats()
        assert first.count == 1
        recorder.record(3000)
        second = recorder.stats()
        assert second.count == 2
        assert second.maximum == pytest.approx(3.0)

    def test_merge_stats_order_independent(self):
        parts = [
            LatencyStats(10, 5.0, 4.0, 9.0, 9.9, 1.0, 10.0),
            LatencyStats(3, 50.0, 40.0, 90.0, 99.0, 10.0, 100.0),
            LatencyStats(7, 2.0, 1.5, 3.0, 3.3, 0.5, 4.0),
        ]
        forward = merge_stats(parts)
        backward = merge_stats(reversed(parts))
        assert forward == backward
        assert forward.count == 20
        assert forward.minimum == 0.5
        assert forward.maximum == 100.0

    def test_merge_run_stats_over_sweep(self):
        results = run_parallel(quick_specs(), workers=2)
        merged = merge_run_stats(results)
        assert merged.count == sum(
            result.output["stats"]["count"] for result in results
        )

    def test_latency_output_ships_raw_samples(self):
        # The sample-exact merge path exists because latency outputs
        # now carry every recorded sample, not just the summary.
        (result,) = run_serial(quick_specs(n_seeds=1))
        samples = result.output["samples_ns"]
        assert len(samples) == result.output["stats"]["count"]
        assert all(isinstance(sample, int) for sample in samples)

    def test_merge_run_stats_is_sample_exact_over_sweep(self):
        # Merged percentiles must equal those of one recorder that saw
        # every sample — not the count-weighted approximation.
        results = run_serial(quick_specs())
        reference = LatencyRecorder("reference")
        for result in results:
            for sample in result.output["samples_ns"]:
                reference.record(sample)
        assert merge_run_stats(results) == reference.stats()

    def _summary_only_result(self, seed, samples):
        recorder = LatencyRecorder()
        for sample in samples:
            recorder.record(sample)
        return RunResult(
            spec=RunSpec.make("latency", seed),
            output={"stats": dataclasses.asdict(recorder.stats())},
        )

    def test_merge_run_stats_falls_back_without_samples(self):
        left = self._summary_only_result(1, [1000, 2000, 4000])
        right = self._summary_only_result(2, [500, 8000])
        merged = merge_run_stats([left, right])
        expected = merge_stats(
            [
                LatencyStats(**left.output["stats"]),
                LatencyStats(**right.output["stats"]),
            ]
        )
        assert merged == expected

    def test_merge_run_stats_mismatched_samples_use_fallback(self):
        # A run whose sample list does not match its count (truncated
        # transport, say) poisons exactness for the whole merge: the
        # approximation is honest, a partial sample-merge would not be.
        complete = self._summary_only_result(1, [1000, 2000])
        truncated = self._summary_only_result(2, [3000, 5000, 7000])
        truncated.output["samples_ns"] = [3000]
        merged = merge_run_stats([complete, truncated])
        expected = merge_stats(
            [
                LatencyStats(**complete.output["stats"]),
                LatencyStats(**truncated.output["stats"]),
            ]
        )
        assert merged == expected

    def test_merge_stats_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_stats([])


class TestNormalization:
    def test_dataclass_results_become_dicts(self):
        stats = LatencyStats(1, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0)
        normalized = normalize_result(stats)
        assert normalized == {
            "count": 1,
            "mean": 2.0,
            "p50": 2.0,
            "p95": 2.0,
            "p99": 2.0,
            "minimum": 2.0,
            "maximum": 2.0,
        }

    def test_plain_values_pass_through(self):
        assert normalize_result({"a": 1}) == {"a": 1}
        assert normalize_result(3) == 3
