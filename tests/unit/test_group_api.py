"""API-level unit tests for group construction and validation."""

import pytest

from repro.baseline import NaiveGroup
from repro.core import HyperLoopGroup
from repro.hw import Cluster
from repro.sim import Simulator


@pytest.fixture
def cluster():
    sim = Simulator(seed=29)
    return Cluster(sim, n_hosts=4, n_cores=2)


class TestConstruction:
    def test_needs_replicas(self, cluster):
        with pytest.raises(ValueError):
            HyperLoopGroup(cluster[0], [], region_size=1 << 16)
        with pytest.raises(ValueError):
            NaiveGroup(cluster[0], [], region_size=1 << 16)

    def test_bad_client_mode(self, cluster):
        with pytest.raises(ValueError):
            HyperLoopGroup(
                cluster[0], cluster.hosts[1:4], region_size=1 << 16,
                rounds=8, client_mode="spin",
            )

    def test_bad_replica_mode(self, cluster):
        with pytest.raises(ValueError):
            NaiveGroup(
                cluster[0], cluster.hosts[1:4], region_size=1 << 16,
                rounds=8, replica_mode="interrupt",
            )

    def test_group_size(self, cluster):
        group = HyperLoopGroup(
            cluster[0], cluster.hosts[1:3], region_size=1 << 16, rounds=8
        )
        assert group.group_size == 2

    def test_start_is_idempotent(self, cluster):
        group = HyperLoopGroup(
            cluster[0], cluster.hosts[1:4], region_size=1 << 16, rounds=8
        )
        tasks_before = len(group._tasks)
        group.start()
        assert len(group._tasks) == tasks_before

    def test_autostart_false_spawns_nothing(self, cluster):
        group = HyperLoopGroup(
            cluster[0], cluster.hosts[1:4], region_size=1 << 16,
            rounds=8, autostart=False,
        )
        assert group._tasks == []
        group.start()
        assert group._tasks

    def test_selective_primitives(self, cluster):
        group = HyperLoopGroup(
            cluster[0], cluster.hosts[1:4], region_size=1 << 16,
            rounds=8, primitives=("gwrite",), autostart=False,
        )
        assert set(group.chains) == {"gwrite"}

    def test_regions_in_nvm_by_default(self, cluster):
        group = HyperLoopGroup(
            cluster[0], cluster.hosts[1:4], region_size=1 << 16,
            rounds=8, autostart=False,
        )
        for mr in group.replica_mrs:
            assert mr.region.is_nvm

    def test_regions_in_dram_when_requested(self, cluster):
        group = HyperLoopGroup(
            cluster[0], cluster.hosts[1:4], region_size=1 << 16,
            rounds=8, nvm=False, autostart=False,
        )
        for mr in group.replica_mrs:
            assert not mr.region.is_nvm


class TestLocalAccess:
    def test_write_local_and_read_back(self, cluster):
        group = HyperLoopGroup(
            cluster[0], cluster.hosts[1:4], region_size=1 << 16,
            rounds=8, autostart=False,
        )
        group.write_local(100, b"mirror")
        assert group.client_region.read(100, 6) == b"mirror"

    def test_write_local_bounds(self, cluster):
        group = HyperLoopGroup(
            cluster[0], cluster.hosts[1:4], region_size=1 << 16,
            rounds=8, autostart=False,
        )
        with pytest.raises(Exception):
            group.write_local((1 << 16) - 2, b"overflow")

    def test_read_replica_initially_zero(self, cluster):
        group = HyperLoopGroup(
            cluster[0], cluster.hosts[1:4], region_size=1 << 16,
            rounds=8, autostart=False,
        )
        assert group.read_replica(0, 0, 16) == bytes(16)


class TestMissingChain:
    def test_op_without_chain_raises(self, cluster):
        group = HyperLoopGroup(
            cluster[0], cluster.hosts[1:4], region_size=1 << 16,
            rounds=8, primitives=("gwrite",),
        )
        done = {}

        def body(task):
            try:
                yield from group.gcas(task, 0, 0, 1)
            except RuntimeError as exc:
                done["error"] = str(exc)
            yield from task.sleep(0)

        cluster[0].os.spawn(body, "c")
        cluster[0].sim.run(until=1_000_000)
        assert "gcas" in done["error"]


class TestStats:
    def test_counters_track_activity(self, cluster):
        from repro.bench import run_until

        group = HyperLoopGroup(
            cluster[0], cluster.hosts[1:4], region_size=1 << 16, rounds=8
        )
        done = {}

        def body(task):
            group.write_local(0, b"stat")
            yield from group.gwrite(task, 0, 4)
            yield from group.gcas(task, 8, 0, 1)
            done["y"] = True

        cluster[0].os.spawn(body, "c")
        run_until(cluster[0].sim, lambda: "y" in done, deadline_ms=2000)
        stats = group.stats()
        assert stats["ops_issued"] == 2
        assert stats["errors"] == 0
        assert stats["rounds_posted"] >= 8 * 3 * 3
