"""Unit tests for the kernel fast paths (dispatch, pooling, ordering).

The hot-path rewrite is only admissible because it is *invisible*:
identical seeds must produce bit-for-bit identical event orders, with
``fast_dispatch=True`` (claimed timeouts, pooling) and with the
generic trigger machinery. These tests pin that contract.
"""

import pytest

from repro.sim import Event, Interrupt, Simulator, Timeout


def _trace_run(fast_dispatch, n_procs=20, steps=50):
    """A mixed workload recording (time, actor, step) at every resume."""
    sim = Simulator(seed=3, fast_dispatch=fast_dispatch)
    trace = []

    def actor(index):
        rng = sim.rng(f"actor/{index}")
        for step in range(steps):
            trace.append((sim.now, index, step))
            yield sim.timeout(rng.randrange(0, 7))

    for index in range(n_procs):
        sim.spawn(actor(index))
    sim.run()
    return trace


class TestDeterminism:
    def test_same_seed_same_event_order(self):
        assert _trace_run(True) == _trace_run(True)

    def test_fast_dispatch_matches_generic_path(self):
        # The acceptance bar for the rewrite: the claimed-timeout fast
        # path and the legacy trigger machinery produce the same
        # interleaving, element for element.
        assert _trace_run(True) == _trace_run(False)

    def test_fast_dispatch_matches_generic_with_zero_delays(self):
        # Zero-delay timeouts maximize same-timestamp contention, the
        # regime where a sequence-number slip would show first.
        def run(fast):
            sim = Simulator(seed=5, fast_dispatch=fast)
            order = []

            def proc(name):
                for step in range(30):
                    order.append((sim.now, name, step))
                    yield sim.timeout(0)

            for name in "abcdef":
                sim.spawn(proc(name))
            sim.run()
            return order

        assert run(True) == run(False)


class TestFifoTieBreak:
    def test_equal_timestamps_resume_in_schedule_order(self):
        sim = Simulator()
        order = []

        def proc(name):
            yield sim.timeout(10)
            order.append(name)

        for name in ("first", "second", "third"):
            sim.spawn(proc(name))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_callbacks_and_resumes_interleave_fifo(self):
        sim = Simulator()
        order = []
        sim.call_at(10, lambda: order.append("call_a"))

        def proc():
            yield sim.timeout(10)
            order.append("proc")

        sim.spawn(proc())
        sim.call_at(10, lambda: order.append("call_b"))
        sim.run()
        # call_a scheduled first; the timeout was created second (its
        # fire entry), call_b third. The claimed-timeout resume hop
        # adds one queue step but cannot overtake call_b.
        assert order == ["call_a", "call_b", "proc"]


class TestTimeoutPooling:
    def test_bare_yield_recycles_into_pool(self):
        sim = Simulator()
        seen = []

        def proc():
            for _ in range(3):
                yield sim.timeout(5)
                seen.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert seen == [5, 10, 15]
        # Steady state alternates two pooled instances: the one just
        # fired is recycled after the generator is resumed, while the
        # resume itself re-armed the other. Both land in the pool once
        # the process finishes.
        assert len(sim._timeout_pool) == 2

    def test_pooled_timeout_reuses_the_same_object(self):
        sim = Simulator()
        identities = []

        def proc():
            for _ in range(4):
                timeout = sim.timeout(1)
                identities.append(id(timeout))
                yield timeout

        sim.spawn(proc())
        sim.run()
        # A fired timeout is recycled only after the generator resumes,
        # so a tight yield loop alternates between two instances:
        # laps 0/1 allocate fresh, laps 2/3 reuse them from the pool.
        assert identities[2] == identities[0]
        assert identities[3] == identities[1]
        assert len(set(identities)) == 2

    def test_rearmed_timeout_delivers_fresh_value(self):
        sim = Simulator()
        values = []

        def proc():
            for index in range(3):
                value = yield sim.timeout(1, value=f"v{index}")
                values.append(value)

        sim.spawn(proc())
        sim.run()
        assert values == ["v0", "v1", "v2"]

    def test_observed_timeouts_are_never_pooled(self):
        sim = Simulator()
        fired = []

        def proc():
            timeout = sim.timeout(5)
            timeout.add_callback(lambda event: fired.append(event.value))
            yield timeout

        sim.spawn(proc())
        sim.run()
        assert fired == [None]
        assert sim._timeout_pool == []

    def test_any_of_composed_timeouts_are_never_pooled(self):
        sim = Simulator()

        def proc():
            yield sim.any_of([sim.timeout(3), sim.timeout(9)])

        sim.spawn(proc())
        sim.run()
        assert sim._timeout_pool == []

    def test_legacy_mode_never_claims_or_pools(self):
        sim = Simulator(fast_dispatch=False)

        def proc():
            for _ in range(5):
                yield sim.timeout(2)

        sim.spawn(proc())
        sim.run()
        assert sim._timeout_pool == []

    def test_interrupt_while_waiting_on_claimed_timeout(self):
        sim = Simulator()
        outcome = []

        def sleeper():
            try:
                yield sim.timeout(100)
                outcome.append("slept")
            except Interrupt as interrupt:
                outcome.append(f"interrupted:{interrupt.cause}")
                yield sim.timeout(1)
                outcome.append("resumed")

        proc = sim.spawn(sleeper())
        sim.call_at(10, lambda: proc.interrupt("wake"))
        sim.run()
        assert outcome == ["interrupted:wake", "resumed"]

    def test_negative_delay_rejected_on_pooled_path(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1)  # populate the pool on resume

        sim.spawn(proc())
        sim.run()
        assert sim._timeout_pool  # the pooled re-arm path is active
        with pytest.raises(ValueError):
            sim.timeout(-1)

    def test_negative_delay_rejected_on_cold_path(self):
        """Regression: the same call site must raise (or not)
        regardless of pool state — validation happens once, before
        the pool check."""
        sim = Simulator()
        assert not sim._timeout_pool  # cold construction path
        with pytest.raises(ValueError):
            sim.timeout(-1)
        # ...and nothing was scheduled by the rejected call.
        assert not sim._queue

    def test_negative_delay_rejected_in_generic_mode(self):
        sim = Simulator(fast_dispatch=False)
        with pytest.raises(ValueError):
            sim.timeout(-1)

        def proc():
            yield sim.timeout(1)

        sim.spawn(proc())
        sim.run()
        with pytest.raises(ValueError):
            sim.timeout(-1)


class TestEventSlots:
    def test_event_has_no_dict(self):
        sim = Simulator()
        with pytest.raises(AttributeError):
            Event(sim).arbitrary_attribute = 1

    def test_timeout_has_no_dict(self):
        sim = Simulator()
        with pytest.raises(AttributeError):
            sim.timeout(1).arbitrary_attribute = 1
